//! The distributed BFS driver: builds the degree-separated distributed
//! graph and runs (DO)BFS iterations as BSP supersteps over the simulated
//! cluster.
//!
//! Per iteration (Figs. 3–4): every GPU runs its local computation in
//! parallel; if any GPU updated a delegate bit, the two-phase global mask
//! reduction runs (§V-A); the `nn` updates go through the binned
//! point-to-point exchange (§V-B); new frontiers form and the next
//! iteration begins. Modeled Ray time is accumulated per phase with the
//! overlap rule of `gcbfs_cluster::timing`.

use crate::checkpoint::Checkpoint;
use crate::comm::{exchange_normals_with, reassign_lane_times};
use crate::config::BfsConfig;
use crate::direction::{Direction, DirectionState};
use crate::distributor::{distribute, EdgeClassCounts};
use crate::kernels::{GpuWorker, KernelWork, LocalIterationOutput};
use crate::masks::DelegateMask;
use crate::recovery::{retry_backoff, Assignment, ElasticMap, HostingPolicy};
use crate::separation::Separation;
use crate::stats::{FaultStats, IterationRecord, RunStats};
use crate::subgraph::{GpuSubgraphs, MemoryUsage};
use crate::verify::{self, VerifyState};
use crate::UNREACHED;
use gcbfs_cluster::collectives::{allreduce_or_compressed, mask_reduce_hops};
use gcbfs_cluster::cost::KernelKind;
use gcbfs_cluster::fault::{
    FaultError, FaultInjector, FaultPlan, MessageFate, SdcEvent, SdcMode, SdcSite,
};
use gcbfs_cluster::membership::{Membership, MembershipEvent};
use gcbfs_cluster::timing::{IterationTiming, PhaseTimes};
use gcbfs_cluster::topology::Topology;
use gcbfs_graph::{EdgeList, VertexId};
use gcbfs_trace::{
    CollectiveHop, DirTag, FaultKind, KernelEvent, KernelTag, LanePhases, LaneStages, SinkMark,
    SpanSink, StreamTag, TraceLog,
};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Why a distributed graph could not be built. Field names are
/// self-describing; the variant docs state the failed constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BuildError {
    /// The per-GPU vertex count exceeds the 32-bit local id space.
    LocalIdsOverflow { per_gpu_vertices: u64 },
    /// A GPU's subgraphs exceed device memory (the paper's remedies:
    /// raise `TH` or add GPUs, §VI-B).
    DeviceMemoryExceeded { gpu: usize, needed: u64, available: u64 },
    /// The source vertex of a run is out of range.
    SourceOutOfRange { source: VertexId, num_vertices: u64 },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LocalIdsOverflow { per_gpu_vertices } => {
                write!(f, "{per_gpu_vertices} vertices per GPU exceed 32-bit local ids")
            }
            Self::DeviceMemoryExceeded { gpu, needed, available } => {
                write!(f, "GPU {gpu} needs {needed} bytes of graph storage, device has {available}")
            }
            Self::SourceOutOfRange { source, num_vertices } => {
                write!(f, "source {source} out of range (n = {num_vertices})")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Why a run could not complete: either construction failed, or a detected
/// fault could not be recovered under the configured
/// [`RecoveryConfig`](crate::recovery::RecoveryConfig) (recovery disabled,
/// retry budget exhausted without the reliable path, or an unsurvivable
/// fail-stop pattern).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// Graph or run construction failed.
    Build(BuildError),
    /// A detected fault was surfaced instead of recovered.
    Fault(FaultError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Build(e) => write!(f, "{e}"),
            Self::Fault(e) => write!(f, "unrecovered fault: {e}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Build(e) => Some(e),
            Self::Fault(e) => Some(e),
        }
    }
}

impl From<BuildError> for RunError {
    fn from(e: BuildError) -> Self {
        Self::Build(e)
    }
}

impl From<FaultError> for RunError {
    fn from(e: FaultError) -> Self {
        Self::Fault(e)
    }
}

/// Applies one depth-word SDC event to a GPU's local depth array (kernel
/// outputs or a restored checkpoint buffer). The strike index wraps into
/// the buffer and skips delegate-owned slots — those words are vacant by
/// construction, so an upset there corrupts nothing the algorithm reads.
fn strike_depths(
    sep: &Separation,
    topo: &Topology,
    gpu_flat: usize,
    depths: &mut [u32],
    ev: &SdcEvent,
) {
    let n = depths.len();
    let gpu = topo.unflat(gpu_flat);
    let mut idx = (ev.index % n as u64) as usize;
    for _ in 0..n {
        if !sep.is_delegate(topo.global_id(gpu, idx as u32)) {
            depths[idx] = match ev.mode {
                SdcMode::Flip => depths[idx] ^ ev.bits as u32,
                SdcMode::Stuck => ev.bits as u32,
            };
            return;
        }
        idx = (idx + 1) % n;
    }
}

/// Device-side shadow of the mutable superstep inputs, captured before
/// local computation when online verification is armed. Re-execution of a
/// superstep that failed verification restores from here without touching
/// the host checkpoint. The copy itself is modeled as free (device
/// double-buffering of state the kernels already traverse); only a
/// *detected* fault charges recovery time.
struct SdcShadow {
    workers: Vec<GpuWorker>,
    delayed: Vec<(u32, usize, u32)>,
    prev_reduced: Option<Vec<u64>>,
    verify: VerifyState,
}

/// A graph distributed across the simulated cluster, ready to run BFS from
/// any source. Building once serves any number of runs.
#[derive(Clone, Debug)]
pub struct DistributedGraph {
    pub(crate) topology: Topology,
    pub(crate) separation: Arc<Separation>,
    pub(crate) subgraphs: Vec<Arc<GpuSubgraphs>>,
    pub(crate) class_counts: EdgeClassCounts,
    pub(crate) num_vertices: u64,
    pub(crate) num_edges: u64,
}

impl DistributedGraph {
    /// Distributes `graph` over `topology` with the separation threshold
    /// and device model from `config`.
    pub fn build(
        graph: &EdgeList,
        topology: Topology,
        config: &BfsConfig,
    ) -> Result<Self, BuildError> {
        let p = topology.num_gpus() as u64;
        let per_gpu_vertices = graph.num_vertices.div_ceil(p.max(1));
        if per_gpu_vertices > u32::MAX as u64 {
            return Err(BuildError::LocalIdsOverflow { per_gpu_vertices });
        }
        let degrees = graph.out_degrees();
        let separation = Separation::from_degrees(&degrees, config.degree_threshold);
        let dist = distribute(graph, &separation, &degrees, &topology);
        let d = separation.num_delegates();
        let subgraphs: Vec<Arc<GpuSubgraphs>> = topology
            .gpus()
            .collect::<Vec<_>>()
            .into_par_iter()
            .zip(dist.per_gpu.into_par_iter())
            .map(|(gpu, edges)| {
                Arc::new(GpuSubgraphs::build(
                    topology.owned_count(gpu, graph.num_vertices),
                    d,
                    &edges,
                ))
            })
            .collect();
        for (i, sg) in subgraphs.iter().enumerate() {
            let needed = sg.memory_usage().total();
            let available = config.cost.device.memory_bytes;
            if needed > available {
                return Err(BuildError::DeviceMemoryExceeded { gpu: i, needed, available });
            }
        }
        Ok(Self {
            topology,
            separation: Arc::new(separation),
            subgraphs,
            class_counts: dist.class_counts,
            num_vertices: graph.num_vertices,
            num_edges: graph.num_edges(),
        })
    }

    /// The device grid this graph is distributed over.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The delegate/normal separation.
    pub fn separation(&self) -> &Separation {
        &self.separation
    }

    /// Global edge counts per class.
    pub fn class_counts(&self) -> EdgeClassCounts {
        self.class_counts
    }

    /// Vertex count `n`.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Directed edge count `m`.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Per-GPU memory usage (Table I).
    pub fn memory_usage(&self) -> Vec<MemoryUsage> {
        self.subgraphs.iter().map(|sg| sg.memory_usage()).collect()
    }

    /// Total graph storage across the cluster in bytes.
    pub fn total_graph_bytes(&self) -> u64 {
        self.memory_usage().iter().map(MemoryUsage::total).sum()
    }

    /// Runs (DO)BFS from `source`, returning depths, statistics, and
    /// modeled time.
    ///
    /// ```
    /// use gcbfs_core::{config::BfsConfig, driver::DistributedGraph};
    /// use gcbfs_cluster::topology::Topology;
    /// use gcbfs_graph::builders;
    ///
    /// let graph = builders::double_star(4);
    /// let config = BfsConfig::new(3);
    /// let dist = DistributedGraph::build(&graph, Topology::new(2, 2), &config).unwrap();
    /// let result = dist.run(0, &config).unwrap();
    /// assert_eq!(result.depths[1], 1); // the other hub is one hop away
    /// ```
    ///
    /// # Errors
    /// Returns [`BuildError::SourceOutOfRange`] for an invalid source.
    pub fn run(&self, source: VertexId, config: &BfsConfig) -> Result<BfsResult, BuildError> {
        self.run_inner(source, config, false, None).map_err(|e| match e {
            RunError::Build(b) => b,
            RunError::Fault(f) => unreachable!("fault error without a fault plan: {f}"),
        })
    }

    /// Runs (DO)BFS from `source` while `plan`'s faults are injected into
    /// the exchanges, the mask reduction, and the heartbeat stream.
    ///
    /// With recovery enabled (the default), transient faults are retried
    /// with backoff (escalating to the reliable verified path after
    /// [`RecoveryConfig::max_retries`](crate::recovery::RecoveryConfig)
    /// resampled attempts) and fail-stop losses roll back to the latest
    /// checkpoint and continue in degraded mode — the returned depths are
    /// bit-identical to the fault-free run, with every retry, rollback, and
    /// checkpoint charged to [`RunStats::fault`]. With
    /// [`RecoveryConfig::disabled`](crate::recovery::RecoveryConfig::disabled),
    /// the first detected fault surfaces as [`RunError::Fault`].
    ///
    /// # Errors
    /// [`RunError::Build`] for an invalid source; [`RunError::Fault`] when
    /// a detected fault is not recovered under the configured policy.
    pub fn run_with_faults(
        &self,
        source: VertexId,
        config: &BfsConfig,
        plan: &FaultPlan,
    ) -> Result<BfsResult, RunError> {
        self.run_inner(source, config, false, Some(plan))
    }

    /// Like [`DistributedGraph::run`], additionally producing the Graph500
    /// BFS parent tree (§VI-A3): parents come for free locally from the
    /// `dd`/`dn`/`nd` kernels; only remote `nn` destinations need a final
    /// parent exchange, whose modeled cost lands in
    /// [`BfsResult::parent_exchange_seconds`].
    pub fn run_with_parents(
        &self,
        source: VertexId,
        config: &BfsConfig,
    ) -> Result<BfsResult, BuildError> {
        self.run_inner(source, config, true, None).map_err(|e| match e {
            RunError::Build(b) => b,
            RunError::Fault(f) => unreachable!("fault error without a fault plan: {f}"),
        })
    }

    fn run_inner(
        &self,
        source: VertexId,
        config: &BfsConfig,
        track_parents: bool,
        plan: Option<&FaultPlan>,
    ) -> Result<BfsResult, RunError> {
        if source >= self.num_vertices {
            return Err(RunError::Build(BuildError::SourceOutOfRange {
                source,
                num_vertices: self.num_vertices,
            }));
        }
        let start = Instant::now();
        let topo = self.topology;
        let cost = &config.cost;
        let d = self.separation.num_delegates();

        let mut workers: Vec<GpuWorker> = topo
            .gpus()
            .enumerate()
            .map(|(flat, gpu)| {
                let mut w = GpuWorker::new(
                    gpu,
                    Arc::clone(&self.subgraphs[flat]),
                    DirectionState::new(config.dd_factors, config.direction_optimization),
                    DirectionState::new(config.dn_factors, config.direction_optimization),
                    DirectionState::new(config.nd_factors, config.direction_optimization),
                );
                w.per_kernel_direction = config.per_kernel_direction;
                w.kernel_variant = config.kernel_variant;
                w
            })
            .collect();
        if track_parents {
            for w in &mut workers {
                w.enable_parent_tracking();
            }
        }

        // Seed the source.
        if let Some(did) = self.separation.delegate_id(source) {
            let mut seed = DelegateMask::new(d);
            seed.set(did);
            workers.par_iter_mut().for_each(|w| w.consume_reduced_mask(&seed, 0));
        } else {
            let owner = topo.vertex_owner(source);
            let w = &mut workers[topo.flat(owner)];
            let slot = topo.local_index(source);
            w.depths_local[slot as usize] = 0;
            w.frontier.push(slot);
        }

        // ---- Online verification (inert when Off: no state, no checks,
        // no extra modeled time — `sync_bytes()` returns the same 8 bytes
        // the termination allreduce always shipped). ----
        let vmode = config.verification;
        let mut verify_state: Option<VerifyState> = vmode.is_on().then(|| {
            let mut vs = VerifyState::new(topo.num_gpus() as usize);
            if let Some(did) = self.separation.delegate_id(source) {
                vs.fold_delegate(did, 0);
            } else {
                let owner = topo.flat(topo.vertex_owner(source));
                vs.fold_local(owner, topo.local_index(source), 0);
            }
            vs
        });

        // ---- Observability (inert when Off: the sink only *records* the
        // very same f64 values the timing fold below computes — it adds,
        // removes, and reorders no modeled-time arithmetic). ----
        let mut sink: Option<SpanSink> = config
            .observability
            .is_on()
            .then(|| SpanSink::new(topo.num_ranks(), topo.gpus_per_rank()));
        let mut sink_mark: Option<SinkMark> = None;

        // ---- Resilience state (inert without a fault plan). ----
        let recovery = config.recovery;
        let p = topo.num_gpus() as usize;
        let mut injector: Option<FaultInjector> = plan.map(|pl| FaultInjector::new(pl.clone()));
        let mut fault = FaultStats::default();
        let mut checkpoint: Option<Checkpoint> = None;
        // Elastic membership: the phi-accrual detector interprets heartbeat
        // arrival statistics (ground-truth silence comes from the
        // injector), and the elastic map tracks how each confirmed-dead
        // member's partition is re-homed (hot spare, spread, or buddy).
        let mut membership = Membership::new(p, topo.num_spares() as usize, recovery.membership);
        let mut elastic = ElasticMap::new(p);
        // Static per-partition edge loads — the weights of the
        // edge-balanced spreading plan.
        let loads: Vec<u64> = self.subgraphs.iter().map(|sg| sg.num_edges().max(1)).collect();
        // Delegate-mask wire size (the `d/8` of §V-A, word-rounded) — what
        // spare absorption and rejoin pay to re-replicate visited state.
        let mask_bytes = (d as u64).div_ceil(64) * 8;
        // Messages delayed in flight by the injector: `(due_iter, gpu, slot)`.
        let mut delayed: Vec<(u32, usize, u32)> = Vec::new();
        // SDC escalation ladder: failed-verification supersteps re-execute
        // from the device shadow up to `max_retries` times (persistent
        // upsets refire and fail again), then roll back to the host
        // checkpoint; a bounded number of verified rollbacks later the
        // fault is surfaced as unrecoverable. Clean supersteps reset the
        // re-execution rung but not the rollback rung.
        let mut sdc_reexec_attempts: u32 = 0;
        let mut sdc_rollbacks: u32 = 0;
        // Verification digests as of the checkpoint, restored with it.
        let mut cp_verify: Option<VerifyState> = None;

        let mut records: Vec<IterationRecord> = Vec::new();
        let mut iter: u32 = 0;
        // Previous iteration's *reduced* delegate mask — the shared
        // reference the differential sparse-index mask codec encodes
        // against (both ends of the collective hold it by construction).
        let mut prev_reduced: Option<Vec<u64>> = None;
        loop {
            let frontier_len: u64 = workers.iter().map(|w| w.frontier.len() as u64).sum();
            let new_delegates = workers[0].new_delegates.len() as u64;
            if frontier_len == 0 && new_delegates == 0 {
                break;
            }

            // ---- Checkpoint cadence (before the heartbeat, so an
            // iteration-0 fail-stop always has a rollback target). A
            // re-entered iteration after rollback is not re-captured. ----
            if injector.is_some()
                && recovery.enabled
                && (iter == 0
                    || (recovery.checkpoint_interval > 0
                        && iter.is_multiple_of(recovery.checkpoint_interval)))
                && checkpoint.as_ref().is_none_or(|c| c.iter != iter)
            {
                let mut cp = Checkpoint::capture(iter, &workers, records.len());
                let cp_seconds = cp.modeled_seconds(cost);
                fault.checkpoint_seconds += cp_seconds;
                fault.checkpoints_taken += 1;
                // At-rest tamper hook: flip bits in the snapshot *after*
                // its integrity seal is taken, so a later rollback's
                // verification catches the corruption instead of silently
                // replaying poisoned state.
                if let Some(inj) = injector.as_mut() {
                    if let Some(cc) = inj.checkpoint_corruption(iter) {
                        cp.corrupt_mask_word(cc.gpu, cc.word, cc.xor);
                    }
                }
                checkpoint = Some(cp);
                cp_verify = verify_state.clone();
                if let Some(s) = sink.as_mut() {
                    s.record_fault(FaultKind::Checkpoint, iter, cp_seconds);
                    // A rollback rewinds to here: iteration events after
                    // this mark are vacated, fault spans are kept.
                    sink_mark = Some(s.mark());
                }
            }

            // ---- Heartbeat + membership: one status per member at the
            // superstep boundary (piggybacked on the termination
            // allreduce). The injector reports ground-truth silence; the
            // phi-accrual detector decides what it *means* — suspicion,
            // confirmed death, or a live rejoin. ----
            if let Some(inj) = injector.as_mut() {
                let statuses = inj.heartbeat_arrivals(iter, p);
                let events = membership.observe(iter, &statuses);
                let mut confirmed: Vec<usize> = Vec::new();
                for ev in &events {
                    match *ev {
                        MembershipEvent::Suspected { .. } => {
                            // Suspicion is not failure: routing continues
                            // unchanged; only the targeted liveness probe
                            // (a tiny blocking collective) is charged.
                            let probe = cost.network.allreduce_time(16, topo.num_ranks(), true);
                            fault.recovery_seconds += probe;
                            fault.suspicions += 1;
                            if let Some(s) = sink.as_mut() {
                                s.record_fault(FaultKind::Suspicion, iter, probe);
                            }
                        }
                        MembershipEvent::Cleared { .. } => {}
                        MembershipEvent::ConfirmedDead { gpu, .. } => confirmed.push(gpu),
                        MembershipEvent::Rejoined { gpu, .. } => {
                            // Live rejoin: the survivors' state is
                            // authoritative, so no rollback — the member
                            // re-syncs from the current checkpoint image
                            // and the delegate reduction, then reclaims
                            // its partition (releasing any spare).
                            let resync = cost
                                .network
                                .p2p_time(Checkpoint::worker_bytes(&workers[gpu]), false)
                                + cost.network.allreduce_time(mask_bytes, topo.num_ranks(), true);
                            fault.recovery_seconds += resync;
                            fault.rejoins += 1;
                            if let Some(s) = sink.as_mut() {
                                s.record_fault(FaultKind::Rejoin, iter, resync);
                            }
                            if elastic.is_failed(gpu) {
                                if let Assignment::Spare(slot) =
                                    elastic.rejoin(gpu, &loads, recovery.hosting)
                                {
                                    membership.release_spare(slot);
                                }
                            }
                        }
                    }
                }
                if !confirmed.is_empty() {
                    if !(recovery.enabled && recovery.degraded_mode) {
                        return Err(RunError::Fault(FaultError::GpuFailed {
                            gpu: confirmed[0],
                            iteration: iter,
                        }));
                    }
                    // One rollback covers every death confirmed at this
                    // boundary: charge the work wasted since the
                    // checkpoint plus restoring every GPU from host
                    // memory, and verify the snapshot seals before
                    // replaying anything.
                    let cp = checkpoint.as_ref().expect("implicit iteration-0 checkpoint");
                    let wasted: f64 =
                        records[cp.records_len..].iter().map(|r| r.timing.elapsed()).sum();
                    let spent = wasted + cp.modeled_seconds(cost);
                    fault.rollbacks += 1;
                    records.truncate(cp.records_len);
                    if let Err(e) = cp.restore(&mut workers) {
                        return Err(RunError::Fault(FaultError::CheckpointCorrupt {
                            iteration: iter,
                            gpu: e.gpu,
                        }));
                    }
                    // Restore-path SDC hook: strike the restored depth
                    // buffers *after* the seal check passed, so online
                    // verification (not the seal) must catch it on replay.
                    for ev in inj.sdc_events_where(iter, SdcSite::RestoreBuffer, |ev| {
                        ev.gpu < p && !workers[ev.gpu].depths_local.is_empty()
                    }) {
                        strike_depths(
                            &self.separation,
                            &topo,
                            ev.gpu,
                            &mut workers[ev.gpu].depths_local,
                            &ev,
                        );
                    }
                    verify_state = cp_verify.clone();
                    fault.recovery_seconds += spent;
                    if let Some(s) = sink.as_mut() {
                        if let Some(m) = &sink_mark {
                            s.truncate(m);
                        }
                        s.record_fault(FaultKind::Recovery, iter, spent);
                    }
                    // Re-home each confirmed-dead partition, in
                    // preference order: a free hot spare absorbs it at
                    // full speed; otherwise it is spread across the
                    // survivors (or buddy-hosted under the legacy
                    // policy). Survivability is checked against the same
                    // predicate `plan_is_survivable` replays.
                    for gpu in confirmed {
                        if let Some(slot) = membership.take_spare() {
                            elastic.fail_to_spare(gpu, slot);
                            // The spare reloads the graph partition from
                            // host storage, receives the checkpointed
                            // mutable state, and re-replicates the
                            // delegate masks via the usual collective.
                            let absorb = self.subgraphs[gpu].memory_usage().total() as f64
                                / cost.network.staging_bandwidth
                                + cost
                                    .network
                                    .p2p_time(Checkpoint::worker_bytes(&workers[gpu]), false)
                                + cost.network.allreduce_time(mask_bytes, topo.num_ranks(), true);
                            fault.recovery_seconds += absorb;
                            fault.spare_absorptions += 1;
                            if let Some(s) = sink.as_mut() {
                                s.record_fault(FaultKind::SpareAbsorb, iter, absorb);
                            }
                        } else {
                            if !elastic.next_failure_is_survivable(gpu) {
                                // No survivor would remain: unrecoverable.
                                return Err(RunError::Fault(FaultError::GpuFailed {
                                    gpu,
                                    iteration: iter,
                                }));
                            }
                            match recovery.hosting {
                                HostingPolicy::Buddy => {
                                    let host = elastic.fail_to_buddy(gpu, &topo);
                                    let ship = cost.network.p2p_time(
                                        Checkpoint::worker_bytes(&workers[gpu]),
                                        topo.same_rank(topo.unflat(gpu), topo.unflat(host)),
                                    );
                                    fault.recovery_seconds += ship;
                                    if let Some(s) = sink.as_mut() {
                                        s.record_fault(FaultKind::Recovery, iter, ship);
                                    }
                                }
                                HostingPolicy::Spread => {
                                    elastic.fail_to_spread(gpu, &loads);
                                    let hosts: Vec<(usize, f64)> = match elastic.assignment(gpu) {
                                        Assignment::Hosted(h) => h.clone(),
                                        other => {
                                            unreachable!("fail_to_spread must host: {other:?}")
                                        }
                                    };
                                    let bytes = Checkpoint::worker_bytes(&workers[gpu]);
                                    let ship: f64 = hosts
                                        .iter()
                                        .map(|&(host, share)| {
                                            cost.network.p2p_time(
                                                (bytes as f64 * share).ceil() as u64,
                                                topo.same_rank(topo.unflat(gpu), topo.unflat(host)),
                                            )
                                        })
                                        .sum();
                                    fault.recovery_seconds += ship;
                                    fault.spread_hostings += 1;
                                    if let Some(s) = sink.as_mut() {
                                        s.record_fault(FaultKind::Spread, iter, ship);
                                    }
                                }
                            }
                        }
                    }
                    iter = cp.iter;
                    // The codec reference mask is ahead of the restored
                    // state; drop it so the next reduction encodes from
                    // scratch (the codecs would fall back to raw anyway).
                    prev_reduced = None;
                    // In-flight stragglers are superseded by the restored
                    // state (checkpoints sit at message-free boundaries).
                    delayed.clear();
                    continue;
                }
            }
            let bw = injector.as_ref().map_or(1.0, |inj| inj.bandwidth_factor(iter));

            // Device shadow for verified re-execution: captured at the
            // last point the superstep inputs are known-clean.
            let shadow: Option<SdcShadow> =
                (injector.is_some() && vmode.is_on()).then(|| SdcShadow {
                    workers: workers.clone(),
                    delayed: delayed.clone(),
                    prev_reduced: prev_reduced.clone(),
                    verify: verify_state.clone().expect("verification armed"),
                });

            // ---- Local computation on every GPU, in parallel. ----
            let mut outputs: Vec<LocalIterationOutput> =
                workers.par_iter_mut().map(|w| w.run_iteration(iter, &topo)).collect();

            // Compute-SDC hooks: strike kernel-output depth words and the
            // freshly built next-frontier lists. The flips land *after*
            // the kernels ran — the model's stand-in for an in-kernel
            // upset — and fire regardless of the verification tier, which
            // is exactly what makes `Off` silently corruptible.
            if let Some(inj) = injector.as_mut() {
                for ev in inj.sdc_events_where(iter, SdcSite::KernelDepth, |ev| {
                    ev.gpu < p && !workers[ev.gpu].depths_local.is_empty()
                }) {
                    strike_depths(
                        &self.separation,
                        &topo,
                        ev.gpu,
                        &mut workers[ev.gpu].depths_local,
                        &ev,
                    );
                }
                for ev in inj.sdc_events_where(iter, SdcSite::FrontierDrop, |ev| {
                    ev.gpu < p && !outputs[ev.gpu].next_frontier.is_empty()
                }) {
                    let list = &mut outputs[ev.gpu].next_frontier;
                    // An earlier drop in the same batch can have emptied
                    // this list; with nothing left to drop the upset is
                    // masked (the earlier one already broke conservation).
                    if list.is_empty() {
                        continue;
                    }
                    list.remove((ev.index % list.len() as u64) as usize);
                }
            }

            // Per-GPU computation time: the two streams run concurrently.
            // With DO on, each iteration also pays the direction-decision
            // kernel (workload prediction); on long-tail graphs this is
            // what makes DOBFS slightly slower than BFS (§VI-D).
            let do_overhead = if config.direction_optimization {
                cost.device.kernel_launch_overhead
            } else {
                0.0
            };
            // One effective device prices every computation-side charge:
            // the scalar variant runs on a derated device (per-bit probing
            // wastes word-level bandwidth), the word-parallel default on
            // the base model — bit-identical to the seed.
            let vdev = config.kernel_variant.device_model(&cost.device);
            let mut phases: Vec<PhaseTimes> = outputs
                .iter()
                .map(|o| {
                    let w = &o.work;
                    let dev = &vdev;
                    let normal = dev.kernel_time(KernelKind::Previsit, w.normal_previsit_vertices)
                        + dev.kernel_time(KernelKind::DynamicVisit, w.nn_edges)
                        + dev.kernel_time(KernelKind::DynamicVisit, w.nd_edges);
                    let delegate = dev
                        .kernel_time(KernelKind::Previsit, w.delegate_previsit_vertices)
                        + dev.kernel_time(KernelKind::MergeVisit, w.dd_edges)
                        + dev.kernel_time(KernelKind::DynamicVisit, w.dn_edges);
                    PhaseTimes {
                        computation: normal.max(delegate) + do_overhead,
                        ..PhaseTimes::zero()
                    }
                })
                .collect();

            // Typed kernel spans for the trace: built from the same
            // per-GPU work counters and priced with the same device model
            // calls as the `phases` fold above, so per-stream span sums
            // equal the driver's stream times bit-for-bit.
            let observing = sink.is_some();
            let mut kernel_events: Vec<Vec<KernelEvent>> = if observing {
                outputs.iter().map(|o| o.kernel_events(&vdev)).collect()
            } else {
                Vec::new()
            };
            let mut mask_hops: Vec<CollectiveHop> = Vec::new();

            // Degraded mode: hosts run their shares of dead members'
            // partitions serially after their own, so the dead GPU's
            // computation time moves onto its hosts share-weighted —
            // `(p+1)/p` on the critical path under spreading, `2×` under
            // buddy hosting. Spare-absorbed partitions run at full speed
            // on their standby GPU and shift no time at all.
            let hosted: Vec<(usize, Vec<(usize, f64)>)> = if elastic.any_failed() {
                elastic.hosted_pairs().map(|(g, h)| (g, h.to_vec())).collect()
            } else {
                Vec::new()
            };
            if !hosted.is_empty() {
                fault.degraded_iterations += 1;
                for (dead, hosts) in &hosted {
                    let moved = phases[*dead].computation;
                    phases[*dead].computation = 0.0;
                    for &(host, share) in hosts {
                        phases[host].computation += moved * share;
                    }
                }
            }

            // ---- Delegate mask reduction (only when something changed). ----
            let mask_changed = d > 0
                && outputs
                    .iter()
                    .zip(&workers)
                    .any(|(o, w)| o.output_mask.differs_from(&w.visited_mask));
            let mut remote_delegate = 0.0;
            let mut local_mask_time = 0.0;
            let mut mask_remote_bytes = 0u64;
            let mut iter_bytes_saved = 0u64;
            let mut iter_codec_seconds = 0f64;
            let mut iter_codec_counts = gcbfs_compress::CodecCounts::default();
            // First violated online check this superstep (mask-reduction
            // checks run here; settled-state checks run after frontier
            // formation). Escalation happens once, at the superstep tail.
            let mut sdc_check: Option<&'static str> = None;
            if mask_changed {
                let words: Vec<Vec<u64>> =
                    outputs.iter().map(|o| o.output_mask.words().to_vec()).collect();
                // Corrupted mask messages fail their checksum and the
                // reduction is re-run (the corruption is one-shot, so the
                // retry is clean); each discarded attempt plus its backoff
                // is charged to recovery time.
                let mut outcome = if let Some(inj) = injector.as_mut() {
                    let mut attempt = 0u32;
                    loop {
                        let mut attempt_words = words.clone();
                        let corrupted = inj.corrupt_mask_words(iter, &mut attempt_words);
                        let out = allreduce_or_compressed(
                            topo,
                            cost,
                            &attempt_words,
                            config.blocking_reduce,
                            config.compression,
                            prev_reduced.as_deref(),
                        );
                        match corrupted {
                            None => break out,
                            Some(gpu) => {
                                if !recovery.enabled || attempt >= recovery.max_retries {
                                    return Err(RunError::Fault(
                                        FaultError::MaskChecksumMismatch { iteration: iter, gpu },
                                    ));
                                }
                                fault.retries += 1;
                                let spent = out.global_time * bw
                                    + out.local_time
                                    + retry_backoff(recovery.retry_backoff_seconds, attempt);
                                fault.recovery_seconds += spent;
                                if let Some(s) = sink.as_mut() {
                                    s.record_fault(FaultKind::Retry, iter, spent);
                                }
                                attempt += 1;
                            }
                        }
                    }
                } else {
                    allreduce_or_compressed(
                        topo,
                        cost,
                        &words,
                        config.blocking_reduce,
                        config.compression,
                        prev_reduced.as_deref(),
                    )
                };
                // Reduction-SDC hook: strike the *combined* words after
                // the transport checksums passed — a silent upset in the
                // OR tree itself, invisible to the wire-level seals. Only
                // the ABFT cross-check below can see it.
                if let Some(inj) = injector.as_mut() {
                    // Bits past `d` in the final word are padding the
                    // reduction never materializes: an upset landing only
                    // there is provably masked and does not count as fired.
                    let tail = d as usize % 64;
                    let last = outcome.reduced.len().saturating_sub(1);
                    let lane_of =
                        |idx: usize| if idx == last && tail != 0 { (1u64 << tail) - 1 } else { !0 };
                    let reduced = &outcome.reduced;
                    for ev in inj.sdc_events_where(iter, SdcSite::ReducedMask, |ev| {
                        if reduced.is_empty() {
                            return false;
                        }
                        let idx = (ev.index % reduced.len() as u64) as usize;
                        match ev.mode {
                            SdcMode::Flip => ev.bits & lane_of(idx) != 0,
                            SdcMode::Stuck => reduced[idx] != ev.bits & lane_of(idx),
                        }
                    }) {
                        let idx = (ev.index % outcome.reduced.len() as u64) as usize;
                        outcome.reduced[idx] = match ev.mode {
                            SdcMode::Flip => outcome.reduced[idx] ^ (ev.bits & lane_of(idx)),
                            SdcMode::Stuck => ev.bits & lane_of(idx),
                        };
                    }
                }
                sdc_check = verify::check_mask_reduction(vmode, &words, &outcome.reduced);
                remote_delegate += outcome.global_time * bw;
                local_mask_time = outcome.local_time;
                // Total volume 2·(d/8)·prank (§V-A) — per-message size is
                // the compressed one when compression is on — zero on a
                // single rank.
                if topo.num_ranks() > 1 {
                    let nranks = topo.num_ranks() as u64;
                    mask_remote_bytes = 2 * outcome.bytes_per_message * nranks;
                    iter_bytes_saved += 2 * outcome.bytes_saved_per_message() * nranks;
                }
                iter_codec_seconds += outcome.codec_seconds;
                iter_codec_counts.merge(&outcome.codec_counts);
                if config.compression.is_on() {
                    prev_reduced = Some(outcome.reduced.clone());
                }
                if observing {
                    // Ring hops of the two-phase reduction; their wire sum
                    // is exactly `mask_remote_bytes` by construction.
                    mask_hops = mask_reduce_hops(topo.num_ranks(), &outcome);
                }
                let reduced = DelegateMask::from_words(d, outcome.reduced);
                let next_depth = iter + 1;
                // Shadow the delegate settles the consume below performs.
                // A spurious reduction bit folds in here too — consistently
                // with the settle — so the digest stays a check on the
                // *settle path*, while `mask-exact` above owns the
                // reduction itself.
                if let Some(vs) = verify_state.as_mut() {
                    for id in reduced.new_bits(&workers[0].visited_mask) {
                        vs.fold_delegate(id, next_depth);
                    }
                }
                workers.par_iter_mut().for_each(|w| w.consume_reduced_mask(&reduced, next_depth));
                // Mask copy/OR work on the delegate stream.
                let mask_ops = vdev.kernel_time(KernelKind::MaskOps, reduced.byte_size());
                for ph in &mut phases {
                    ph.computation += mask_ops;
                }
                if observing {
                    for evs in &mut kernel_events {
                        evs.push(KernelEvent {
                            tag: KernelTag::MaskOps,
                            dir: DirTag::NotApplicable,
                            stream: StreamTag::Delegate,
                            work: reduced.byte_size(),
                            seconds: mask_ops,
                        });
                    }
                }
            }
            // Per-iteration synchronization (termination/activity flag): a
            // tiny blocking allreduce — the "per-iteration overhead of a
            // few µs" the WDC analysis talks about (§VI-D). Verification
            // sums ride this same collective: 8 bytes when Off (exactly
            // the historical width), 24 under Checksums, 40 under Full.
            remote_delegate +=
                cost.network.allreduce_time(vmode.sync_bytes(), topo.num_ranks(), true) * bw;

            // ---- Normal vertex exchange. ----
            let sends = outputs.iter_mut().map(|o| std::mem::take(&mut o.remote_nn)).collect();
            let mut ex = exchange_normals_with(
                &topo,
                cost,
                sends,
                config.local_all2all,
                config.uniquify,
                config.compression,
            );
            iter_bytes_saved += ex.bytes_saved();
            iter_codec_seconds += ex.codec_seconds;
            iter_codec_counts.merge(&ex.codec_counts);

            // Hosts also drive the dead members' communication lanes:
            // their exchange time moves with the partition, share-weighted
            // like the computation above.
            for (dead, hosts) in &hosted {
                reassign_lane_times(&mut ex.local_time, &mut ex.remote_time, *dead, hosts);
                // The stage split moves with the lane it decomposes.
                reassign_lane_times(&mut ex.encode_time, &mut ex.decode_time, *dead, hosts);
            }

            // Perturb the delivery with the injector's message fates.
            // Drops and delays leave the per-peer ack counts short, so the
            // whole exchange is retransmitted (resampling the fault
            // stream); after `max_retries` failed attempts the transport
            // escalates to the verified reliable path, which always
            // succeeds. Duplicates are delivered — the depth update is
            // idempotent — and delayed copies surface in a later
            // superstep as no-ops. Each failed attempt's transfer time
            // plus its exponential backoff is charged to recovery time.
            let delivered: Vec<Vec<u32>> = if let Some(inj) = injector.as_mut() {
                let worst_remote = ex.remote_time.iter().cloned().fold(0.0, f64::max) * bw;
                let mut attempt = 0u32;
                loop {
                    if recovery.enabled && attempt >= recovery.max_retries {
                        break ex.delivered.clone(); // reliable-path escalation
                    }
                    let mut tampered = false;
                    let mut perturbed: Vec<Vec<u32>> = Vec::with_capacity(ex.delivered.len());
                    for (g, list) in ex.delivered.iter().enumerate() {
                        let mut out = Vec::with_capacity(list.len());
                        for (i, &slot) in list.iter().enumerate() {
                            match inj.message_fate(iter, attempt, g as u64, i as u64) {
                                MessageFate::Deliver => out.push(slot),
                                MessageFate::Duplicate => {
                                    out.push(slot);
                                    out.push(slot);
                                }
                                MessageFate::Drop => tampered = true,
                                MessageFate::Delay(k) => {
                                    tampered = true;
                                    delayed.push((iter + k, g, slot));
                                }
                            }
                        }
                        perturbed.push(out);
                    }
                    if !tampered {
                        break perturbed;
                    }
                    if !recovery.enabled {
                        return Err(RunError::Fault(FaultError::ExchangeMismatch {
                            iteration: iter,
                            attempts: attempt + 1,
                        }));
                    }
                    fault.retries += 1;
                    let spent =
                        worst_remote + retry_backoff(recovery.retry_backoff_seconds, attempt);
                    fault.recovery_seconds += spent;
                    if let Some(s) = sink.as_mut() {
                        s.record_fault(FaultKind::Retry, iter, spent);
                    }
                    attempt += 1;
                }
            } else {
                std::mem::take(&mut ex.delivered)
            };

            // Form next frontiers: local discoveries + applied remote updates.
            let next_depth = iter + 1;
            for (g, out) in outputs.iter_mut().enumerate() {
                let w = &mut workers[g];
                debug_assert!(w.frontier.is_empty());
                w.frontier = std::mem::take(&mut out.next_frontier);
                // The reduction is done with this iteration's output mask;
                // hand its buffer back to the worker for reuse.
                w.recycle_output_mask(std::mem::replace(
                    &mut out.output_mask,
                    DelegateMask::new(0),
                ));
                for &slot in &delivered[g] {
                    if let Some(s) = w.apply_remote_update(slot, next_depth) {
                        w.frontier.push(s);
                    }
                }
            }
            // Late-arriving copies from failed attempts land now; the
            // accepted retransmission already applied every update, so
            // these are idempotent no-ops (kept for model fidelity).
            if !delayed.is_empty() {
                let mut still_pending = Vec::with_capacity(delayed.len());
                for (due, g, slot) in delayed.drain(..) {
                    if due <= iter {
                        let w = &mut workers[g];
                        if let Some(s) = w.apply_remote_update(slot, next_depth) {
                            w.frontier.push(s);
                        }
                    } else {
                        still_pending.push((due, g, slot));
                    }
                }
                delayed = still_pending;
            }

            // Shadow the normal settles: every path that settled a local
            // vertex this superstep pushed it onto the owner's frontier
            // exactly once (local discovery, applied remote update, or a
            // drained delayed copy), so folding the frontier lists at
            // `next_depth` mirrors the settled state by construction.
            if let Some(vs) = verify_state.as_mut() {
                for (g, w) in workers.iter().enumerate() {
                    for &slot in &w.frontier {
                        vs.fold_local(g, slot, next_depth);
                    }
                }
            }
            // The verification scan itself is charged work: one fused
            // kernel per GPU at mask-ops bandwidth over everything the
            // tier touches. `Off` charges nothing and emits nothing.
            if vmode.is_on() {
                for (g, w) in workers.iter().enumerate() {
                    let bytes = verify::scan_bytes(
                        vmode,
                        mask_changed,
                        mask_bytes,
                        w.depths_local.len(),
                        d,
                        w.frontier.len(),
                    );
                    let scan = vdev.kernel_time(KernelKind::MaskOps, bytes);
                    phases[g].computation += scan;
                    if observing {
                        kernel_events[g].push(KernelEvent {
                            tag: KernelTag::MaskOps,
                            dir: DirTag::NotApplicable,
                            stream: StreamTag::Delegate,
                            work: bytes,
                            seconds: scan,
                        });
                    }
                }
            }

            // ---- Assemble cluster-wide iteration timing and stats. ----
            let mut cluster = PhaseTimes::zero();
            for (g, ph) in phases.iter().enumerate() {
                let mut p = *ph;
                p.local_comm = ex.local_time[g] + local_mask_time;
                p.remote_normal = ex.remote_time[g] * bw;
                cluster = cluster.max(&p);
            }
            cluster.remote_delegate = remote_delegate;
            let timing = IterationTiming {
                phases: cluster,
                blocking_reduce: config.blocking_reduce,
                overlap: config.overlap,
            };

            // ---- Online verification: detect, then escalate. The checks
            // run on the fully formed superstep (all settles and frontier
            // lists final); a violation vacates the superstep before it is
            // committed to the records or the trace. ----
            if vmode.is_on() {
                let violation = sdc_check.or_else(|| {
                    verify::check_superstep(
                        vmode,
                        verify_state.as_ref().expect("verification armed"),
                        &workers,
                        next_depth,
                    )
                });
                if let Some(check) = violation {
                    let Some(inj) = injector.as_mut() else {
                        // Without an injector there is nothing to corrupt
                        // state: a failed check is a driver bug, not SDC.
                        panic!("verification check `{check}` failed at iteration {iter} with no fault injection");
                    };
                    fault.sdc_detections += 1;
                    if let Some(s) = sink.as_mut() {
                        // Zero-duration marker: the scan that caught it is
                        // already charged to computation above.
                        s.record_fault(FaultKind::SdcDetect, iter, 0.0);
                    }
                    if !recovery.enabled {
                        return Err(RunError::Fault(FaultError::SdcDetected {
                            iteration: iter,
                            check,
                        }));
                    }
                    if sdc_reexec_attempts < recovery.max_retries {
                        // Rung 1 — re-execute the superstep from the device
                        // shadow: the whole aborted superstep plus a backoff
                        // is wasted time. A transient upset will not refire;
                        // a persistent one climbs the ladder.
                        let spent = timing.elapsed()
                            + retry_backoff(recovery.retry_backoff_seconds, sdc_reexec_attempts);
                        sdc_reexec_attempts += 1;
                        fault.sdc_reexecutions += 1;
                        fault.recovery_seconds += spent;
                        if let Some(s) = sink.as_mut() {
                            s.record_fault(FaultKind::SdcReexecute, iter, spent);
                        }
                        let snap = shadow.expect("shadow captured when verification is armed");
                        workers = snap.workers;
                        delayed = snap.delayed;
                        prev_reduced = snap.prev_reduced;
                        verify_state = Some(snap.verify);
                        continue;
                    }
                    // Rung 2 — roll back to the host checkpoint (same
                    // recipe as a confirmed fail-stop). Bounded: a fault
                    // that keeps striking through restored checkpoints is
                    // not recoverable by replay.
                    sdc_rollbacks += 1;
                    if sdc_rollbacks > recovery.max_retries.max(1) {
                        return Err(RunError::Fault(FaultError::SdcUnrecoverable {
                            iteration: iter,
                            check,
                        }));
                    }
                    let cp = checkpoint.as_ref().expect("implicit iteration-0 checkpoint");
                    let wasted: f64 =
                        records[cp.records_len..].iter().map(|r| r.timing.elapsed()).sum::<f64>()
                            + timing.elapsed();
                    let spent = wasted + cp.modeled_seconds(cost);
                    fault.rollbacks += 1;
                    records.truncate(cp.records_len);
                    if let Err(e) = cp.restore(&mut workers) {
                        return Err(RunError::Fault(FaultError::CheckpointCorrupt {
                            iteration: iter,
                            gpu: e.gpu,
                        }));
                    }
                    for ev in inj.sdc_events_where(iter, SdcSite::RestoreBuffer, |ev| {
                        ev.gpu < p && !workers[ev.gpu].depths_local.is_empty()
                    }) {
                        strike_depths(
                            &self.separation,
                            &topo,
                            ev.gpu,
                            &mut workers[ev.gpu].depths_local,
                            &ev,
                        );
                    }
                    verify_state = cp_verify.clone();
                    fault.recovery_seconds += spent;
                    if let Some(s) = sink.as_mut() {
                        if let Some(m) = &sink_mark {
                            s.truncate(m);
                        }
                        s.record_fault(FaultKind::Recovery, iter, spent);
                    }
                    sdc_reexec_attempts = 0;
                    iter = cp.iter;
                    prev_reduced = None;
                    delayed.clear();
                    continue;
                }
                sdc_reexec_attempts = 0;
            }

            if let Some(s) = sink.as_mut() {
                // One lane per GPU, carrying the very values the fold above
                // combined — the sink re-runs the same fold to place spans.
                let lanes: Vec<LanePhases> = phases
                    .iter()
                    .enumerate()
                    .map(|(g, ph)| LanePhases {
                        computation: ph.computation,
                        local_comm: ex.local_time[g] + local_mask_time,
                        remote_normal: ex.remote_time[g] * bw,
                    })
                    .collect();
                // Stage split of each lane's local_comm: the local mask
                // work gates the wire like the encode stage does, so it
                // rides the encode side; decode is pure codec time.
                let stages: Vec<LaneStages> = if config.overlap {
                    (0..phases.len())
                        .map(|g| LaneStages {
                            encode: ex.encode_time[g] + local_mask_time,
                            decode: ex.decode_time[g],
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                s.record_iteration(
                    iter,
                    &lanes,
                    remote_delegate,
                    config.blocking_reduce,
                    config.overlap,
                    &stages,
                    &kernel_events,
                    &ex.messages,
                    &mask_hops,
                );
            }

            let work_total = outputs.iter().fold(KernelWork::default(), |mut acc, o| {
                acc.normal_previsit_vertices += o.work.normal_previsit_vertices;
                acc.delegate_previsit_vertices += o.work.delegate_previsit_vertices;
                acc.nn_edges += o.work.nn_edges;
                acc.nd_edges += o.work.nd_edges;
                acc.dn_edges += o.work.dn_edges;
                acc.dd_edges += o.work.dd_edges;
                acc.normal_launches += o.work.normal_launches;
                acc.delegate_launches += o.work.delegate_launches;
                acc
            });
            let backward_gpus = outputs.iter().fold((0u32, 0u32, 0u32), |acc, o| {
                (
                    acc.0 + (o.directions.dd == Direction::Backward) as u32,
                    acc.1 + (o.directions.dn == Direction::Backward) as u32,
                    acc.2 + (o.directions.nd == Direction::Backward) as u32,
                )
            });
            records.push(IterationRecord {
                iter,
                frontier_len,
                new_delegates,
                work: work_total,
                backward_gpus,
                nn_updates_sent: ex.items_sent,
                remote_bytes: ex.remote_bytes + mask_remote_bytes,
                bytes_saved: iter_bytes_saved,
                codec_seconds: iter_codec_seconds,
                codec_counts: iter_codec_counts,
                mask_reduced: mask_changed,
                timing,
            });
            iter += 1;
        }

        // ---- Assemble global depths and (if requested) parents, via the
        // backend-agnostic assembly the proc coordinator also uses. ----
        let views: Vec<crate::assemble::GpuStateView<'_>> =
            workers.iter().map(crate::assemble::GpuStateView::of_worker).collect();
        let depths =
            crate::assemble::assemble_depths(&topo, &self.separation, self.num_vertices, &views);
        let (parents, parent_exchange_seconds) = if track_parents {
            let (p, log_entries) = crate::assemble::assemble_parents(
                &topo,
                &self.separation,
                source,
                self.num_vertices,
                &views,
                &depths,
            );
            // Modeled cost: 16 bytes per proposal (slot + parent + depth),
            // aggregated per sending GPU over the inter-node fabric.
            let bytes_per_gpu = 16 * log_entries / topo.num_gpus() as u64;
            (Some(p), config.cost.network.p2p_time(bytes_per_gpu, false))
        } else {
            (None, 0.0)
        };
        drop(views);

        // ---- Fault accounting (all zeros on fault-free runs). ----
        if let Some(inj) = &injector {
            let c = inj.counters();
            fault.injected_drops = c.drops;
            fault.injected_duplicates = c.duplicates;
            fault.injected_delays = c.delays;
            fault.injected_corruptions = c.corruptions;
            fault.fail_stops = c.fail_stops;
            fault.injected_checkpoint_corruptions = c.checkpoint_corruptions;
            fault.injected_sdc = c.sdc_injected;
        }

        let observed = sink.map(SpanSink::finish);
        let stats = RunStats {
            records,
            wall_seconds: start.elapsed().as_secs_f64(),
            fault,
            num_gpus: topo.num_gpus(),
        };
        Ok(BfsResult { source, depths, parents, parent_exchange_seconds, stats, observed })
    }
}

/// The outcome of one BFS run.
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// The source vertex.
    pub source: VertexId,
    /// Hop distance of every vertex (`UNREACHED` if unreachable).
    pub depths: Vec<u32>,
    /// The Graph500 BFS parent tree (source is its own parent, unreached
    /// vertices have `kernels::NO_PARENT`); only present for
    /// [`DistributedGraph::run_with_parents`].
    pub parents: Option<Vec<u64>>,
    /// Modeled cost of the end-of-run parent exchange for remote `nn`
    /// destinations (zero when parents were not requested). Kept separate
    /// from [`BfsResult::modeled_seconds`] as the paper reports hop
    /// distances and argues this cost is low (§VI-A3).
    pub parent_exchange_seconds: f64,
    /// Per-iteration statistics and timing.
    pub stats: RunStats,
    /// The finished structured trace, present only when the run was
    /// configured with
    /// [`ObservabilityConfig::Full`](gcbfs_trace::ObservabilityConfig):
    /// per-rank phase spans, typed kernel spans, per-peer message events,
    /// collective hops, and fault spans, all in modeled-time coordinates.
    pub observed: Option<TraceLog>,
}

impl BfsResult {
    /// Number of iterations `S`.
    pub fn iterations(&self) -> u32 {
        self.stats.iterations()
    }

    /// Modeled elapsed seconds on the Ray-like machine.
    pub fn modeled_seconds(&self) -> f64 {
        self.stats.modeled_elapsed()
    }

    /// Graph500 TEPS against the given edge count (the generator's `m/2`
    /// convention), using modeled time.
    pub fn teps(&self, graph500_edges: u64) -> f64 {
        graph500_edges as f64 / self.modeled_seconds()
    }

    /// Same in GTEPS.
    pub fn gteps(&self, graph500_edges: u64) -> f64 {
        self.teps(graph500_edges) / 1e9
    }

    /// Number of reached vertices.
    pub fn reached(&self) -> u64 {
        self.depths.iter().filter(|&&d| d != UNREACHED).count() as u64
    }

    /// Maximum finite depth.
    pub fn max_depth(&self) -> u32 {
        self.depths.iter().copied().filter(|&d| d != UNREACHED).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcbfs_graph::reference::{bfs_depths, validate_depths};
    use gcbfs_graph::rmat::RmatConfig;
    use gcbfs_graph::{builders, Csr};

    fn check_against_reference(graph: &EdgeList, topo: Topology, config: &BfsConfig, source: u64) {
        let dist = DistributedGraph::build(graph, topo, config).unwrap();
        let result = dist.run(source, config).unwrap();
        let csr = Csr::from_edge_list(graph);
        let expect = bfs_depths(&csr, source);
        assert_eq!(result.depths, expect, "depth mismatch from source {source}");
        validate_depths(&csr, source, &result.depths).unwrap();
    }

    #[test]
    fn matches_reference_on_small_graphs() {
        let config = BfsConfig::new(3);
        for topo in [Topology::new(1, 1), Topology::new(2, 2), Topology::new(3, 1)] {
            check_against_reference(&builders::double_star(4), topo, &config, 0);
            check_against_reference(&builders::double_star(4), topo, &config, 2);
            check_against_reference(&builders::path(9), topo, &config, 4);
            check_against_reference(&builders::grid(4, 5), topo, &config, 7);
        }
    }

    #[test]
    fn matches_reference_on_rmat_all_options() {
        let graph = RmatConfig::graph500(8).generate();
        let topo = Topology::new(2, 2);
        for (doo, l, u, br) in [
            (true, false, false, true),
            (false, false, false, true),
            (true, true, false, false),
            (true, true, true, true),
            (false, true, true, false),
        ] {
            let config = BfsConfig::new(8)
                .with_direction_optimization(doo)
                .with_local_all2all(l)
                .with_uniquify(u)
                .with_blocking_reduce(br);
            check_against_reference(&graph, topo, &config, 1);
            check_against_reference(&graph, topo, &config, 123);
        }
    }

    #[test]
    fn delegate_source_works() {
        let graph = builders::star(10);
        let config = BfsConfig::new(4);
        let topo = Topology::new(2, 1);
        // Vertex 0 is the hub: a delegate source.
        check_against_reference(&graph, topo, &config, 0);
        // And a leaf source reaches the hub in one step.
        check_against_reference(&graph, topo, &config, 5);
    }

    #[test]
    fn unreachable_vertices_stay_unreached() {
        let mut graph = builders::path(4);
        graph.num_vertices = 6; // vertices 4, 5 isolated
        let config = BfsConfig::new(10);
        let dist = DistributedGraph::build(&graph, Topology::new(2, 1), &config).unwrap();
        let r = dist.run(0, &config).unwrap();
        assert_eq!(r.depths[4], UNREACHED);
        assert_eq!(r.depths[5], UNREACHED);
        assert_eq!(r.reached(), 4);
        assert_eq!(r.max_depth(), 3);
    }

    #[test]
    fn source_out_of_range_is_an_error() {
        let graph = builders::path(4);
        let config = BfsConfig::new(10);
        let dist = DistributedGraph::build(&graph, Topology::new(1, 1), &config).unwrap();
        assert!(matches!(
            dist.run(99, &config),
            Err(BuildError::SourceOutOfRange { source: 99, .. })
        ));
    }

    #[test]
    fn stats_are_plausible() {
        let graph = RmatConfig::graph500(8).generate();
        let config = BfsConfig::new(8);
        let dist = DistributedGraph::build(&graph, Topology::new(2, 2), &config).unwrap();
        // Pick a well-connected source (vertex 0 may be isolated after the
        // id randomization).
        let degrees = graph.out_degrees();
        let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
        let r = dist.run(source, &config).unwrap();
        assert!(r.iterations() >= 2);
        assert!(r.modeled_seconds() > 0.0);
        assert!(r.stats.wall_seconds > 0.0);
        assert!(r.gteps(RmatConfig::graph500(8).graph500_edges()) > 0.0);
        // Every iteration examined at least one edge until the last.
        let s = &r.stats;
        assert_eq!(s.records.len(), r.iterations() as usize);
        assert!(s.total_edges_examined() > 0);
    }

    #[test]
    fn memory_accounting_matches_table_1_total() {
        use crate::subgraph::paper_total_bytes;
        let graph = RmatConfig::graph500(9).generate();
        let config = BfsConfig::new(16);
        let topo = Topology::new(2, 2);
        let dist = DistributedGraph::build(&graph, topo, &config).unwrap();
        let measured = dist.total_graph_bytes();
        let d = dist.separation().num_delegates() as u64;
        let formula = paper_total_bytes(
            graph.num_vertices,
            d,
            topo.num_gpus() as u64,
            graph.num_edges(),
            dist.class_counts().nn,
        );
        // The formula counts payload; the implementation adds one extra
        // offset entry per CSR row array (+1 sentinel per subgraph per GPU)
        // and rounds masks up — allow a small slack.
        let slack = (topo.num_gpus() as u64) * 4 * 16 + 1024;
        assert!(
            measured >= formula && measured <= formula + slack,
            "measured {measured} vs formula {formula}"
        );
    }

    #[test]
    fn device_memory_limit_enforced() {
        let mut config = BfsConfig::new(4);
        config.cost.device.memory_bytes = 16; // absurdly small device
        let graph = builders::grid(10, 10);
        let err = DistributedGraph::build(&graph, Topology::new(1, 1), &config).unwrap_err();
        assert!(matches!(err, BuildError::DeviceMemoryExceeded { .. }));
    }

    #[test]
    fn parent_tree_is_valid_on_rmat() {
        use gcbfs_graph::reference::validate_parents;
        let graph = RmatConfig::graph500(9).generate();
        let csr = Csr::from_edge_list(&graph);
        let config = BfsConfig::new(8);
        let dist = DistributedGraph::build(&graph, Topology::new(2, 2), &config).unwrap();
        let degrees = graph.out_degrees();
        let hub = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
        let leaf = (0..graph.num_vertices).find(|&v| degrees[v as usize] == 1).unwrap();
        for src in [hub, leaf] {
            let r = dist.run_with_parents(src, &config).unwrap();
            assert_eq!(r.depths, bfs_depths(&csr, src));
            let parents = r.parents.as_ref().expect("parents requested");
            validate_parents(&csr, src, &r.depths, parents).unwrap();
            assert!(r.parent_exchange_seconds >= 0.0);
        }
    }

    #[test]
    fn parent_tree_valid_under_all_options() {
        use gcbfs_graph::reference::validate_parents;
        let graph = RmatConfig::graph500(8).generate();
        let csr = Csr::from_edge_list(&graph);
        let topo = Topology::new(3, 2);
        let src = graph.out_degrees().iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
        for (doo, l, u) in [(true, false, false), (false, true, true), (true, true, true)] {
            let config = BfsConfig::new(8)
                .with_direction_optimization(doo)
                .with_local_all2all(l)
                .with_uniquify(u);
            let dist = DistributedGraph::build(&graph, topo, &config).unwrap();
            let r = dist.run_with_parents(src, &config).unwrap();
            validate_parents(&csr, src, &r.depths, r.parents.as_ref().unwrap()).unwrap();
        }
    }

    #[test]
    fn run_without_parents_has_none() {
        let graph = builders::path(6);
        let config = BfsConfig::new(4);
        let dist = DistributedGraph::build(&graph, Topology::new(2, 1), &config).unwrap();
        let r = dist.run(0, &config).unwrap();
        assert!(r.parents.is_none());
        assert_eq!(r.parent_exchange_seconds, 0.0);
    }

    #[test]
    fn build_once_run_many_sources() {
        let graph = RmatConfig::graph500(7).generate();
        let config = BfsConfig::new(8);
        let dist = DistributedGraph::build(&graph, Topology::new(2, 1), &config).unwrap();
        let csr = Csr::from_edge_list(&graph);
        for source in [0u64, 5, 17, 99] {
            let r = dist.run(source, &config).unwrap();
            assert_eq!(r.depths, bfs_depths(&csr, source));
        }
    }

    // ---- Communication compression. ----

    use gcbfs_compress::{CompressionMode, FrontierCodec, MaskCodec};

    #[test]
    fn compression_is_bit_exact_across_every_mode() {
        let graph = RmatConfig::graph500(8).generate();
        let base = BfsConfig::new(8).with_local_all2all(true).with_uniquify(true);
        let topo = Topology::new(2, 2);
        let dist = DistributedGraph::build(&graph, topo, &base).unwrap();
        let degrees = graph.out_degrees();
        let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
        let reference = dist.run(source, &base).unwrap();
        assert_eq!(reference.stats.total_bytes_saved(), 0, "Off mode charges raw bytes");
        for mode in [
            CompressionMode::Adaptive,
            CompressionMode::Fixed(FrontierCodec::VarintDelta, MaskCodec::SparseIndex),
            CompressionMode::Fixed(FrontierCodec::Bitmap, MaskCodec::RleMask),
            CompressionMode::Fixed(FrontierCodec::Raw32, MaskCodec::RawMask),
        ] {
            let config = base.with_compression(mode);
            let r = dist.run(source, &config).unwrap();
            assert_eq!(r.depths, reference.depths, "depths drifted under {mode}");
            assert_eq!(
                r.iterations(),
                reference.iterations(),
                "iteration count drifted under {mode}"
            );
            assert!(r.stats.total_codec_seconds() > 0.0, "codec work is charged under {mode}");
        }
    }

    #[test]
    fn adaptive_compression_mixes_codecs_and_saves_bytes() {
        // Needs enough vertices per GPU that mid-traversal messages carry
        // hundreds of ids — below that the 5-byte headers drown the
        // savings, exactly the regime the floor tests pin down.
        let graph = RmatConfig::graph500(12).generate();
        let base = BfsConfig::new(8);
        let topo = Topology::new(2, 2);
        let dist = DistributedGraph::build(&graph, topo, &base).unwrap();
        let degrees = graph.out_degrees();
        let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
        let raw = dist.run(source, &base).unwrap();
        let config = base.with_compression(CompressionMode::Adaptive);
        let r = dist.run(source, &config).unwrap();
        assert_eq!(r.depths, raw.depths);
        let stats = &r.stats;
        assert!(stats.total_bytes_saved() > 0, "an RMAT run has compressible traffic");
        assert!(stats.total_codec_seconds() > 0.0);
        assert!(stats.compression_ratio() > 1.0);
        assert!(
            stats.total_remote_bytes() < raw.stats.total_remote_bytes(),
            "the wire carries fewer bytes than the raw format"
        );
        let totals = stats.codec_totals();
        assert!(
            totals.distinct_frontier_codecs() >= 2,
            "adaptive selection must mix frontier codecs across the run: {totals:?}"
        );
        assert!(totals.mask_total() > 0, "mask reductions flow through the codec layer");
    }

    // ---- Fault injection and recovery. ----

    use crate::recovery::RecoveryConfig;
    use gcbfs_cluster::fault::FaultPlan;

    fn rmat_fixture() -> (EdgeList, DistributedGraph, BfsConfig, u64) {
        let graph = RmatConfig::graph500(8).generate();
        let config = BfsConfig::new(8);
        let dist = DistributedGraph::build(&graph, Topology::new(2, 2), &config).unwrap();
        let degrees = graph.out_degrees();
        let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
        (graph, dist, config, source)
    }

    #[test]
    fn benign_plan_matches_fault_free_but_pays_for_insurance() {
        let (graph, dist, config, source) = rmat_fixture();
        let clean = dist.run(source, &config).unwrap();
        let r = dist.run_with_faults(source, &config, &FaultPlan::new(7)).unwrap();
        assert_eq!(r.depths, bfs_depths(&Csr::from_edge_list(&graph), source));
        assert_eq!(r.depths, clean.depths);
        let f = &r.stats.fault;
        assert!(!f.any_faults());
        assert_eq!((f.retries, f.rollbacks), (0, 0));
        assert_eq!(f.recovery_seconds, 0.0);
        // Checkpoints are insurance: charged whenever fault tolerance is
        // armed, whether or not a fault ever fires.
        assert!(f.checkpoints_taken > 0);
        assert!(f.checkpoint_seconds > 0.0);
        assert!(r.modeled_seconds() > clean.modeled_seconds());
    }

    #[test]
    fn message_faults_recover_to_reference_depths() {
        let (graph, dist, config, source) = rmat_fixture();
        let expect = bfs_depths(&Csr::from_edge_list(&graph), source);
        let plan = FaultPlan::new(99).with_message_faults(0.2, 0.1, 0.1).with_max_delay(2);
        let r = dist.run_with_faults(source, &config, &plan).unwrap();
        assert_eq!(r.depths, expect, "recovery must be bit-exact");
        let f = &r.stats.fault;
        assert!(f.any_faults());
        assert!(f.injected_drops > 0, "a 20% drop rate must fire");
        assert!(f.retries > 0);
        assert!(f.recovery_seconds > 0.0, "retries are charged");
    }

    #[test]
    fn fail_stop_rolls_back_and_continues_degraded() {
        let (graph, dist, config, source) = rmat_fixture();
        let expect = bfs_depths(&Csr::from_edge_list(&graph), source);
        let plan = FaultPlan::new(1).with_fail_stop(2, 1);
        let r = dist.run_with_faults(source, &config, &plan).unwrap();
        assert_eq!(r.depths, expect);
        let f = &r.stats.fault;
        assert_eq!(f.fail_stops, 1);
        assert_eq!(f.rollbacks, 1);
        assert!(f.degraded_iterations > 0, "survivor hosts the dead partition");
        assert!(f.recovery_seconds > 0.0, "wasted work + reload are charged");
        assert!(f.checkpoints_taken > 0);
    }

    #[test]
    fn mask_corruption_is_detected_and_retried() {
        let graph = builders::double_star(4);
        let config = BfsConfig::new(3);
        let dist = DistributedGraph::build(&graph, Topology::new(2, 2), &config).unwrap();
        let expect = bfs_depths(&Csr::from_edge_list(&graph), 0);
        let plan = FaultPlan::new(3).with_mask_corruption(1, 0, 0, 0xff);
        let r = dist.run_with_faults(0, &config, &plan).unwrap();
        assert_eq!(r.depths, expect);
        let f = &r.stats.fault;
        assert_eq!(f.injected_corruptions, 1);
        assert!(f.retries >= 1, "the corrupted reduction re-runs");
        assert!(f.recovery_seconds > 0.0);
    }

    #[test]
    fn nic_degradation_slows_the_run_without_changing_depths() {
        let (_, dist, config, source) = rmat_fixture();
        let clean = dist.run_with_faults(source, &config, &FaultPlan::new(0)).unwrap();
        let plan = FaultPlan::new(0).with_nic_degradation(0, 100, 4.0);
        let slow = dist.run_with_faults(source, &config, &plan).unwrap();
        assert_eq!(slow.depths, clean.depths);
        assert!(
            slow.stats.phase_totals().remote_normal >= clean.stats.phase_totals().remote_normal
        );
        assert!(slow.modeled_seconds() > clean.modeled_seconds());
    }

    #[test]
    fn disabled_recovery_surfaces_typed_faults() {
        let (_, dist, config, source) = rmat_fixture();
        let off = config.with_recovery(RecoveryConfig::disabled());
        // Dropped updates: ack mismatch.
        let drops = FaultPlan::new(11).with_message_faults(1.0, 0.0, 0.0);
        assert!(matches!(
            dist.run_with_faults(source, &off, &drops),
            Err(RunError::Fault(FaultError::ExchangeMismatch { attempts: 1, .. }))
        ));
        // Fail-stop: heartbeat loss.
        let dead = FaultPlan::new(1).with_fail_stop(0, 1);
        assert!(matches!(
            dist.run_with_faults(source, &off, &dead),
            Err(RunError::Fault(FaultError::GpuFailed { gpu: 0, .. }))
        ));
        // Degraded mode off (but retries on) also refuses fail-stops.
        let no_degrade = config.with_recovery(RecoveryConfig::default().with_degraded_mode(false));
        assert!(matches!(
            dist.run_with_faults(source, &no_degrade, &dead),
            Err(RunError::Fault(FaultError::GpuFailed { .. }))
        ));
        // Corrupted mask words: checksum mismatch.
        let corrupt = FaultPlan::new(5).with_mask_corruption(0, 0, 0, 0b1);
        assert!(matches!(
            dist.run_with_faults(source, &off, &corrupt),
            Err(RunError::Fault(FaultError::MaskChecksumMismatch { gpu: 0, .. }))
        ));
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let (_, dist, config, source) = rmat_fixture();
        let plan = FaultPlan::random(5, 4, 8);
        let a = dist.run_with_faults(source, &config, &plan).unwrap();
        let b = dist.run_with_faults(source, &config, &plan).unwrap();
        assert_eq!(a.depths, b.depths);
        assert_eq!(a.stats.fault, b.stats.fault, "fault accounting is seeded");
        assert_eq!(a.modeled_seconds(), b.modeled_seconds());
    }

    #[test]
    fn compression_survives_chaos_bit_exactly() {
        // Satellite f: compressed messages cross the fault injector, get
        // dropped/duplicated/delayed, and the deterministic re-encode on
        // retransmit still recovers the reference depths. Scale 12 so the
        // traversal has iterations whose messages genuinely compress.
        let graph = RmatConfig::graph500(12).generate();
        let config = BfsConfig::new(8);
        let dist = DistributedGraph::build(&graph, Topology::new(2, 2), &config).unwrap();
        let degrees = graph.out_degrees();
        let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
        let expect = bfs_depths(&Csr::from_edge_list(&graph), source);
        let config = config.with_compression(CompressionMode::Adaptive);
        let plan = FaultPlan::new(99).with_message_faults(0.2, 0.1, 0.1).with_max_delay(2);
        let r = dist.run_with_faults(source, &config, &plan).unwrap();
        assert_eq!(r.depths, expect, "compressed recovery must be bit-exact");
        let f = &r.stats.fault;
        assert!(f.any_faults());
        assert!(f.retries > 0);
        assert!(r.stats.total_bytes_saved() > 0, "compression stays active under faults");
        // Deterministic: the same chaotic compressed run replays identically.
        let again = dist.run_with_faults(source, &config, &plan).unwrap();
        assert_eq!(again.depths, r.depths);
        assert_eq!(again.stats.fault, r.stats.fault);
        assert_eq!(again.stats.total_remote_bytes(), r.stats.total_remote_bytes());
    }

    #[test]
    fn compression_survives_fail_stop_rollback() {
        let graph = RmatConfig::graph500(12).generate();
        let config = BfsConfig::new(8);
        let dist = DistributedGraph::build(&graph, Topology::new(2, 2), &config).unwrap();
        let degrees = graph.out_degrees();
        let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
        let expect = bfs_depths(&Csr::from_edge_list(&graph), source);
        let config = config.with_compression(CompressionMode::Adaptive);
        let plan = FaultPlan::new(1).with_fail_stop(2, 1);
        let r = dist.run_with_faults(source, &config, &plan).unwrap();
        assert_eq!(r.depths, expect);
        let f = &r.stats.fault;
        assert_eq!(f.fail_stops, 1);
        assert_eq!(f.rollbacks, 1, "rollback resets the differential-mask baseline");
        assert!(r.stats.total_bytes_saved() > 0);
    }

    #[test]
    fn unsurvivable_plan_is_a_typed_error() {
        let graph = builders::path(9);
        let config = BfsConfig::new(10);
        let dist = DistributedGraph::build(&graph, Topology::new(1, 2), &config).unwrap();
        let plan = FaultPlan::new(0).with_fail_stop(0, 0).with_fail_stop(1, 1);
        assert!(matches!(
            dist.run_with_faults(0, &config, &plan),
            Err(RunError::Fault(FaultError::GpuFailed { .. }))
        ));
    }

    // ---- Silent data corruption: injection, detection, recovery. ----

    use crate::verify::VerificationMode;
    use gcbfs_cluster::fault::{SdcEvent, SdcSite};

    #[test]
    fn verification_off_is_bit_identical_to_the_default_run() {
        let (_, dist, config, source) = rmat_fixture();
        let a = dist.run(source, &config).unwrap();
        let b = dist.run(source, &config.with_verification(VerificationMode::Off)).unwrap();
        assert_eq!(a.depths, b.depths);
        assert_eq!(a.modeled_seconds(), b.modeled_seconds(), "Off adds zero modeled time");
        assert_eq!(a.iterations(), b.iterations());
        assert_eq!(a.stats.total_remote_bytes(), b.stats.total_remote_bytes());
    }

    #[test]
    fn verification_tiers_cost_more_but_stay_bit_exact_on_clean_runs() {
        let (graph, dist, config, source) = rmat_fixture();
        let expect = bfs_depths(&Csr::from_edge_list(&graph), source);
        let off = dist.run(source, &config).unwrap();
        let sums =
            dist.run(source, &config.with_verification(VerificationMode::Checksums)).unwrap();
        let full = dist.run(source, &config.with_verification(VerificationMode::Full)).unwrap();
        for r in [&off, &sums, &full] {
            assert_eq!(r.depths, expect, "verification never perturbs a clean traversal");
            assert_eq!(r.stats.fault.sdc_detections, 0);
        }
        assert!(sums.modeled_seconds() > off.modeled_seconds(), "checksum scans are charged");
        assert!(full.modeled_seconds() > sums.modeled_seconds(), "full re-scans cost more");
    }

    #[test]
    fn sdc_under_off_corrupts_silently() {
        let (graph, dist, config, source) = rmat_fixture();
        let expect = bfs_depths(&Csr::from_edge_list(&graph), source);
        let plan =
            FaultPlan::new(0).with_sdc_event(SdcEvent::flip(0, 1, SdcSite::KernelDepth, 5, 1 << 3));
        let r = dist.run_with_faults(source, &config, &plan).unwrap();
        let f = &r.stats.fault;
        assert_eq!(f.injected_sdc, 1, "the upset fires");
        assert_eq!(f.sdc_detections, 0, "Off has no detector");
        assert_ne!(r.depths, expect, "the corruption reaches the answer");
    }

    #[test]
    fn sdc_kernel_flip_is_detected_and_reexecuted_bit_exact() {
        let (graph, dist, config, source) = rmat_fixture();
        let expect = bfs_depths(&Csr::from_edge_list(&graph), source);
        let config = config.with_verification(VerificationMode::Full);
        let plan =
            FaultPlan::new(0).with_sdc_event(SdcEvent::flip(0, 1, SdcSite::KernelDepth, 5, 1 << 3));
        let r = dist.run_with_faults(source, &config, &plan).unwrap();
        assert_eq!(r.depths, expect, "recovered depths are bit-exact");
        let f = &r.stats.fault;
        assert_eq!(f.injected_sdc, 1);
        assert!(f.sdc_detections >= 1, "the flip cannot slip past Full");
        assert!(f.sdc_reexecutions >= 1, "a transient upset is repaired by re-execution");
        assert_eq!(f.rollbacks, 0, "the ladder never needed the checkpoint");
        assert!(f.recovery_seconds > 0.0, "the wasted superstep is charged");
    }

    #[test]
    fn sdc_reduction_and_frontier_events_recover_under_full() {
        let (graph, dist, config, source) = rmat_fixture();
        let expect = bfs_depths(&Csr::from_edge_list(&graph), source);
        let config = config.with_verification(VerificationMode::Full);
        for site in [SdcSite::ReducedMask, SdcSite::FrontierDrop] {
            let plan = FaultPlan::new(0).with_sdc_event(SdcEvent::flip(1, 1, site, 9, 1));
            let r = dist.run_with_faults(source, &config, &plan).unwrap();
            assert_eq!(r.depths, expect, "bit-exact recovery for {site:?}");
            let f = &r.stats.fault;
            assert_eq!(f.injected_sdc, 1, "{site:?} event fires");
            assert!(f.sdc_detections >= 1, "{site:?} is detected");
            assert!(f.sdc_reexecutions >= 1);
        }
    }

    #[test]
    fn sdc_restore_strike_climbs_the_ladder_to_a_clean_checkpoint() {
        // A fail-stop forces a rollback; the restore buffer is struck on
        // the way back. Re-execution replays the corrupted state and keeps
        // failing, so the ladder rolls back again — this time the one-shot
        // strike is spent and the replay is clean.
        let (graph, dist, config, source) = rmat_fixture();
        let expect = bfs_depths(&Csr::from_edge_list(&graph), source);
        let config = config.with_verification(VerificationMode::Full);
        let plan = FaultPlan::new(1).with_fail_stop(2, 1).with_sdc_event(SdcEvent::flip(
            0,
            0,
            SdcSite::RestoreBuffer,
            3,
            1 << 2,
        ));
        let r = dist.run_with_faults(source, &config, &plan).unwrap();
        assert_eq!(r.depths, expect);
        let f = &r.stats.fault;
        assert_eq!(f.injected_sdc, 1);
        assert!(f.sdc_detections >= 1, "the tampered restore cannot slip past Full");
        assert!(f.rollbacks >= 2, "fail-stop rollback plus the verified SDC rollback");
    }

    #[test]
    fn sdc_persistent_stuck_word_is_unrecoverable() {
        let (_, dist, config, source) = rmat_fixture();
        let config = config.with_verification(VerificationMode::Full);
        // A hard-stuck output word refires on every re-execution and every
        // post-rollback replay: no amount of retrying helps.
        let plan =
            FaultPlan::new(0).with_sdc_event(SdcEvent::stuck(0, 0, SdcSite::KernelDepth, 7, 1000));
        assert!(matches!(
            dist.run_with_faults(source, &config, &plan),
            Err(RunError::Fault(FaultError::SdcUnrecoverable { .. }))
        ));
    }

    #[test]
    fn sdc_detection_without_recovery_is_a_typed_error() {
        let (_, dist, config, source) = rmat_fixture();
        let config = config
            .with_verification(VerificationMode::Full)
            .with_recovery(RecoveryConfig::disabled());
        let plan =
            FaultPlan::new(0).with_sdc_event(SdcEvent::flip(0, 1, SdcSite::KernelDepth, 5, 1 << 3));
        assert!(matches!(
            dist.run_with_faults(source, &config, &plan),
            Err(RunError::Fault(FaultError::SdcDetected { iteration: 1, .. }))
        ));
    }

    #[test]
    fn sdc_runs_are_deterministic() {
        let (_, dist, config, source) = rmat_fixture();
        let config = config.with_verification(VerificationMode::Full);
        let plan = FaultPlan::random_sdc(23, 4, 6);
        let a = dist.run_with_faults(source, &config, &plan).unwrap();
        let b = dist.run_with_faults(source, &config, &plan).unwrap();
        assert_eq!(a.depths, b.depths);
        assert_eq!(a.stats.fault, b.stats.fault);
        assert_eq!(a.modeled_seconds(), b.modeled_seconds());
    }

    #[test]
    fn run_error_display_and_source() {
        use std::error::Error;
        let b = RunError::Build(BuildError::SourceOutOfRange { source: 9, num_vertices: 4 });
        assert!(b.to_string().contains("out of range"));
        assert!(b.source().is_some());
        let f = RunError::Fault(FaultError::GpuFailed { gpu: 1, iteration: 3 });
        assert!(f.to_string().contains("unrecovered fault"));
        assert!(f.source().is_some());
        assert_eq!(RunError::from(BuildError::SourceOutOfRange { source: 9, num_vertices: 4 }), b);
    }

    #[test]
    fn local_ids_overflow_is_detected_before_allocation() {
        let graph = EdgeList { num_vertices: u32::MAX as u64 + 2, edges: Vec::new() };
        let config = BfsConfig::new(4);
        let err = DistributedGraph::build(&graph, Topology::new(1, 1), &config).unwrap_err();
        assert!(
            matches!(err, BuildError::LocalIdsOverflow { per_gpu_vertices } if per_gpu_vertices > u32::MAX as u64)
        );
        assert!(err.to_string().contains("32-bit local ids"));
    }
}
