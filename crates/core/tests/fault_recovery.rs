//! Property tests of the chaos fabric: any survivable seeded fault plan
//! must recover to depths bit-identical to the fault-free reference, with
//! deterministic fault accounting — across the whole elastic-membership
//! lifecycle (cascading fail-stops, hot-spare absorption, multi-survivor
//! spreading, live rejoin, and checkpoint corruption at rest).

use gcbfs_cluster::fault::{plan_is_survivable, FaultError, FaultPlan};
use gcbfs_cluster::topology::Topology;
use gcbfs_core::driver::{DistributedGraph, RunError};
use gcbfs_core::recovery::{HostingPolicy, RecoveryConfig};
use gcbfs_core::BfsConfig;
use gcbfs_graph::reference::bfs_depths;
use gcbfs_graph::rmat::RmatConfig;
use gcbfs_graph::Csr;
use gcbfs_trace::{FaultKind, ObservabilityConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

struct Fixture {
    dist: DistributedGraph,
    config: BfsConfig,
    reference: Vec<u32>,
    source: u64,
}

fn build_fixture(topo: Topology) -> Fixture {
    let graph = RmatConfig::graph500(8).generate();
    let config = BfsConfig::new(8);
    let dist = DistributedGraph::build(&graph, topo, &config).unwrap();
    let degrees = graph.out_degrees();
    let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
    let reference = bfs_depths(&Csr::from_edge_list(&graph), source);
    Fixture { dist, config, reference, source }
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| build_fixture(Topology::new(2, 2)))
}

/// Same graph and partitioning, but the cluster carries two standby
/// spares outside the `p`-grid.
fn spared_fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| build_fixture(Topology::new(2, 2).with_spares(2)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline acceptance property: a random mix of drops,
    /// duplicates, delays, a possible fail-stop, mask corruptions, and a
    /// NIC degradation window never changes the answer — only the bill.
    #[test]
    fn random_fault_plans_recover_reference_depths(seed in 0u64..u64::MAX / 2) {
        let fx = fixture();
        let plan = FaultPlan::random(seed, 4, 8);
        prop_assert!(plan_is_survivable(&plan, fx.dist.topology()));
        let r = fx.dist.run_with_faults(fx.source, &fx.config, &plan)
            .expect("survivable plans must recover");
        prop_assert_eq!(&r.depths, &fx.reference);
        // Recovery is charged, never free: if anything fired, time accrued.
        let f = &r.stats.fault;
        if f.any_faults() && (f.retries > 0 || f.rollbacks > 0) {
            prop_assert!(f.recovery_seconds > 0.0);
        }
        prop_assert!(r.modeled_seconds().is_finite() && r.modeled_seconds() > 0.0);
    }

    /// Same plan, same run: the whole fault stream and its accounting are
    /// functions of the seed.
    #[test]
    fn fault_accounting_is_deterministic(seed in 0u64..u64::MAX / 2) {
        let fx = fixture();
        let plan = FaultPlan::random(seed, 4, 8);
        let a = fx.dist.run_with_faults(fx.source, &fx.config, &plan).unwrap();
        let b = fx.dist.run_with_faults(fx.source, &fx.config, &plan).unwrap();
        prop_assert_eq!(&a.depths, &b.depths);
        prop_assert_eq!(&a.stats.fault, &b.stats.fault);
        prop_assert_eq!(a.stats.iterations(), b.stats.iterations());
    }

    /// Elastic lifecycle, spare-less grid: cascading fail-stops spread
    /// across survivors, optional rejoins reclaim partitions, checkpoint
    /// corruption at rest surfaces as a typed error. Whatever the
    /// membership trajectory, a successful run's depths are bit-exact.
    #[test]
    fn elastic_plans_spread_and_rejoin_bit_exact(seed in 0u64..u64::MAX / 2) {
        let fx = fixture();
        let plan = FaultPlan::random_elastic(seed, 4, 8);
        let survivable = plan_is_survivable(&plan, fx.dist.topology());
        match fx.dist.run_with_faults(fx.source, &fx.config, &plan) {
            Ok(r) => {
                prop_assert_eq!(&r.depths, &fx.reference);
                let f = &r.stats.fault;
                // Every re-homing and rejoin is billed, never free.
                if f.rollbacks > 0 || f.rejoins > 0 || f.suspicions > 0 {
                    prop_assert!(f.recovery_seconds > 0.0);
                }
                // No spares on this topology: confirmed deaths spread.
                prop_assert_eq!(f.spare_absorptions, 0);
                prop_assert!(r.modeled_seconds().is_finite() && r.modeled_seconds() > 0.0);
            }
            Err(RunError::Fault(FaultError::CheckpointCorrupt { .. })) => {
                // Only legitimate when the plan seeded at-rest corruption.
                prop_assert!(!plan.checkpoint_corruptions.is_empty());
            }
            Err(RunError::Fault(FaultError::GpuFailed { .. })) => {
                // Only legitimate when the loss exhausted the survivors.
                prop_assert!(!survivable);
            }
            Err(e) => panic!("unexpected error: {e:?}"),
        }
    }

    /// Elastic lifecycle with two hot spares: every death that a spare
    /// can absorb must not enter degraded mode, and two spares make any
    /// plan from this generator survivable (it fails at most 3 of 4).
    #[test]
    fn elastic_plans_absorb_into_spares(seed in 0u64..u64::MAX / 2) {
        let fx = spared_fixture();
        let plan = FaultPlan::random_elastic(seed, 4, 8);
        prop_assert!(plan_is_survivable(&plan, fx.dist.topology()));
        match fx.dist.run_with_faults(fx.source, &fx.config, &plan) {
            Ok(r) => {
                prop_assert_eq!(&r.depths, &fx.reference);
                let f = &r.stats.fault;
                // Two spares cover the first two confirmed deaths; only a
                // third concurrent death can spill into spreading.
                if f.spread_hostings > 0 {
                    prop_assert!(f.spare_absorptions == 2);
                }
                // A run whose every death was absorbed never degrades.
                if f.rollbacks > 0 && f.spread_hostings == 0 {
                    prop_assert_eq!(f.degraded_iterations, 0);
                }
            }
            Err(RunError::Fault(FaultError::CheckpointCorrupt { .. })) => {
                prop_assert!(!plan.checkpoint_corruptions.is_empty());
            }
            Err(e) => panic!("unexpected error: {e:?}"),
        }
    }

    /// The elastic fault stream and its accounting are functions of the
    /// seed alone, and the observed trace's fault-span buckets reproduce
    /// `FaultStats` bitwise: checkpoint spans sum to `checkpoint_seconds`,
    /// everything else to `recovery_seconds`, and per-kind span counts
    /// match the per-event counters.
    #[test]
    fn elastic_accounting_matches_fault_spans(seed in 0u64..u64::MAX / 2) {
        let fx = fixture();
        let plan = FaultPlan::random_elastic(seed, 4, 8);
        let observed = fx.config.with_observability(ObservabilityConfig::Full);
        let a = fx.dist.run_with_faults(fx.source, &observed, &plan);
        let b = fx.dist.run_with_faults(fx.source, &observed, &plan);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a.depths, &b.depths);
                prop_assert_eq!(&a.stats.fault, &b.stats.fault);
                prop_assert_eq!(a.stats.iterations(), b.stats.iterations());
                let f = &a.stats.fault;
                let log = a.observed.as_ref().expect("Full observability records a trace");
                let mut cp_sum = 0.0f64;
                let mut rec_sum = 0.0f64;
                let count =
                    |k: FaultKind| log.faults.iter().filter(|s| s.kind == k).count() as u64;
                for s in &log.faults {
                    if s.kind == FaultKind::Checkpoint {
                        cp_sum += s.dur;
                    } else {
                        rec_sum += s.dur;
                    }
                }
                prop_assert_eq!(cp_sum.to_bits(), f.checkpoint_seconds.to_bits());
                prop_assert_eq!(rec_sum.to_bits(), f.recovery_seconds.to_bits());
                prop_assert_eq!(count(FaultKind::Suspicion), f.suspicions);
                prop_assert_eq!(count(FaultKind::Rejoin), f.rejoins);
                prop_assert_eq!(count(FaultKind::SpareAbsorb), f.spare_absorptions);
                prop_assert_eq!(count(FaultKind::Spread), f.spread_hostings);
            }
            (Err(_), Err(_)) => {} // deterministic failure is fine
            _ => panic!("non-deterministic outcome for seed {seed}"),
        }
    }
}

/// Hot-spare absorption end to end: a confirmed death lands on the spare,
/// the run never degrades, and the answer is bit-exact.
#[test]
fn spare_absorption_restores_full_speed() {
    let fx = spared_fixture();
    let plan = FaultPlan::new(11).with_fail_stop(2, 1);
    let r = fx.dist.run_with_faults(fx.source, &fx.config, &plan).unwrap();
    assert_eq!(&r.depths, &fx.reference);
    let f = &r.stats.fault;
    assert_eq!(f.fail_stops, 1);
    assert_eq!(f.spare_absorptions, 1);
    assert_eq!(f.spread_hostings, 0);
    assert_eq!(
        f.degraded_iterations, 0,
        "a spare-absorbed partition runs at full speed, not degraded"
    );
    assert!(f.recovery_seconds > 0.0, "absorption (restore + re-replicate) is billed");
}

/// Rejoin after spreading: the dead GPU's shares are reclaimed from the
/// survivors, degraded mode ends, and depths stay bit-exact. The same
/// trajectory under buddy hosting agrees on the answer.
#[test]
fn rejoin_after_spread_reclaims_partition() {
    let fx = fixture();
    // This graph's BFS runs 3 supersteps: a failure at 0 is confirmed at
    // 1 (two missed heartbeats), the partition is hosted on survivors
    // through the replay, and the rejoin lands on the final superstep.
    let plan = FaultPlan::new(13).with_fail_stop(1, 0).with_rejoin(1, 2);
    for hosting in [HostingPolicy::Spread, HostingPolicy::Buddy] {
        let config = fx.config.with_recovery(RecoveryConfig::default().with_hosting(hosting));
        let r = fx.dist.run_with_faults(fx.source, &config, &plan).unwrap();
        assert_eq!(&r.depths, &fx.reference, "bit-exact depths under {hosting:?} + rejoin");
        let f = &r.stats.fault;
        assert_eq!(f.fail_stops, 1);
        assert_eq!(f.rejoins, 1, "the scheduled rejoin is detected and applied");
        assert!(f.degraded_iterations > 0, "the gap between death and rejoin is degraded");
        if hosting == HostingPolicy::Spread {
            assert_eq!(f.spread_hostings, 1);
        }
    }
}
