//! Property tests of the chaos fabric: any survivable seeded fault plan
//! must recover to depths bit-identical to the fault-free reference, with
//! deterministic fault accounting.

use gcbfs_cluster::fault::{plan_is_survivable, FaultPlan};
use gcbfs_cluster::topology::Topology;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_core::BfsConfig;
use gcbfs_graph::reference::bfs_depths;
use gcbfs_graph::rmat::RmatConfig;
use gcbfs_graph::Csr;
use proptest::prelude::*;
use std::sync::OnceLock;

struct Fixture {
    dist: DistributedGraph,
    config: BfsConfig,
    reference: Vec<u32>,
    source: u64,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let graph = RmatConfig::graph500(8).generate();
        let config = BfsConfig::new(8);
        let dist = DistributedGraph::build(&graph, Topology::new(2, 2), &config).unwrap();
        let degrees = graph.out_degrees();
        let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
        let reference = bfs_depths(&Csr::from_edge_list(&graph), source);
        Fixture { dist, config, reference, source }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline acceptance property: a random mix of drops,
    /// duplicates, delays, a possible fail-stop, mask corruptions, and a
    /// NIC degradation window never changes the answer — only the bill.
    #[test]
    fn random_fault_plans_recover_reference_depths(seed in 0u64..u64::MAX / 2) {
        let fx = fixture();
        let plan = FaultPlan::random(seed, 4, 8);
        prop_assert!(plan_is_survivable(&plan, fx.dist.topology()));
        let r = fx.dist.run_with_faults(fx.source, &fx.config, &plan)
            .expect("survivable plans must recover");
        prop_assert_eq!(&r.depths, &fx.reference);
        // Recovery is charged, never free: if anything fired, time accrued.
        let f = &r.stats.fault;
        if f.any_faults() && (f.retries > 0 || f.rollbacks > 0) {
            prop_assert!(f.recovery_seconds > 0.0);
        }
        prop_assert!(r.modeled_seconds().is_finite() && r.modeled_seconds() > 0.0);
    }

    /// Same plan, same run: the whole fault stream and its accounting are
    /// functions of the seed.
    #[test]
    fn fault_accounting_is_deterministic(seed in 0u64..u64::MAX / 2) {
        let fx = fixture();
        let plan = FaultPlan::random(seed, 4, 8);
        let a = fx.dist.run_with_faults(fx.source, &fx.config, &plan).unwrap();
        let b = fx.dist.run_with_faults(fx.source, &fx.config, &plan).unwrap();
        prop_assert_eq!(&a.depths, &b.depths);
        prop_assert_eq!(&a.stats.fault, &b.stats.fault);
        prop_assert_eq!(a.stats.iterations(), b.stats.iterations());
    }
}
