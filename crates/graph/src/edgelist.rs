//! Edge-list graph representation.
//!
//! The edge list is the interchange format of the workspace: generators
//! produce it, the edge distributor in `gcbfs-core` consumes it, and the
//! conventional-format memory comparison of Table I is computed against it
//! (16 bytes per directed edge).

use rayon::prelude::*;

/// A global vertex identifier. The paper uses 64-bit global ids and converts
/// to 32-bit ids locally on each GPU.
pub type VertexId = u64;

/// A directed edge list over `num_vertices` vertices.
///
/// Undirected graphs are represented by *edge doubling*: both `(u, v)` and
/// `(v, u)` are present. All the paper's graphs are symmetric (§II-A).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices `n`. Vertex ids are in `0..num_vertices`.
    pub num_vertices: u64,
    /// Directed edges `(source, destination)`.
    pub edges: Vec<(VertexId, VertexId)>,
}

impl EdgeList {
    /// Creates an edge list, checking that every endpoint is in range.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn new(num_vertices: u64, edges: Vec<(VertexId, VertexId)>) -> Self {
        debug_assert!(
            edges.iter().all(|&(u, v)| u < num_vertices && v < num_vertices),
            "edge endpoint out of range"
        );
        Self { num_vertices, edges }
    }

    /// Number of directed edges `m`.
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Makes the graph symmetric by edge doubling: for every `(u, v)` adds
    /// `(v, u)`. Self-loops are not doubled (the reverse would be identical).
    ///
    /// This is exactly the Graph500 preparation step the paper applies to
    /// RMAT, Friendster, and WDC inputs.
    pub fn symmetrize(&mut self) {
        let reverse: Vec<(VertexId, VertexId)> =
            self.edges.par_iter().filter(|&&(u, v)| u != v).map(|&(u, v)| (v, u)).collect();
        self.edges.extend(reverse);
    }

    /// Returns true if for every `(u, v)` the edge `(v, u)` is also present
    /// (with matching multiplicity).
    pub fn is_symmetric(&self) -> bool {
        let mut sorted: Vec<(VertexId, VertexId)> = self.edges.clone();
        sorted.par_sort_unstable();
        let mut reversed: Vec<(VertexId, VertexId)> =
            self.edges.par_iter().map(|&(u, v)| (v, u)).collect();
        reversed.par_sort_unstable();
        sorted == reversed
    }

    /// Removes duplicate edges and self-loops, in place.
    pub fn dedup(&mut self) {
        self.edges.par_sort_unstable();
        self.edges.dedup();
        self.edges.retain(|&(u, v)| u != v);
    }

    /// Out-degree of every vertex.
    ///
    /// Parallelized by scattering atomic increments over a shared counter
    /// array instead of per-thread `vec![0; n]` locals. `u64` addition is
    /// commutative and exact, so the result is bit-identical at any thread
    /// count and under any schedule — and crucially the work decomposition
    /// no longer depends on `rayon::current_num_threads()`, keeping the
    /// determinism-under-any-pool-width property structural.
    pub fn out_degrees(&self) -> Vec<u64> {
        use std::sync::atomic::{AtomicU64, Ordering};
        let n = self.num_vertices as usize;
        let degrees: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let degrees_ref = &degrees;
        self.edges.par_iter().for_each(|&(u, _)| {
            degrees_ref[u as usize].fetch_add(1, Ordering::Relaxed);
        });
        degrees.into_iter().map(AtomicU64::into_inner).collect()
    }

    /// Applies a vertex renumbering `f` to every endpoint.
    ///
    /// `f` must be a bijection on `0..num_vertices`; this is how the
    /// Graph500 vertex-id randomization (deterministic hashing, §VI-A3) is
    /// applied after edge generation.
    pub fn renumber(&mut self, f: impl Fn(VertexId) -> VertexId + Sync) {
        self.edges.par_iter_mut().for_each(|e| {
            e.0 = f(e.0);
            e.1 = f(e.1);
        });
        debug_assert!(
            self.edges.iter().all(|&(u, v)| u < self.num_vertices && v < self.num_vertices),
            "renumbering left the vertex range"
        );
    }

    /// Number of vertices with no outgoing edges (isolated in a symmetric
    /// graph). The paper reports these for Friendster and WDC.
    pub fn count_zero_degree(&self) -> u64 {
        self.out_degrees().iter().filter(|&&d| d == 0).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EdgeList {
        EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3), (0, 2)])
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let mut g = small();
        g.symmetrize();
        assert_eq!(g.num_edges(), 8);
        assert!(g.is_symmetric());
    }

    #[test]
    fn symmetrize_skips_self_loops() {
        let mut g = EdgeList::new(2, vec![(0, 0), (0, 1)]);
        g.symmetrize();
        assert_eq!(g.num_edges(), 3);
        assert!(g.is_symmetric());
    }

    #[test]
    fn asymmetric_graph_detected() {
        assert!(!small().is_symmetric());
    }

    #[test]
    fn out_degrees_counts_sources() {
        let g = small();
        assert_eq!(g.out_degrees(), vec![2, 1, 1, 0]);
    }

    #[test]
    fn dedup_removes_duplicates_and_loops() {
        let mut g = EdgeList::new(3, vec![(0, 1), (0, 1), (1, 1), (2, 0)]);
        g.dedup();
        assert_eq!(g.edges, vec![(0, 1), (2, 0)]);
    }

    #[test]
    fn renumber_applies_bijection() {
        let mut g = small();
        let n = g.num_vertices;
        g.renumber(|v| n - 1 - v);
        assert_eq!(g.edges, vec![(3, 2), (2, 1), (1, 0), (3, 1)]);
    }

    #[test]
    fn zero_degree_count() {
        let g = small();
        assert_eq!(g.count_zero_degree(), 1);
    }

    #[test]
    fn empty_graph_is_symmetric() {
        let g = EdgeList::new(5, vec![]);
        assert!(g.is_symmetric());
        assert_eq!(g.count_zero_degree(), 5);
    }
}
