//! Small deterministic graphs for unit tests across the workspace.
//!
//! All builders return *symmetric* edge lists (edge-doubled), matching the
//! paper's assumption that input graphs are symmetric (§II-A).

use crate::edgelist::EdgeList;

/// A path `0 - 1 - ... - (n-1)`.
pub fn path(n: u64) -> EdgeList {
    let mut g = EdgeList::new(n, (1..n).map(|v| (v - 1, v)).collect());
    g.symmetrize();
    g
}

/// A cycle over `n >= 3` vertices.
pub fn cycle(n: u64) -> EdgeList {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut edges: Vec<(u64, u64)> = (1..n).map(|v| (v - 1, v)).collect();
    edges.push((n - 1, 0));
    let mut g = EdgeList::new(n, edges);
    g.symmetrize();
    g
}

/// A star: center `0` connected to leaves `1..=leaves`.
pub fn star(leaves: u64) -> EdgeList {
    let mut g = EdgeList::new(leaves + 1, (1..=leaves).map(|v| (0, v)).collect());
    g.symmetrize();
    g
}

/// A complete graph on `n` vertices.
pub fn complete(n: u64) -> EdgeList {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v {
                edges.push((u, v));
            }
        }
    }
    EdgeList::new(n, edges)
}

/// A `rows x cols` grid with 4-neighborhood; vertex `(r, c)` has id
/// `r * cols + c`.
pub fn grid(rows: u64, cols: u64) -> EdgeList {
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                edges.push((v, v + 1));
            }
            if r + 1 < rows {
                edges.push((v, v + cols));
            }
        }
    }
    let mut g = EdgeList::new(rows * cols, edges);
    g.symmetrize();
    g
}

/// Two stars (hubs `0` and `1`) joined hub-to-hub, with `leaves` leaves
/// each — the smallest graph exercising all four edge classes (`dd` between
/// hubs, `dn`/`nd` hub-leaf, and `nn` if extra leaf-leaf edges are added).
pub fn double_star(leaves: u64) -> EdgeList {
    let n = 2 + 2 * leaves;
    let mut edges = vec![(0, 1)];
    for i in 0..leaves {
        edges.push((0, 2 + i));
        edges.push((1, 2 + leaves + i));
    }
    // A few leaf-leaf (normal-normal) edges.
    for i in 0..leaves.saturating_sub(1) {
        edges.push((2 + i, 2 + leaves + i));
    }
    let mut g = EdgeList::new(n, edges);
    g.symmetrize();
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;
    use crate::reference::bfs_depths;

    #[test]
    fn path_shape() {
        let g = path(4);
        assert_eq!(g.num_edges(), 6);
        assert!(g.is_symmetric());
    }

    #[test]
    fn cycle_depths() {
        let csr = Csr::from_edge_list(&cycle(6));
        assert_eq!(bfs_depths(&csr, 0), vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn star_shape() {
        let g = star(5);
        assert_eq!(g.num_vertices, 6);
        assert_eq!(g.out_degrees()[0], 5);
        assert!(g.is_symmetric());
    }

    #[test]
    fn complete_is_symmetric() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 20);
        assert!(g.is_symmetric());
    }

    #[test]
    fn grid_depths() {
        let csr = Csr::from_edge_list(&grid(3, 3));
        let d = bfs_depths(&csr, 0);
        assert_eq!(d[8], 4); // opposite corner: Manhattan distance
    }

    #[test]
    fn double_star_has_all_edge_classes() {
        let g = double_star(3);
        let degs = g.out_degrees();
        assert!(degs[0] >= 4 && degs[1] >= 4);
        assert!(degs[2..].iter().all(|&d| d <= 2));
        assert!(g.is_symmetric());
    }
}
