//! Long-tail web-like generator: the stand-in for the WDC 2012 graph.
//!
//! The WDC experiment (§VI-D) exercises a regime the RMAT experiments never
//! reach: BFS with *hundreds* of iterations ("about 330 iterations ...
//! long-tail behavior"), where per-iteration overhead dominates and the
//! direction-optimization bookkeeping costs more than it saves, making
//! DOBFS slightly *slower* than BFS. Any graph whose level structure is a
//! dense scale-free core plus long chain peripheries reproduces that
//! regime, so we synthesize exactly that: an RMAT core, a configurable
//! number of chains hanging off random core vertices, and a fraction of
//! isolated vertices (WDC has 402 M zero-degree vertices of 4.29 G).

use crate::edgelist::EdgeList;
use crate::permute::VertexPermutation;
use crate::rmat::RmatConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic long-tail web graph.
#[derive(Clone, Copy, Debug)]
pub struct WebGraphConfig {
    /// RMAT scale of the dense core.
    pub core_scale: u32,
    /// Number of chains attached to random core vertices.
    pub num_chains: u64,
    /// Length (vertex count) of each chain; BFS depth grows to roughly this.
    pub chain_length: u64,
    /// Number of isolated (zero-degree) vertices appended.
    pub num_isolated: u64,
    /// RNG seed.
    pub seed: u64,
}

impl WebGraphConfig {
    /// A scaled-down WDC-like configuration with a BFS depth of several
    /// hundred levels.
    pub fn wdc_like(core_scale: u32) -> Self {
        Self {
            core_scale,
            num_chains: 16,
            chain_length: 300,
            num_isolated: (1u64 << core_scale) / 10,
            seed: 0x7eb_c1a2,
        }
    }

    /// Total vertex count: core + chains + isolated.
    pub fn num_vertices(&self) -> u64 {
        (1u64 << self.core_scale) + self.num_chains * self.chain_length + self.num_isolated
    }

    /// Generates the symmetric long-tail graph with randomized vertex ids.
    pub fn generate(&self) -> EdgeList {
        let core_n = 1u64 << self.core_scale;
        let mut core =
            RmatConfig::graph500(self.core_scale).with_seed(self.seed).generate_directed();
        let mut edges = std::mem::take(&mut core.edges);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xc41a);
        let mut next = core_n;
        for _ in 0..self.num_chains {
            // Anchor each chain at a random core vertex, then extend.
            let mut prev = rng.random_range(0..core_n);
            for _ in 0..self.chain_length {
                edges.push((prev, next));
                prev = next;
                next += 1;
            }
        }
        let mut list = EdgeList::new(self.num_vertices(), edges);
        let perm = VertexPermutation::new(self.num_vertices(), self.seed ^ 0x3b5d);
        list.renumber(|v| perm.apply(v));
        list.symmetrize();
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::bfs_depths;

    #[test]
    fn produces_long_tail_bfs() {
        let cfg = WebGraphConfig {
            core_scale: 8,
            num_chains: 4,
            chain_length: 150,
            num_isolated: 32,
            seed: 7,
        };
        let g = cfg.generate();
        let csr = crate::Csr::from_edge_list(&g);
        // Start from some reached vertex; depth must extend past the chains.
        let src = (0..g.num_vertices).find(|&v| csr.out_degree(v) > 0).unwrap();
        let depths = bfs_depths(&csr, src);
        let max_depth = depths.iter().filter(|&&d| d != u32::MAX).max().copied().unwrap();
        assert!(max_depth >= 140, "max depth {max_depth}, expected a long tail");
    }

    #[test]
    fn counts_line_up() {
        let cfg = WebGraphConfig {
            core_scale: 6,
            num_chains: 2,
            chain_length: 10,
            num_isolated: 5,
            seed: 1,
        };
        assert_eq!(cfg.num_vertices(), 64 + 20 + 5);
        let g = cfg.generate();
        assert_eq!(g.num_vertices, cfg.num_vertices());
        assert!(g.is_symmetric());
        assert!(g.count_zero_degree() >= 5);
    }

    #[test]
    fn deterministic() {
        let cfg = WebGraphConfig::wdc_like(6);
        assert_eq!(cfg.generate(), cfg.generate());
    }
}
