//! Compressed sparse row (CSR) representation.
//!
//! The paper deliberately keeps the *standard* CSR format (§II-D) so that
//! BFS can sit inside larger workflows without format conversion. This CSR
//! is the one used by the reference BFS, the single-node baselines, and the
//! per-GPU subgraphs in `gcbfs-core` (there with 32-bit column indices).

use crate::edgelist::{EdgeList, VertexId};
use rayon::prelude::*;

/// A CSR graph: `row_offsets[v]..row_offsets[v+1]` indexes the neighbor
/// list of vertex `v` inside `col_indices`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Csr {
    /// `n + 1` offsets into `col_indices`.
    pub row_offsets: Vec<u64>,
    /// Destination vertex of every edge, grouped by source.
    pub col_indices: Vec<VertexId>,
}

impl Csr {
    /// Builds a CSR from an edge list using a parallel counting sort.
    /// Neighbor lists come out sorted by destination.
    pub fn from_edge_list(list: &EdgeList) -> Self {
        let n = list.num_vertices as usize;
        let mut row_offsets = vec![0u64; n + 1];
        for &(u, _) in &list.edges {
            row_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            row_offsets[i + 1] += row_offsets[i];
        }
        let mut cursor = row_offsets[..n].to_vec();
        let mut col_indices = vec![0u64; list.edges.len()];
        for &(u, v) in &list.edges {
            let c = &mut cursor[u as usize];
            col_indices[*c as usize] = v;
            *c += 1;
        }
        // Sorting each neighbor list keeps the representation canonical and
        // makes backward-pull early exit deterministic.
        {
            let offsets = &row_offsets;
            let cols = &mut col_indices;
            // Split into per-vertex slices in parallel.
            let mut slices: Vec<&mut [u64]> = Vec::with_capacity(n);
            let mut rest: &mut [u64] = cols;
            let mut prev = 0u64;
            for v in 0..n {
                let len = (offsets[v + 1] - prev) as usize;
                let (head, tail) = rest.split_at_mut(len);
                slices.push(head);
                rest = tail;
                prev = offsets[v + 1];
            }
            slices.par_iter_mut().for_each(|s| s.sort_unstable());
        }
        Self { row_offsets, col_indices }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        (self.row_offsets.len() - 1) as u64
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u64 {
        self.col_indices.len() as u64
    }

    /// Neighbor list of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.row_offsets[v as usize] as usize;
        let hi = self.row_offsets[v as usize + 1] as usize;
        &self.col_indices[lo..hi]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> u64 {
        self.row_offsets[v as usize + 1] - self.row_offsets[v as usize]
    }

    /// Memory footprint in bytes of the conventional single-graph CSR with
    /// 64-bit offsets and 64-bit column indices: `8n + 8m` (Table I's
    /// "CSR without degree separation" comparison point).
    pub fn conventional_bytes(n: u64, m: u64) -> u64 {
        8 * n + 8 * m
    }

    /// Memory footprint in bytes of the conventional edge-list format with
    /// two 64-bit endpoints per edge: `16m` (Table I's comparison point).
    pub fn edge_list_bytes(m: u64) -> u64 {
        16 * m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr() -> Csr {
        Csr::from_edge_list(&EdgeList::new(4, vec![(0, 2), (0, 1), (2, 3), (1, 2), (0, 3)]))
    }

    #[test]
    fn offsets_and_degrees() {
        let c = csr();
        assert_eq!(c.num_vertices(), 4);
        assert_eq!(c.num_edges(), 5);
        assert_eq!(c.out_degree(0), 3);
        assert_eq!(c.out_degree(3), 0);
    }

    #[test]
    fn neighbor_lists_sorted() {
        let c = csr();
        assert_eq!(c.neighbors(0), &[1, 2, 3]);
        assert_eq!(c.neighbors(1), &[2]);
        assert_eq!(c.neighbors(3), &[] as &[u64]);
    }

    #[test]
    fn empty_graph() {
        let c = Csr::from_edge_list(&EdgeList::new(3, vec![]));
        assert_eq!(c.num_vertices(), 3);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.neighbors(1), &[] as &[u64]);
    }

    #[test]
    fn conventional_sizes_match_paper_formulas() {
        // Table I cites 16m for edge lists and 8n + 8m for plain CSR.
        assert_eq!(Csr::edge_list_bytes(10), 160);
        assert_eq!(Csr::conventional_bytes(4, 10), 32 + 80);
    }

    #[test]
    fn roundtrip_preserves_edge_multiset() {
        let list = EdgeList::new(5, vec![(4, 0), (0, 4), (4, 1), (4, 1), (2, 2)]);
        let c = Csr::from_edge_list(&list);
        let mut edges: Vec<(u64, u64)> = Vec::new();
        for v in 0..c.num_vertices() {
            for &w in c.neighbors(v) {
                edges.push((v, w));
            }
        }
        let mut expect = list.edges.clone();
        expect.sort_unstable();
        edges.sort_unstable();
        assert_eq!(edges, expect);
    }
}
