//! Chung–Lu power-law generator: the stand-in for the Friendster graph.
//!
//! The paper's Friendster experiments (Figs. 12–13) depend on the *shape* of
//! the degree distribution — how the delegate and `nn`-edge percentages move
//! with the degree threshold — not on the specific social network. We
//! therefore synthesize a Chung–Lu graph with a configurable power-law
//! exponent and, matching the paper's description of the prepared
//! Friendster input ("134 million vertices, about half of which are
//! isolated ones"), a configurable fraction of isolated vertices.

use crate::edgelist::EdgeList;
use crate::permute::VertexPermutation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Configuration of a Chung–Lu power-law graph.
#[derive(Clone, Copy, Debug)]
pub struct PowerLawConfig {
    /// Total vertex count, including isolated vertices.
    pub num_vertices: u64,
    /// Directed edges to sample before doubling.
    pub num_edges: u64,
    /// Power-law exponent `gamma` of the target degree distribution
    /// (`P(deg = k) ~ k^-gamma`). Social networks are typically 2–3.
    pub exponent: f64,
    /// Fraction of vertices with no edges at all (Friendster: ~0.5).
    pub isolated_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PowerLawConfig {
    /// A scaled-down Friendster-like configuration: `2^scale` vertices,
    /// half isolated, average degree ~80 on the connected half after edge
    /// doubling (Friendster: 5.17 G doubled edges over 67 M connected
    /// vertices ≈ 77), and exponent 2.1 — calibrated so the delegate/nn
    /// percentage curves against `TH` match the bands the paper reports
    /// for Friendster (suitable `TH` in [16, 128], Figs. 12–13).
    pub fn friendster_like(scale: u32) -> Self {
        let n = 1u64 << scale;
        Self {
            num_vertices: n,
            num_edges: n * 20,
            exponent: 2.1,
            isolated_fraction: 0.5,
            seed: 0xf71e_7d57,
        }
    }

    /// Generates the symmetric (doubled) graph with randomized vertex ids.
    pub fn generate(&self) -> EdgeList {
        let mut list = self.generate_directed();
        let perm = VertexPermutation::new(self.num_vertices, self.seed ^ 0x0ddba11);
        list.renumber(|v| perm.apply(v));
        list.symmetrize();
        list
    }

    /// Generates the directed Chung–Lu edge list. The first
    /// `(1 - isolated_fraction) * n` vertex ids carry power-law weights; the
    /// remainder are isolated (callers normally follow with `renumber`).
    pub fn generate_directed(&self) -> EdgeList {
        assert!(self.exponent > 1.0, "power-law exponent must exceed 1");
        assert!(
            (0.0..1.0).contains(&self.isolated_fraction),
            "isolated fraction must be in [0, 1)"
        );
        let active =
            ((self.num_vertices as f64) * (1.0 - self.isolated_fraction)).round().max(1.0) as u64;
        // Chung–Lu weights w_i ~ (i + 1)^(-1/(gamma - 1)) produce a degree
        // distribution with exponent gamma.
        let alpha = 1.0 / (self.exponent - 1.0);
        let weights: Vec<f64> =
            (0..active).into_par_iter().map(|i| ((i + 1) as f64).powf(-alpha)).collect();
        let mut cumulative = Vec::with_capacity(active as usize);
        let mut total = 0.0f64;
        for &w in &weights {
            total += w;
            cumulative.push(total);
        }
        let m = self.num_edges as usize;
        const CHUNK: usize = 1 << 14;
        let num_chunks = m.div_ceil(CHUNK);
        let seed = self.seed;
        let cum = &cumulative;
        let edges: Vec<(u64, u64)> = (0..num_chunks)
            .into_par_iter()
            .flat_map_iter(move |chunk| {
                let lo = chunk * CHUNK;
                let hi = (lo + CHUNK).min(m);
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (chunk as u64).wrapping_mul(0x517c_c1b7_2722_0a95),
                );
                (lo..hi).map(move |_| {
                    let u = sample_weighted(cum, &mut rng, total);
                    let v = sample_weighted(cum, &mut rng, total);
                    (u, v)
                })
            })
            .collect();
        EdgeList::new(self.num_vertices, edges)
    }
}

/// Samples an index proportional to the weights represented by the
/// cumulative sum `cum` (last element `total`).
#[inline]
fn sample_weighted(cum: &[f64], rng: &mut StdRng, total: f64) -> u64 {
    let r: f64 = rng.random::<f64>() * total;
    cum.partition_point(|&c| c < r) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_isolated_fraction() {
        let cfg = PowerLawConfig::friendster_like(12);
        let g = cfg.generate();
        let isolated = g.count_zero_degree() as f64 / g.num_vertices as f64;
        // Sampling concentrates mass on few vertices, so the isolated share
        // can exceed the configured floor; it must be at least the floor.
        assert!(isolated >= 0.45, "isolated fraction {isolated}");
    }

    #[test]
    fn is_symmetric_and_deterministic() {
        let cfg = PowerLawConfig::friendster_like(10);
        let a = cfg.generate();
        assert!(a.is_symmetric());
        assert_eq!(a, cfg.generate());
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = PowerLawConfig::friendster_like(12).generate();
        let degs = g.out_degrees();
        let max = *degs.iter().max().unwrap();
        let mean = degs.iter().sum::<u64>() as f64 / degs.len() as f64;
        assert!((max as f64) > 20.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn edge_count_as_configured() {
        let cfg = PowerLawConfig {
            num_vertices: 100,
            num_edges: 500,
            exponent: 2.5,
            isolated_fraction: 0.2,
            seed: 1,
        };
        let d = cfg.generate_directed();
        assert_eq!(d.num_edges(), 500);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn rejects_flat_exponent() {
        let cfg = PowerLawConfig {
            num_vertices: 10,
            num_edges: 10,
            exponent: 0.5,
            isolated_fraction: 0.0,
            seed: 1,
        };
        let _ = cfg.generate_directed();
    }
}
