#![warn(missing_docs)]

//! Graph substrate for the GPU-cluster BFS reproduction.
//!
//! This crate provides everything the paper's evaluation needs below the
//! BFS algorithm itself:
//!
//! * [`EdgeList`] and [`Csr`] — the standard graph representations the paper
//!   deliberately sticks to (§II-D);
//! * [`rmat`] — a Graph500-conformant RMAT generator (edge factor 16,
//!   `A,B,C,D = 0.57, 0.19, 0.19, 0.05`, deterministic vertex-id hashing);
//! * [`powerlaw`] — a Chung–Lu power-law generator standing in for the
//!   Friendster social graph (Figs. 12–13);
//! * [`webgraph`] — a long-tail web-like generator standing in for the
//!   WDC 2012 hyperlink graph (§VI-D);
//! * [`reference`] — a sequential reference BFS and a Graph500-style
//!   validator used as ground truth by every test in the workspace;
//! * [`builders`] — small deterministic graphs (paths, stars, grids, …) for
//!   unit tests;
//! * [`stats`] — degree statistics used when choosing the degree threshold.
//!
//! Vertex ids are global `u64` throughout this crate; the 32-bit local-id
//! machinery the paper uses on each GPU lives in `gcbfs-core`.

pub mod betweenness;
pub mod builders;
pub mod components;
pub mod csr;
pub mod delta;
pub mod edgelist;
pub mod io;
pub mod pagerank;
pub mod permute;
pub mod powerlaw;
pub mod reference;
pub mod rmat;
pub mod stats;
pub mod webgraph;
pub mod weighted;

pub use csr::Csr;
pub use delta::{CompactionStats, CsrDelta};
pub use edgelist::{EdgeList, VertexId};
pub use permute::VertexPermutation;
pub use powerlaw::PowerLawConfig;
pub use reference::{validate_depths, ValidationError};
pub use rmat::RmatConfig;
pub use webgraph::WebGraphConfig;
