//! Deterministic bijective vertex permutation.
//!
//! Graph500 (and the paper, §VI-A3) randomizes vertex numbers *after* edge
//! generation "using a deterministic hashing function", so that the high
//! degree vertices of an RMAT graph are not clustered at low ids — which
//! would otherwise bias any modulo-based partitioner such as Algorithm 1.
//!
//! We implement the hash as a four-round Feistel network over the smallest
//! power-of-two domain covering `n`, with cycle-walking to restrict it to
//! `0..n`. This is a true bijection (so the permuted graph is isomorphic to
//! the original), deterministic in the seed, and invertible.

use crate::edgelist::VertexId;

/// A keyed bijection on `0..domain`.
#[derive(Clone, Debug)]
pub struct VertexPermutation {
    domain: u64,
    /// Bits of each Feistel half.
    half_bits: u32,
    keys: [u64; 4],
}

const ROUNDS: usize = 4;

impl VertexPermutation {
    /// Creates a permutation of `0..domain` keyed by `seed`.
    ///
    /// # Panics
    /// Panics if `domain == 0`.
    pub fn new(domain: u64, seed: u64) -> Self {
        assert!(domain > 0, "permutation domain must be non-empty");
        // Total bits covering the domain, rounded up to an even count so the
        // two Feistel halves are equal width.
        let total_bits = 64 - (domain - 1).max(1).leading_zeros();
        let half_bits = total_bits.div_ceil(2).max(1);
        let mut keys = [0u64; ROUNDS];
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        for k in &mut keys {
            state = splitmix64(state);
            *k = state;
        }
        Self { domain, half_bits, keys }
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.domain
    }

    /// Applies the permutation.
    pub fn apply(&self, v: VertexId) -> VertexId {
        debug_assert!(v < self.domain);
        let mut x = v;
        // Cycle-walk: keep encrypting until we land back inside the domain.
        // Expected iterations < 4 since the power-of-two domain is < 4n.
        loop {
            x = self.feistel(x, false);
            if x < self.domain {
                return x;
            }
        }
    }

    /// Inverts the permutation.
    pub fn invert(&self, v: VertexId) -> VertexId {
        debug_assert!(v < self.domain);
        let mut x = v;
        loop {
            x = self.feistel(x, true);
            if x < self.domain {
                return x;
            }
        }
    }

    fn feistel(&self, v: u64, inverse: bool) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut left = (v >> self.half_bits) & mask;
        let mut right = v & mask;
        if !inverse {
            for r in 0..ROUNDS {
                let f = round(right, self.keys[r]) & mask;
                let new_left = right;
                right = left ^ f;
                left = new_left;
            }
        } else {
            for r in (0..ROUNDS).rev() {
                let f = round(left, self.keys[r]) & mask;
                let new_right = left;
                left = right ^ f;
                right = new_right;
            }
        }
        (left << self.half_bits) | right
    }
}

/// Feistel round function: a cheap mix of the half-block with the round key.
#[inline]
fn round(x: u64, key: u64) -> u64 {
    splitmix64(x ^ key)
}

/// The splitmix64 finalizer: a well-tested 64-bit mixer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn is_a_bijection_on_odd_domain() {
        let p = VertexPermutation::new(1000, 42);
        let image: HashSet<u64> = (0..1000).map(|v| p.apply(v)).collect();
        assert_eq!(image.len(), 1000);
        assert!(image.iter().all(|&v| v < 1000));
    }

    #[test]
    fn is_a_bijection_on_power_of_two_domain() {
        let p = VertexPermutation::new(1 << 10, 7);
        let image: HashSet<u64> = (0..(1 << 10)).map(|v| p.apply(v)).collect();
        assert_eq!(image.len(), 1 << 10);
    }

    #[test]
    fn invert_is_inverse() {
        let p = VertexPermutation::new(12345, 99);
        for v in (0..12345).step_by(7) {
            assert_eq!(p.invert(p.apply(v)), v);
            assert_eq!(p.apply(p.invert(v)), v);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = VertexPermutation::new(500, 1);
        let b = VertexPermutation::new(500, 1);
        let c = VertexPermutation::new(500, 2);
        assert!((0..500).all(|v| a.apply(v) == b.apply(v)));
        assert!((0..500).any(|v| a.apply(v) != c.apply(v)));
    }

    #[test]
    fn domain_one_is_identity() {
        let p = VertexPermutation::new(1, 3);
        assert_eq!(p.apply(0), 0);
    }

    #[test]
    fn scatters_adjacent_ids() {
        // The whole point: consecutive ids (RMAT hubs) must not stay
        // consecutive, or the modulo partitioner would be biased.
        let p = VertexPermutation::new(1 << 16, 5);
        let adjacent_pairs =
            (0..1000u64).filter(|&v| p.apply(v).abs_diff(p.apply(v + 1)) == 1).count();
        assert!(adjacent_pairs < 10, "permutation barely scatters: {adjacent_pairs}");
    }
}
