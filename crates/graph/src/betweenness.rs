//! Sequential reference betweenness centrality (Brandes' algorithm).
//!
//! Ground truth for the distributed betweenness in `gcbfs-core` — the
//! flagship "building block" workload of the paper's introduction
//! ("traversals ... such as betweenness centrality"). Unweighted Brandes:
//! one BFS per source counting shortest paths `σ`, then a reverse
//! level-order dependency accumulation
//! `δ(v) = Σ_{w: succ} (σ(v)/σ(w)) (1 + δ(w))`.

use crate::csr::Csr;
use crate::edgelist::VertexId;
use crate::reference::UNREACHED;
use std::collections::VecDeque;

/// Betweenness scores accumulated over the given sources (exact Brandes
/// when `sources` is every vertex; a sampled estimate otherwise).
pub fn betweenness(graph: &Csr, sources: &[VertexId]) -> Vec<f64> {
    let n = graph.num_vertices() as usize;
    let mut bc = vec![0f64; n];
    for &s in sources {
        accumulate_source(graph, s, &mut bc);
    }
    bc
}

fn accumulate_source(graph: &Csr, s: VertexId, bc: &mut [f64]) {
    let n = graph.num_vertices() as usize;
    let mut depth = vec![UNREACHED; n];
    let mut sigma = vec![0f64; n];
    let mut order: Vec<VertexId> = Vec::new();
    let mut queue = VecDeque::new();
    depth[s as usize] = 0;
    sigma[s as usize] = 1.0;
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        let du = depth[u as usize];
        for &v in graph.neighbors(u) {
            if depth[v as usize] == UNREACHED {
                depth[v as usize] = du + 1;
                queue.push_back(v);
            }
            if depth[v as usize] == du + 1 {
                sigma[v as usize] += sigma[u as usize];
            }
        }
    }
    let mut delta = vec![0f64; n];
    for &w in order.iter().rev() {
        let dw = depth[w as usize];
        if dw == 0 {
            continue;
        }
        // Push w's dependency share to its predecessors.
        let share = (1.0 + delta[w as usize]) / sigma[w as usize];
        for &v in graph.neighbors(w) {
            if depth[v as usize] + 1 == dw {
                delta[v as usize] += sigma[v as usize] * share;
            }
        }
        bc[w as usize] += delta[w as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn all_sources(n: u64) -> Vec<u64> {
        (0..n).collect()
    }

    #[test]
    fn path_center_dominates() {
        // On a path, the middle vertex lies on the most shortest paths.
        let g = Csr::from_edge_list(&builders::path(5));
        let bc = betweenness(&g, &all_sources(5));
        // Known closed form for P5 (undirected counted per direction):
        // endpoints 0; next 2*3=... check ordering and symmetry instead.
        assert!(bc[2] > bc[1] && bc[1] > bc[0]);
        assert_eq!(bc[0], bc[4]);
        assert_eq!(bc[1], bc[3]);
        assert_eq!(bc[0], 0.0);
    }

    #[test]
    fn star_hub_takes_everything() {
        let g = Csr::from_edge_list(&builders::star(6));
        let bc = betweenness(&g, &all_sources(7));
        // Every leaf-to-leaf shortest path passes the hub: 6*5 = 30 ordered
        // pairs.
        assert!((bc[0] - 30.0).abs() < 1e-9, "hub bc = {}", bc[0]);
        assert!(bc[1..].iter().all(|&b| b.abs() < 1e-12));
    }

    #[test]
    fn cycle_is_uniform() {
        let g = Csr::from_edge_list(&builders::cycle(8));
        let bc = betweenness(&g, &all_sources(8));
        for &b in &bc {
            assert!((b - bc[0]).abs() < 1e-9);
        }
        assert!(bc[0] > 0.0);
    }

    #[test]
    fn split_paths_share_dependency() {
        // Diamond 0-{1,2}-3: the pair (0,3) has two shortest paths through
        // 1 and 2 (half a unit each per direction), and the pair (1,2) has
        // two through 0 and 3 — by symmetry every vertex ends up with 1.0.
        let mut g = crate::EdgeList::new(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        g.symmetrize();
        let csr = Csr::from_edge_list(&g);
        let bc = betweenness(&csr, &all_sources(4));
        for (v, &b) in bc.iter().enumerate() {
            assert!((b - 1.0).abs() < 1e-9, "bc[{v}] = {b}");
        }
    }

    #[test]
    fn sampling_subsets_accumulate() {
        let g = Csr::from_edge_list(&builders::grid(3, 3));
        let full = betweenness(&g, &all_sources(9));
        let a = betweenness(&g, &[0, 1, 2, 3]);
        let b = betweenness(&g, &[4, 5, 6, 7, 8]);
        for i in 0..9 {
            assert!((full[i] - (a[i] + b[i])).abs() < 1e-9);
        }
    }
}
