//! Weighted graphs and a reference single-source shortest paths.
//!
//! The paper's future work (§VII) calls for "more attributes on vertices
//! and edges than a single label"; edge weights are the canonical case,
//! and SSSP its canonical traversal. This module supplies the substrate:
//! a weighted edge list (deterministic symmetric weights layered over any
//! unweighted topology), a weighted CSR, and a Dijkstra reference used to
//! validate the distributed Bellman–Ford in `gcbfs-core`.

use crate::edgelist::EdgeList;
use crate::permute::splitmix64;
use std::collections::BinaryHeap;

/// Distance marker for unreachable vertices.
pub const UNREACHABLE: u64 = u64::MAX;

/// A weighted directed edge list (symmetric pairs carry equal weights).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedEdgeList {
    /// Number of vertices.
    pub num_vertices: u64,
    /// `(source, destination, weight)` triples.
    pub edges: Vec<(u64, u64, u32)>,
}

impl WeightedEdgeList {
    /// Layers deterministic weights in `1..=max_weight` over an existing
    /// (symmetric) topology: both directions of an undirected pair receive
    /// the same weight (hashed from the unordered endpoint pair and the
    /// seed).
    pub fn from_topology(graph: &EdgeList, max_weight: u32, seed: u64) -> Self {
        assert!(max_weight >= 1, "weights start at 1");
        let edges = graph
            .edges
            .iter()
            .map(|&(u, v)| {
                let (a, b) = (u.min(v), u.max(v));
                let h = splitmix64(seed ^ splitmix64(a.wrapping_mul(0x9e37).wrapping_add(b)));
                (u, v, 1 + (h % max_weight as u64) as u32)
            })
            .collect();
        Self { num_vertices: graph.num_vertices, edges }
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// The unweighted topology (for building the unweighted machinery).
    pub fn topology(&self) -> EdgeList {
        EdgeList {
            num_vertices: self.num_vertices,
            edges: self.edges.iter().map(|&(u, v, _)| (u, v)).collect(),
        }
    }
}

/// A weighted CSR.
#[derive(Clone, Debug, Default)]
pub struct WeightedCsr {
    /// `n + 1` offsets.
    pub offsets: Vec<u64>,
    /// Destination of every edge.
    pub cols: Vec<u64>,
    /// Weight of every edge, parallel to `cols`.
    pub weights: Vec<u32>,
}

impl WeightedCsr {
    /// Builds from a weighted edge list.
    pub fn from_edge_list(list: &WeightedEdgeList) -> Self {
        let n = list.num_vertices as usize;
        let mut offsets = vec![0u64; n + 1];
        for &(u, _, _) in &list.edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets[..n].to_vec();
        let mut cols = vec![0u64; list.edges.len()];
        let mut weights = vec![0u32; list.edges.len()];
        for &(u, v, w) in &list.edges {
            let c = &mut cursor[u as usize];
            cols[*c as usize] = v;
            weights[*c as usize] = w;
            *c += 1;
        }
        Self { offsets, cols, weights }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    /// The `(neighbor, weight)` list of `v`.
    pub fn neighbors(&self, v: u64) -> impl Iterator<Item = (u64, u32)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.cols[lo..hi].iter().copied().zip(self.weights[lo..hi].iter().copied())
    }
}

/// Reference Dijkstra returning distances from `source`.
pub fn dijkstra(graph: &WeightedCsr, source: u64) -> Vec<u64> {
    let n = graph.num_vertices() as usize;
    let mut dist = vec![UNREACHABLE; n];
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u64)>> = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(std::cmp::Reverse((0, source)));
    while let Some(std::cmp::Reverse((du, u))) = heap.pop() {
        if du > dist[u as usize] {
            continue;
        }
        for (v, w) in graph.neighbors(u) {
            let cand = du + w as u64;
            if cand < dist[v as usize] {
                dist[v as usize] = cand;
                heap.push(std::cmp::Reverse((cand, v)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn weights_are_symmetric_and_deterministic() {
        let g = builders::grid(4, 4);
        let a = WeightedEdgeList::from_topology(&g, 10, 7);
        let b = WeightedEdgeList::from_topology(&g, 10, 7);
        assert_eq!(a, b);
        // Same pair, both directions, same weight.
        let mut weights = std::collections::HashMap::new();
        for &(u, v, w) in &a.edges {
            let key = (u.min(v), u.max(v));
            let prev = weights.insert(key, w);
            if let Some(p) = prev {
                assert_eq!(p, w, "asymmetric weight on {key:?}");
            }
            assert!((1..=10).contains(&w));
        }
        // Different seeds differ.
        let c = WeightedEdgeList::from_topology(&g, 10, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn dijkstra_on_uniform_weights_is_scaled_bfs() {
        let g = builders::cycle(8);
        let w = WeightedEdgeList::from_topology(&g, 1, 0); // all weights 1
        let csr = WeightedCsr::from_edge_list(&w);
        let dist = dijkstra(&csr, 0);
        assert_eq!(dist, vec![0, 1, 2, 3, 4, 3, 2, 1]);
    }

    #[test]
    fn dijkstra_prefers_cheap_detours() {
        // 0 -10- 1, 0 -1- 2 -1- 1: the detour is cheaper.
        let w = WeightedEdgeList {
            num_vertices: 3,
            edges: vec![(0, 1, 10), (1, 0, 10), (0, 2, 1), (2, 0, 1), (2, 1, 1), (1, 2, 1)],
        };
        let csr = WeightedCsr::from_edge_list(&w);
        assert_eq!(dijkstra(&csr, 0), vec![0, 2, 1]);
    }

    #[test]
    fn unreachable_stay_unreachable() {
        let mut g = builders::path(3);
        g.num_vertices = 5;
        let w = WeightedEdgeList::from_topology(&g, 4, 1);
        let csr = WeightedCsr::from_edge_list(&w);
        let dist = dijkstra(&csr, 0);
        assert_eq!(dist[3], UNREACHABLE);
        assert_eq!(dist[4], UNREACHABLE);
    }

    #[test]
    fn topology_roundtrip() {
        let g = builders::double_star(4);
        let w = WeightedEdgeList::from_topology(&g, 6, 3);
        assert_eq!(w.topology(), g);
        assert_eq!(w.num_edges(), g.num_edges());
    }
}
