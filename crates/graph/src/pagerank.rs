//! Sequential reference PageRank.
//!
//! The ground truth for the distributed, degree-separated PageRank in
//! `gcbfs-core` (the paper's §VI-D generalization: "more bits of state for
//! delegates — for example, ranking scores for PageRank"). Push
//! formulation with uniform redistribution of dangling mass, matching the
//! distributed implementation operation for operation.

use crate::csr::Csr;

/// Result of a PageRank computation.
#[derive(Clone, Debug)]
pub struct PageRankResult {
    /// Score per vertex; sums to 1.
    pub scores: Vec<f64>,
    /// Power iterations executed.
    pub iterations: u32,
    /// Final L1 delta between the last two iterations.
    pub delta: f64,
}

/// Runs PageRank with damping `d` until the L1 delta drops below
/// `tolerance` or `max_iterations` is reached.
pub fn pagerank(graph: &Csr, damping: f64, tolerance: f64, max_iterations: u32) -> PageRankResult {
    let n = graph.num_vertices() as usize;
    assert!(n > 0, "PageRank needs at least one vertex");
    assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
    let uniform = 1.0 / n as f64;
    let mut scores = vec![uniform; n];
    let mut iterations = 0;
    let mut delta = f64::INFINITY;
    while iterations < max_iterations && delta > tolerance {
        let mut next = vec![0f64; n];
        let mut dangling = 0f64;
        for u in 0..n as u64 {
            let deg = graph.out_degree(u);
            let s = scores[u as usize];
            if deg == 0 {
                dangling += s;
            } else {
                let share = s / deg as f64;
                for &v in graph.neighbors(u) {
                    next[v as usize] += share;
                }
            }
        }
        let base = (1.0 - damping) * uniform + damping * dangling * uniform;
        for x in &mut next {
            *x = base + damping * *x;
        }
        delta = scores.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        scores = next;
        iterations += 1;
    }
    PageRankResult { scores, iterations, delta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::csr::Csr;

    #[test]
    fn scores_sum_to_one() {
        let g = Csr::from_edge_list(&builders::grid(4, 4));
        let r = pagerank(&g, 0.85, 1e-12, 200);
        let total: f64 = r.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
        assert!(r.delta <= 1e-12);
    }

    #[test]
    fn symmetric_regular_graph_is_uniform() {
        // On a cycle every vertex has the same degree: the stationary
        // distribution is uniform.
        let g = Csr::from_edge_list(&builders::cycle(10));
        let r = pagerank(&g, 0.85, 1e-14, 500);
        for &s in &r.scores {
            assert!((s - 0.1).abs() < 1e-10, "score {s}");
        }
    }

    #[test]
    fn hub_outranks_leaves() {
        let g = Csr::from_edge_list(&builders::star(20));
        let r = pagerank(&g, 0.85, 1e-12, 500);
        assert!(r.scores[0] > 5.0 * r.scores[1]);
    }

    #[test]
    fn dangling_mass_is_conserved() {
        // A directed-looking structure after doubling has no dangling
        // vertices; force one with an isolated vertex.
        let mut list = builders::path(3);
        list.num_vertices = 4;
        let g = Csr::from_edge_list(&list);
        let r = pagerank(&g, 0.85, 1e-13, 500);
        let total: f64 = r.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(r.scores[3] > 0.0, "isolated vertex keeps the teleport mass");
    }

    #[test]
    fn respects_iteration_cap() {
        let g = Csr::from_edge_list(&builders::grid(5, 5));
        let r = pagerank(&g, 0.85, 0.0, 3);
        assert_eq!(r.iterations, 3);
    }
}
