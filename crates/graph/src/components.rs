//! Sequential reference connected components (union–find).
//!
//! Ground truth for the distributed label-propagation components in
//! `gcbfs-core` (the "community detection" building-block workload the
//! paper's introduction motivates). Labels are canonical: every vertex is
//! labeled with the smallest vertex id in its component.

use crate::edgelist::EdgeList;

/// Union–find with path halving and union by smaller-root.
struct Dsu {
    parent: Vec<u64>,
}

impl Dsu {
    fn new(n: u64) -> Self {
        Self { parent: (0..n).collect() }
    }

    fn find(&mut self, mut v: u64) -> u64 {
        while self.parent[v as usize] != v {
            let grand = self.parent[self.parent[v as usize] as usize];
            self.parent[v as usize] = grand;
            v = grand;
        }
        v
    }

    fn union(&mut self, a: u64, b: u64) {
        let (ra, rb) = (self.find(a), self.find(b));
        // Root at the smaller id so labels come out canonical.
        if ra < rb {
            self.parent[rb as usize] = ra;
        } else if rb < ra {
            self.parent[ra as usize] = rb;
        }
    }
}

/// Canonical component label (smallest member id) of every vertex.
pub fn components(graph: &EdgeList) -> Vec<u64> {
    let mut dsu = Dsu::new(graph.num_vertices);
    for &(u, v) in &graph.edges {
        dsu.union(u, v);
    }
    (0..graph.num_vertices).map(|v| dsu.find(v)).collect()
}

/// Number of connected components (isolated vertices count as singletons).
pub fn count_components(labels: &[u64]) -> u64 {
    labels.iter().enumerate().filter(|&(v, &l)| v as u64 == l).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn path_is_one_component() {
        let labels = components(&builders::path(6));
        assert!(labels.iter().all(|&l| l == 0));
        assert_eq!(count_components(&labels), 1);
    }

    #[test]
    fn disjoint_pieces() {
        // Two triangles: {0,1,2} and {3,4,5}, plus isolated 6.
        let mut g = EdgeList::new(7, vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        g.symmetrize();
        let labels = components(&g);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 3, 6]);
        assert_eq!(count_components(&labels), 3);
    }

    #[test]
    fn labels_are_canonical_minima() {
        let mut g = EdgeList::new(5, vec![(4, 2), (2, 3)]);
        g.symmetrize();
        let labels = components(&g);
        assert_eq!(labels, vec![0, 1, 2, 2, 2]);
    }

    #[test]
    fn empty_graph_is_all_singletons() {
        let g = EdgeList::new(4, vec![]);
        let labels = components(&g);
        assert_eq!(labels, vec![0, 1, 2, 3]);
        assert_eq!(count_components(&labels), 4);
    }
}
