//! Sequential reference BFS and Graph500-style result validation.
//!
//! Every distributed run in the workspace is checked against
//! [`bfs_depths`]; [`validate_depths`] additionally implements the
//! structural checks Graph500 applies to submitted results (adapted to the
//! hop-distance output the paper produces instead of a parent tree, §VI-A3).

use crate::csr::Csr;
use crate::edgelist::VertexId;
use std::collections::VecDeque;

/// Depth marker for unreached vertices.
pub const UNREACHED: u32 = u32::MAX;

/// Parent marker for vertices without a parent (unreached).
pub const NO_PARENT: u64 = u64::MAX;

/// Sequential BFS returning hop distances from `source` (`UNREACHED` for
/// unreachable vertices).
pub fn bfs_depths(graph: &Csr, source: VertexId) -> Vec<u32> {
    let n = graph.num_vertices() as usize;
    let mut depths = vec![UNREACHED; n];
    let mut queue = VecDeque::new();
    depths[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let next = depths[u as usize] + 1;
        for &v in graph.neighbors(u) {
            if depths[v as usize] == UNREACHED {
                depths[v as usize] = next;
                queue.push_back(v);
            }
        }
    }
    depths
}

/// Sequential BFS returning `(depths, parents)`; the source is its own
/// parent, unreached vertices have [`NO_PARENT`] (Graph500's tree output).
pub fn bfs_tree(graph: &Csr, source: VertexId) -> (Vec<u32>, Vec<u64>) {
    let n = graph.num_vertices() as usize;
    let mut depths = vec![UNREACHED; n];
    let mut parents = vec![NO_PARENT; n];
    let mut queue = VecDeque::new();
    depths[source as usize] = 0;
    parents[source as usize] = source;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let next = depths[u as usize] + 1;
        for &v in graph.neighbors(u) {
            if depths[v as usize] == UNREACHED {
                depths[v as usize] = next;
                parents[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    (depths, parents)
}

/// Validates a BFS parent tree against hop distances (the Graph500 tree
/// checks): the source is its own parent; every other reached vertex has a
/// parent that is a real neighbor exactly one level shallower; unreached
/// vertices have no parent.
pub fn validate_parents(
    graph: &Csr,
    source: VertexId,
    depths: &[u32],
    parents: &[u64],
) -> Result<(), ValidationError> {
    let n = graph.num_vertices() as usize;
    if parents.len() != n {
        return Err(ValidationError::WrongLength { expected: n, actual: parents.len() });
    }
    for v in 0..n as u64 {
        let d = depths[v as usize];
        let p = parents[v as usize];
        if d == UNREACHED {
            if p != NO_PARENT {
                return Err(ValidationError::ParentOfUnreached { vertex: v, parent: p });
            }
            continue;
        }
        if v == source {
            if p != source {
                return Err(ValidationError::BadSourceParent { parent: p });
            }
            continue;
        }
        if p == NO_PARENT || p >= n as u64 {
            return Err(ValidationError::MissingParent { vertex: v });
        }
        if depths[p as usize] + 1 != d {
            return Err(ValidationError::ParentDepthMismatch {
                vertex: v,
                parent: p,
                vertex_depth: d,
                parent_depth: depths[p as usize],
            });
        }
        // Neighbor lists are sorted: binary-search for the tree edge.
        if graph.neighbors(p).binary_search(&v).is_err() {
            return Err(ValidationError::ParentNotNeighbor { vertex: v, parent: p });
        }
    }
    Ok(())
}

/// Number of edges a single-processor BFS would traverse: the sum of
/// out-degrees of reached vertices. This is the `m'` of §IV-B and the
/// numerator of the Graph500 TEPS metric (halved for doubled graphs by the
/// caller).
pub fn traversed_edges(graph: &Csr, depths: &[u32]) -> u64 {
    depths
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHED)
        .map(|(v, _)| graph.out_degree(v as u64))
        .sum()
}

/// Why a depth assignment is not a valid BFS result. Field names are
/// self-describing; the variant docs state the violated rule.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ValidationError {
    /// The source does not have depth 0.
    SourceDepth { actual: u32 },
    /// Some vertex other than the source has depth 0.
    ExtraRoot { vertex: VertexId },
    /// An edge connects depths differing by more than 1.
    EdgeSpansLevels { from: VertexId, to: VertexId, from_depth: u32, to_depth: u32 },
    /// An edge leaves a reached vertex for an unreached one (impossible in
    /// a symmetric graph).
    ReachabilityLeak { from: VertexId, to: VertexId },
    /// A reached non-source vertex has no neighbor one level shallower.
    NoParent { vertex: VertexId, depth: u32 },
    /// Output length does not match the vertex count.
    WrongLength { expected: usize, actual: usize },
    /// An unreached vertex carries a parent.
    ParentOfUnreached { vertex: VertexId, parent: u64 },
    /// The source is not its own parent.
    BadSourceParent { parent: u64 },
    /// A reached non-source vertex has no (valid) parent id.
    MissingParent { vertex: VertexId },
    /// A parent is not exactly one level shallower.
    ParentDepthMismatch { vertex: VertexId, parent: VertexId, vertex_depth: u32, parent_depth: u32 },
    /// The claimed tree edge does not exist in the graph.
    ParentNotNeighbor { vertex: VertexId, parent: VertexId },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SourceDepth { actual } => write!(f, "source depth is {actual}, expected 0"),
            Self::ExtraRoot { vertex } => {
                write!(f, "vertex {vertex} has depth 0 but is not the source")
            }
            Self::EdgeSpansLevels { from, to, from_depth, to_depth } => {
                write!(f, "edge {from}->{to} spans depths {from_depth}->{to_depth}")
            }
            Self::ReachabilityLeak { from, to } => {
                write!(f, "reached vertex {from} has unreached neighbor {to}")
            }
            Self::NoParent { vertex, depth } => {
                write!(f, "vertex {vertex} at depth {depth} has no parent at depth {}", depth - 1)
            }
            Self::WrongLength { expected, actual } => {
                write!(f, "depth vector length {actual}, expected {expected}")
            }
            Self::ParentOfUnreached { vertex, parent } => {
                write!(f, "unreached vertex {vertex} has parent {parent}")
            }
            Self::BadSourceParent { parent } => {
                write!(f, "source's parent is {parent}, expected itself")
            }
            Self::MissingParent { vertex } => write!(f, "vertex {vertex} has no valid parent"),
            Self::ParentDepthMismatch { vertex, parent, vertex_depth, parent_depth } => write!(
                f,
                "vertex {vertex} (depth {vertex_depth}) has parent {parent} at depth {parent_depth}"
            ),
            Self::ParentNotNeighbor { vertex, parent } => {
                write!(f, "claimed tree edge {parent}->{vertex} is not in the graph")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates `depths` as a BFS hop-distance assignment from `source` on the
/// **symmetric** graph `graph`:
///
/// 1. the source has depth 0 and is the only depth-0 vertex;
/// 2. every edge connects depths differing by at most 1;
/// 3. no reached vertex has an unreached neighbor;
/// 4. every reached non-source vertex has a neighbor one level shallower.
///
/// Together with symmetry these force `depths` to equal the true hop
/// distances, so the check is complete, not just necessary.
pub fn validate_depths(
    graph: &Csr,
    source: VertexId,
    depths: &[u32],
) -> Result<(), ValidationError> {
    let n = graph.num_vertices() as usize;
    if depths.len() != n {
        return Err(ValidationError::WrongLength { expected: n, actual: depths.len() });
    }
    if depths[source as usize] != 0 {
        return Err(ValidationError::SourceDepth { actual: depths[source as usize] });
    }
    for (v, &d) in depths.iter().enumerate() {
        if d == 0 && v as u64 != source {
            return Err(ValidationError::ExtraRoot { vertex: v as u64 });
        }
    }
    for u in 0..n as u64 {
        let du = depths[u as usize];
        let mut has_parent = du == 0 || du == UNREACHED;
        for &v in graph.neighbors(u) {
            let dv = depths[v as usize];
            if du != UNREACHED && dv == UNREACHED {
                return Err(ValidationError::ReachabilityLeak { from: u, to: v });
            }
            if du != UNREACHED && dv != UNREACHED && du.abs_diff(dv) > 1 {
                return Err(ValidationError::EdgeSpansLevels {
                    from: u,
                    to: v,
                    from_depth: du,
                    to_depth: dv,
                });
            }
            if du != UNREACHED && du > 0 && dv == du - 1 {
                has_parent = true;
            }
        }
        if !has_parent {
            return Err(ValidationError::NoParent { vertex: u, depth: du });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::edgelist::EdgeList;

    #[test]
    fn bfs_on_path() {
        let g = builders::path(5);
        let csr = Csr::from_edge_list(&g);
        assert_eq!(bfs_depths(&csr, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_depths(&csr, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = EdgeList::new(4, vec![(0, 1), (1, 0)]);
        let csr = Csr::from_edge_list(&g);
        let d = bfs_depths(&csr, 0);
        assert_eq!(d, vec![0, 1, UNREACHED, UNREACHED]);
    }

    #[test]
    fn traversed_edges_counts_reached_degrees() {
        let g = builders::star(4); // center 0, leaves 1..=4, doubled
        let csr = Csr::from_edge_list(&g);
        let d = bfs_depths(&csr, 0);
        assert_eq!(traversed_edges(&csr, &d), 8);
    }

    #[test]
    fn validate_accepts_reference() {
        let g = builders::grid(4, 5);
        let csr = Csr::from_edge_list(&g);
        let d = bfs_depths(&csr, 7);
        validate_depths(&csr, 7, &d).unwrap();
    }

    #[test]
    fn validate_rejects_wrong_source_depth() {
        let g = builders::path(3);
        let csr = Csr::from_edge_list(&g);
        let err = validate_depths(&csr, 0, &[1, 1, 2]).unwrap_err();
        assert_eq!(err, ValidationError::SourceDepth { actual: 1 });
    }

    #[test]
    fn validate_rejects_extra_root() {
        let g = builders::path(3);
        let csr = Csr::from_edge_list(&g);
        let err = validate_depths(&csr, 0, &[0, 0, 1]).unwrap_err();
        assert_eq!(err, ValidationError::ExtraRoot { vertex: 1 });
    }

    #[test]
    fn validate_rejects_level_skip() {
        let g = builders::path(3);
        let csr = Csr::from_edge_list(&g);
        let err = validate_depths(&csr, 0, &[0, 1, 3]).unwrap_err();
        assert!(matches!(err, ValidationError::EdgeSpansLevels { .. }));
    }

    #[test]
    fn validate_rejects_reachability_leak() {
        let g = builders::path(3);
        let csr = Csr::from_edge_list(&g);
        let err = validate_depths(&csr, 0, &[0, 1, UNREACHED]).unwrap_err();
        assert_eq!(err, ValidationError::ReachabilityLeak { from: 1, to: 2 });
    }

    #[test]
    fn validate_rejects_orphan_level() {
        // depth 2 with no depth-1 neighbor: vertex 2 on a path colored 0,2,2
        // triggers EdgeSpansLevels first, so build a disconnected-looking
        // depth instead: 4-cycle with depths 0,1,2,2 is valid, 0,1,2,3 is not.
        let g = builders::cycle(4);
        let csr = Csr::from_edge_list(&g);
        validate_depths(&csr, 0, &[0, 1, 2, 1]).unwrap();
        let err = validate_depths(&csr, 0, &[0, 1, 2, 3]).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::EdgeSpansLevels { .. } | ValidationError::NoParent { .. }
        ));
    }

    #[test]
    fn validate_rejects_wrong_length() {
        let g = builders::path(3);
        let csr = Csr::from_edge_list(&g);
        let err = validate_depths(&csr, 0, &[0, 1]).unwrap_err();
        assert_eq!(err, ValidationError::WrongLength { expected: 3, actual: 2 });
    }

    #[test]
    fn bfs_tree_matches_depths_and_validates() {
        let g = builders::grid(4, 4);
        let csr = Csr::from_edge_list(&g);
        let (depths, parents) = bfs_tree(&csr, 5);
        assert_eq!(depths, bfs_depths(&csr, 5));
        validate_parents(&csr, 5, &depths, &parents).unwrap();
        assert_eq!(parents[5], 5);
    }

    #[test]
    fn bfs_tree_unreached_have_no_parent() {
        let mut g = builders::path(3);
        g.num_vertices = 5;
        let csr = Csr::from_edge_list(&g);
        let (depths, parents) = bfs_tree(&csr, 0);
        assert_eq!(parents[3], NO_PARENT);
        assert_eq!(parents[4], NO_PARENT);
        validate_parents(&csr, 0, &depths, &parents).unwrap();
    }

    #[test]
    fn validate_parents_rejects_fake_edge() {
        let g = builders::path(4);
        let csr = Csr::from_edge_list(&g);
        let depths = vec![0, 1, 2, 3];
        // Vertex 3 claims parent 1 — depth mismatch first.
        let err = validate_parents(&csr, 0, &depths, &[0, 0, 1, 1]).unwrap_err();
        assert!(matches!(err, ValidationError::ParentDepthMismatch { .. }));
        // Right depth, wrong adjacency: diamond 0-{1,2}-3 plus a pendant 4;
        // vertex 3 (depth 2) claims parent 4 (depth 1, but not a neighbor).
        let mut diamond = crate::EdgeList::new(5, vec![(0, 1), (0, 2), (1, 3), (2, 3), (0, 4)]);
        diamond.symmetrize();
        let c = Csr::from_edge_list(&diamond);
        let (d, mut p) = bfs_tree(&c, 0);
        p[3] = 4;
        let err = validate_parents(&c, 0, &d, &p).unwrap_err();
        assert!(matches!(err, ValidationError::ParentNotNeighbor { vertex: 3, parent: 4 }));
    }

    #[test]
    fn validate_parents_rejects_parent_on_unreached() {
        let mut g = builders::path(2);
        g.num_vertices = 3;
        let csr = Csr::from_edge_list(&g);
        let err = validate_parents(&csr, 0, &[0, 1, UNREACHED], &[0, 0, 0]).unwrap_err();
        assert!(matches!(err, ValidationError::ParentOfUnreached { .. }));
    }

    #[test]
    fn validate_parents_rejects_bad_source() {
        let g = builders::path(2);
        let csr = Csr::from_edge_list(&g);
        let err = validate_parents(&csr, 0, &[0, 1], &[1, 0]).unwrap_err();
        assert!(matches!(err, ValidationError::BadSourceParent { .. }));
    }
}
