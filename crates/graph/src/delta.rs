//! Delta-overlay CSR for evolving graphs.
//!
//! The incremental-BFS path (ROADMAP item 2) applies streaming edge
//! mutations between queries. Rebuilding the CSR per batch would cost
//! `O(m)` for batches of a few hundred edges, so mutations land in a
//! per-row *overlay* instead: each patched row keeps a sorted multiset of
//! added targets and a sorted multiset of deleted base-occurrences, and
//! neighbor walks merge the base row with its patch on the fly. Periodic
//! [`CsrDelta::compact`] folds the overlay back into a fresh base CSR;
//! callers charge that to the cost model (the incremental driver in
//! `gcbfs-core` prices it as a binning pass over the merged edge set).
//!
//! Semantics are multigraph: adding an edge twice stores two occurrences,
//! and one delete removes one occurrence. Deleting an absent edge is a
//! no-op that reports `false`. All storage is `BTreeMap`/sorted-`Vec`
//! based, so iteration order — and therefore every downstream modeled
//! number — is deterministic.

use crate::csr::Csr;
use crate::edgelist::EdgeList;
use std::collections::BTreeMap;

/// Overlay patch of one adjacency row.
#[derive(Clone, Debug, Default)]
struct DeltaRow {
    /// Added targets, sorted, duplicates allowed (multiset).
    adds: Vec<u64>,
    /// Deleted base-row occurrences, sorted, duplicates allowed; each
    /// entry cancels exactly one occurrence in the base row.
    dels: Vec<u64>,
}

impl DeltaRow {
    fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.dels.is_empty()
    }
}

/// What one compaction folded away, for cost-model charging.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Directed edges in the rebuilt base CSR.
    pub merged_edges: u64,
    /// Overlay entries (adds + deletes) folded into the base.
    pub overlay_entries: u64,
    /// Rows that carried a patch before the fold.
    pub patched_rows: u64,
}

/// A CSR with a mutable delta overlay: base adjacency plus per-row
/// add/delete patches merged at walk time.
#[derive(Clone, Debug)]
pub struct CsrDelta {
    base: Csr,
    rows: BTreeMap<u64, DeltaRow>,
    /// Net directed edge count (base + adds − deletes), kept incrementally.
    num_edges: u64,
    /// Total overlay entries (adds + deletes) currently held.
    overlay_entries: u64,
}

impl CsrDelta {
    /// Wraps an existing base CSR with an empty overlay.
    pub fn new(base: Csr) -> Self {
        let num_edges = base.num_edges();
        Self { base, rows: BTreeMap::new(), num_edges, overlay_entries: 0 }
    }

    /// Builds the base CSR from an edge list and wraps it.
    pub fn from_edge_list(graph: &EdgeList) -> Self {
        Self::new(Csr::from_edge_list(graph))
    }

    /// Vertex count `n` (fixed: mutations change edges, not the id space).
    pub fn num_vertices(&self) -> u64 {
        self.base.num_vertices()
    }

    /// Current directed edge count, overlay included.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Overlay entries (adds + deletes) not yet compacted.
    pub fn overlay_entries(&self) -> u64 {
        self.overlay_entries
    }

    /// Rows currently carrying a patch.
    pub fn patched_rows(&self) -> u64 {
        self.rows.len() as u64
    }

    /// Current out-degree of `v`, overlay included.
    pub fn degree(&self, v: u64) -> u64 {
        let base = self.base.out_degree(v);
        match self.rows.get(&v) {
            Some(row) => base + row.adds.len() as u64 - row.dels.len() as u64,
            None => base,
        }
    }

    /// Number of live occurrences of the directed edge `u → v`.
    pub fn multiplicity(&self, u: u64, v: u64) -> u64 {
        let base = count_in_sorted(self.base.neighbors(u), v);
        match self.rows.get(&u) {
            Some(row) => base + count_in_sorted(&row.adds, v) - count_in_sorted(&row.dels, v),
            None => base,
        }
    }

    /// Whether the directed edge `u → v` currently exists.
    pub fn contains(&self, u: u64, v: u64) -> bool {
        self.multiplicity(u, v) > 0
    }

    /// Adds one occurrence of the directed edge `u → v`.
    ///
    /// If the same occurrence is marked deleted in the overlay, the add
    /// cancels that tombstone instead of growing the patch — so a
    /// delete-then-re-add within one batch nets out to the base row.
    pub fn add_edge(&mut self, u: u64, v: u64) {
        assert!(u < self.num_vertices() && v < self.num_vertices(), "edge endpoint out of range");
        let row = self.rows.entry(u).or_default();
        if let Ok(pos) = row.dels.binary_search(&v) {
            row.dels.remove(pos);
            self.overlay_entries -= 1;
        } else {
            let pos = row.adds.partition_point(|&x| x <= v);
            row.adds.insert(pos, v);
            self.overlay_entries += 1;
        }
        if row.is_empty() {
            self.rows.remove(&u);
        }
        self.num_edges += 1;
    }

    /// Deletes one occurrence of the directed edge `u → v`, preferring a
    /// pending overlay add over tombstoning a base occurrence. Returns
    /// `false` (and changes nothing) if the edge is not present.
    pub fn delete_edge(&mut self, u: u64, v: u64) -> bool {
        if u >= self.num_vertices() {
            return false;
        }
        let base_live = count_in_sorted(self.base.neighbors(u), v);
        let row = self.rows.entry(u).or_default();
        let deleted = if let Ok(pos) = row.adds.binary_search(&v) {
            row.adds.remove(pos);
            self.overlay_entries -= 1;
            true
        } else if count_in_sorted(&row.dels, v) < base_live {
            let pos = row.dels.partition_point(|&x| x <= v);
            row.dels.insert(pos, v);
            self.overlay_entries += 1;
            true
        } else {
            false
        };
        if row.is_empty() {
            self.rows.remove(&u);
        }
        if deleted {
            self.num_edges -= 1;
        }
        deleted
    }

    /// Visits the live neighbors of `v` in sorted order (duplicates kept),
    /// merging the base row with its overlay patch on the fly.
    pub fn for_neighbors(&self, v: u64, mut f: impl FnMut(u64)) {
        let base = self.base.neighbors(v);
        match self.rows.get(&v) {
            None => {
                for &w in base {
                    f(w);
                }
            }
            Some(row) => {
                // Base minus tombstones, merged with adds; all three runs
                // are sorted, so a two-pointer merge keeps sorted order.
                let mut del_idx = 0usize;
                let mut add_idx = 0usize;
                for &w in base {
                    // Emit pending adds smaller than this survivor first.
                    if del_idx < row.dels.len() && row.dels[del_idx] == w {
                        del_idx += 1;
                        continue;
                    }
                    while add_idx < row.adds.len() && row.adds[add_idx] < w {
                        f(row.adds[add_idx]);
                        add_idx += 1;
                    }
                    f(w);
                }
                while add_idx < row.adds.len() {
                    f(row.adds[add_idx]);
                    add_idx += 1;
                }
            }
        }
    }

    /// The live neighbors of `v` as an owned sorted vector.
    pub fn neighbors_vec(&self, v: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.degree(v) as usize);
        self.for_neighbors(v, |w| out.push(w));
        out
    }

    /// Folds the overlay into a fresh base CSR and clears it, returning
    /// what was merged so the caller can charge the rebuild.
    pub fn compact(&mut self) -> CompactionStats {
        let stats = CompactionStats {
            merged_edges: self.num_edges,
            overlay_entries: self.overlay_entries,
            patched_rows: self.rows.len() as u64,
        };
        if self.rows.is_empty() {
            return stats;
        }
        self.base = Csr::from_edge_list(&self.to_edge_list());
        self.rows.clear();
        self.overlay_entries = 0;
        stats
    }

    /// Materializes the current (base + overlay) graph as an edge list.
    pub fn to_edge_list(&self) -> EdgeList {
        let mut edges = Vec::with_capacity(self.num_edges as usize);
        for v in 0..self.num_vertices() {
            self.for_neighbors(v, |w| edges.push((v, w)));
        }
        EdgeList::new(self.num_vertices(), edges)
    }
}

/// Occurrences of `x` in a sorted slice.
fn count_in_sorted(sorted: &[u64], x: u64) -> u64 {
    let lo = sorted.partition_point(|&y| y < x);
    let hi = sorted.partition_point(|&y| y <= x);
    (hi - lo) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn delta(n: u64, edges: &[(u64, u64)]) -> CsrDelta {
        CsrDelta::from_edge_list(&EdgeList::new(n, edges.to_vec()))
    }

    #[test]
    fn empty_overlay_matches_base() {
        let d = delta(4, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
        assert_eq!(d.num_edges(), 4);
        assert_eq!(d.degree(1), 2);
        assert_eq!(d.neighbors_vec(1), vec![0, 2]);
        assert_eq!(d.patched_rows(), 0);
    }

    #[test]
    fn add_and_delete_roundtrip() {
        let mut d = delta(4, &[(0, 1), (1, 0)]);
        d.add_edge(0, 3);
        assert!(d.contains(0, 3));
        assert_eq!(d.neighbors_vec(0), vec![1, 3]);
        assert_eq!(d.num_edges(), 3);
        assert!(d.delete_edge(0, 3));
        assert!(!d.contains(0, 3));
        assert_eq!(d.num_edges(), 2);
        assert_eq!(d.patched_rows(), 0, "cancelled patch is dropped");
    }

    #[test]
    fn delete_base_edge_tombstones() {
        let mut d = delta(4, &[(0, 1), (0, 2), (1, 0), (2, 0)]);
        assert!(d.delete_edge(0, 1));
        assert_eq!(d.neighbors_vec(0), vec![2]);
        assert_eq!(d.degree(0), 1);
        assert!(!d.delete_edge(0, 1), "second delete of the same edge is a no-op");
        assert_eq!(d.num_edges(), 3);
    }

    #[test]
    fn delete_then_readd_nets_to_base() {
        let mut d = delta(4, &[(0, 1), (1, 0)]);
        assert!(d.delete_edge(0, 1));
        d.add_edge(0, 1);
        assert_eq!(d.neighbors_vec(0), vec![1]);
        assert_eq!(d.overlay_entries(), 0, "re-add cancels the tombstone");
        assert_eq!(d.num_edges(), 2);
    }

    #[test]
    fn multigraph_multiplicity() {
        let mut d = delta(3, &[(0, 1), (1, 0)]);
        d.add_edge(0, 1);
        d.add_edge(0, 1);
        assert_eq!(d.multiplicity(0, 1), 3);
        assert_eq!(d.neighbors_vec(0), vec![1, 1, 1]);
        assert!(d.delete_edge(0, 1));
        assert_eq!(d.multiplicity(0, 1), 2);
    }

    #[test]
    fn merged_walk_is_sorted() {
        let mut d = delta(8, &[(0, 2), (0, 5), (2, 0), (5, 0)]);
        d.add_edge(0, 7);
        d.add_edge(0, 1);
        d.add_edge(0, 3);
        assert!(d.delete_edge(0, 5));
        assert_eq!(d.neighbors_vec(0), vec![1, 2, 3, 7]);
    }

    #[test]
    fn compact_folds_overlay() {
        let mut d = delta(6, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
        d.add_edge(0, 4);
        d.add_edge(4, 0);
        assert!(d.delete_edge(1, 2));
        assert!(d.delete_edge(2, 1));
        let before = d.to_edge_list();
        let stats = d.compact();
        assert_eq!(stats.overlay_entries, 4);
        assert_eq!(stats.patched_rows, 4);
        assert_eq!(stats.merged_edges, 4);
        assert_eq!(d.overlay_entries(), 0);
        assert_eq!(d.patched_rows(), 0);
        let after = d.to_edge_list();
        assert_eq!(before.edges, after.edges, "compaction preserves the live edge set");
        assert_eq!(d.num_edges(), 4);
        // Compacting an unpatched graph is a no-op.
        let stats = d.compact();
        assert_eq!(stats.overlay_entries, 0);
    }

    #[test]
    fn degree_tracks_mutations_on_real_graph() {
        let g = builders::star(16);
        let mut d = CsrDelta::from_edge_list(&g);
        let hub_deg = d.degree(0);
        d.add_edge(0, 1);
        assert_eq!(d.degree(0), hub_deg + 1);
        assert!(d.delete_edge(0, 2));
        assert!(d.delete_edge(0, 3));
        assert_eq!(d.degree(0), hub_deg - 1);
    }
}
