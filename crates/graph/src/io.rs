//! Graph serialization in standard interchange formats.
//!
//! The paper deliberately sticks to standard representations so BFS can be
//! "a component of a complex workflow with many components that use
//! standard formats for passing data between them" (§II-D). This module
//! provides the two formats such workflows actually exchange:
//!
//! * a whitespace text edge list (`u v` per line, `#` comments, compatible
//!   with SNAP / common graph tooling);
//! * a compact little-endian binary edge list (`u64 n`, `u64 m`, then
//!   `m` pairs of `u64`).

use crate::edgelist::EdgeList;
use std::io::{self, BufRead, BufWriter, Read, Write};

/// Magic header of the binary format.
const MAGIC: &[u8; 8] = b"GCBFSEL1";

/// Writes the text edge-list format.
pub fn write_text<W: Write>(graph: &EdgeList, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# gcbfs edge list: {} vertices, {} edges", graph.num_vertices, graph.num_edges())?;
    writeln!(w, "# vertices {}", graph.num_vertices)?;
    for &(u, v) in &graph.edges {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Reads the text edge-list format. Lines starting with `#` are comments;
/// a `# vertices N` comment fixes the vertex count, otherwise it is
/// `max endpoint + 1`.
pub fn read_text<R: Read>(reader: R) -> io::Result<EdgeList> {
    let buf = io::BufReader::new(reader);
    let mut edges = Vec::new();
    let mut declared_n: Option<u64> = None;
    let mut max_endpoint = 0u64;
    for line in buf.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if parts.next() == Some("vertices") {
                if let Some(n) = parts.next().and_then(|s| s.parse().ok()) {
                    declared_n = Some(n);
                }
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |s: Option<&str>| -> io::Result<u64> {
            s.and_then(|x| x.parse().ok())
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed edge line"))
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        max_endpoint = max_endpoint.max(u).max(v);
        edges.push((u, v));
    }
    let n = declared_n.unwrap_or(if edges.is_empty() { 0 } else { max_endpoint + 1 });
    if edges.iter().any(|&(u, v)| u >= n || v >= n) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "endpoint exceeds vertex count"));
    }
    Ok(EdgeList { num_vertices: n, edges })
}

/// Writes the binary edge-list format.
pub fn write_binary<W: Write>(graph: &EdgeList, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&graph.num_vertices.to_le_bytes())?;
    w.write_all(&graph.num_edges().to_le_bytes())?;
    for &(u, v) in &graph.edges {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Reads the binary edge-list format.
pub fn read_binary<R: Read>(mut reader: R) -> io::Result<EdgeList> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut word = [0u8; 8];
    reader.read_exact(&mut word)?;
    let n = u64::from_le_bytes(word);
    reader.read_exact(&mut word)?;
    let m = u64::from_le_bytes(word);
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        reader.read_exact(&mut word)?;
        let u = u64::from_le_bytes(word);
        reader.read_exact(&mut word)?;
        let v = u64::from_le_bytes(word);
        if u >= n || v >= n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "endpoint exceeds vertex count",
            ));
        }
        edges.push((u, v));
    }
    Ok(EdgeList { num_vertices: n, edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::rmat::RmatConfig;

    #[test]
    fn text_roundtrip() {
        let g = builders::double_star(4);
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn text_infers_vertex_count_without_header() {
        let input = "0 3\n2 1\n";
        let g = read_text(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices, 4);
        assert_eq!(g.edges, vec![(0, 3), (2, 1)]);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(read_text("0 banana\n".as_bytes()).is_err());
        assert!(read_text("7\n".as_bytes()).is_err());
    }

    #[test]
    fn text_respects_declared_count_with_isolated_tail() {
        let input = "# vertices 10\n0 1\n";
        let g = read_text(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices, 10);
    }

    #[test]
    fn binary_roundtrip_rmat() {
        let g = RmatConfig::graph500(7).generate();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn binary_rejects_bad_magic_and_truncation() {
        assert!(read_binary(&b"NOTMAGIC"[..]).is_err());
        let g = builders::path(3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_out_of_range_endpoint() {
        let g = builders::path(3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Corrupt the vertex count downwards.
        buf[8..16].copy_from_slice(&1u64.to_le_bytes());
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = EdgeList::new(5, vec![]);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), g);
        let mut tbuf = Vec::new();
        write_text(&g, &mut tbuf).unwrap();
        assert_eq!(read_text(&tbuf[..]).unwrap(), g);
    }
}
