//! Degree-distribution statistics.
//!
//! The paper's degree-threshold analysis (Figs. 5, 7, 12) is entirely a
//! function of the out-degree distribution; this module provides the
//! histogram and percentile machinery those figures are computed from.

use crate::edgelist::EdgeList;

/// Summary of an out-degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Number of directed edges (sum of degrees).
    pub num_edges: u64,
    /// Largest out-degree.
    pub max_degree: u64,
    /// Mean out-degree.
    pub mean_degree: f64,
    /// Count of zero-degree vertices.
    pub zero_degree: u64,
    /// `histogram[k]` = number of vertices whose degree's bit length is `k`
    /// (log2 histogram: bucket 0 holds degree 0, bucket 1 degree 1,
    /// bucket 2 degrees 2–3, ...).
    pub log2_histogram: Vec<u64>,
}

impl DegreeStats {
    /// Computes statistics from out-degrees.
    pub fn from_degrees(degrees: &[u64]) -> Self {
        let num_edges: u64 = degrees.iter().sum();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let buckets = 65 - max_degree.leading_zeros() as usize;
        let mut log2_histogram = vec![0u64; buckets.max(1)];
        let mut zero_degree = 0;
        for &d in degrees {
            if d == 0 {
                zero_degree += 1;
            }
            log2_histogram[bit_length(d)] += 1;
        }
        Self {
            num_vertices: degrees.len() as u64,
            num_edges,
            max_degree,
            mean_degree: if degrees.is_empty() {
                0.0
            } else {
                num_edges as f64 / degrees.len() as f64
            },
            zero_degree,
            log2_histogram,
        }
    }

    /// Computes statistics for a graph.
    pub fn from_graph(graph: &EdgeList) -> Self {
        Self::from_degrees(&graph.out_degrees())
    }

    /// Number of vertices with degree strictly greater than `threshold` —
    /// the delegate count `d` the separation in `gcbfs-core` will produce.
    pub fn count_above(degrees: &[u64], threshold: u64) -> u64 {
        degrees.iter().filter(|&&d| d > threshold).count() as u64
    }

    /// Fraction of edges whose *source* has degree above `threshold`.
    pub fn edge_fraction_from_high(degrees: &[u64], threshold: u64) -> f64 {
        let total: u64 = degrees.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let high: u64 = degrees.iter().filter(|&&d| d > threshold).sum();
        high as f64 / total as f64
    }
}

/// Bit length of `d` (0 for 0).
#[inline]
fn bit_length(d: u64) -> usize {
    (64 - d.leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn stats_on_star() {
        let s = DegreeStats::from_graph(&builders::star(7));
        assert_eq!(s.num_vertices, 8);
        assert_eq!(s.num_edges, 14);
        assert_eq!(s.max_degree, 7);
        assert_eq!(s.zero_degree, 0);
        // degree 7 -> bucket 3; degree 1 -> bucket 1
        assert_eq!(s.log2_histogram[3], 1);
        assert_eq!(s.log2_histogram[1], 7);
    }

    #[test]
    fn count_above_threshold() {
        let degrees = vec![0, 1, 5, 64, 64, 100];
        assert_eq!(DegreeStats::count_above(&degrees, 5), 3);
        assert_eq!(DegreeStats::count_above(&degrees, 64), 1);
        assert_eq!(DegreeStats::count_above(&degrees, 0), 5);
    }

    #[test]
    fn edge_fraction() {
        let degrees = vec![10, 10, 80];
        let f = DegreeStats::edge_fraction_from_high(&degrees, 10);
        assert!((f - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution() {
        let s = DegreeStats::from_degrees(&[]);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert_eq!(DegreeStats::edge_fraction_from_high(&[], 3), 0.0);
    }
}
