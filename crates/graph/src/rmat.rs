//! Graph500-conformant RMAT generator.
//!
//! Matches the paper's setup (§VI-A3): edge factor 16, RMAT parameters
//! `A, B, C, D = 0.57, 0.19, 0.19, 0.05`, vertex numbers randomized by a
//! deterministic hash after edge generation, and the graph made undirected
//! by edge doubling. For a scale-`N` graph, `n = 2^N` and the doubled edge
//! count is `2^N * 2 * edge_factor`; Graph500 TEPS are computed against
//! `2^N * edge_factor` (see [`RmatConfig::graph500_edges`]).
//!
//! The paper generated RMAT on the GPUs themselves; here generation is a
//! rayon-parallel loop, deterministic in the seed regardless of thread
//! count (each chunk derives its own RNG stream from the seed).

use crate::edgelist::EdgeList;
use crate::permute::VertexPermutation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Configuration of an RMAT graph.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// Graph500 scale: the graph has `2^scale` vertices.
    pub scale: u32,
    /// Directed edges generated per vertex before doubling (Graph500: 16).
    pub edge_factor: u32,
    /// Quadrant probabilities. Must sum to 1.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// RNG seed; the same seed always yields the same graph.
    pub seed: u64,
}

impl RmatConfig {
    /// The Graph500 defaults used throughout the paper.
    pub fn graph500(scale: u32) -> Self {
        Self { scale, edge_factor: 16, a: 0.57, b: 0.19, c: 0.19, seed: 0x5eed }
    }

    /// With a different seed (for repeated-source experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of vertices `n = 2^scale`.
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Directed edges before doubling: `n * edge_factor`.
    pub fn num_generated_edges(&self) -> u64 {
        self.num_vertices() * self.edge_factor as u64
    }

    /// The edge count Graph500 uses in the TEPS denominator (`m/2` of the
    /// doubled graph, i.e. the generated count).
    pub fn graph500_edges(&self) -> u64 {
        self.num_generated_edges()
    }

    /// Implied `d` probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    /// Generates the directed RMAT edge list (before doubling or vertex
    /// randomization).
    pub fn generate_directed(&self) -> EdgeList {
        assert!(
            (self.a + self.b + self.c) < 1.0 + 1e-9
                && self.a >= 0.0
                && self.b >= 0.0
                && self.c >= 0.0,
            "RMAT probabilities must be non-negative and sum to at most 1"
        );
        let m = self.num_generated_edges() as usize;
        let scale = self.scale;
        let (a, b, c) = (self.a, self.b, self.c);
        let seed = self.seed;
        const CHUNK: usize = 1 << 14;
        let num_chunks = m.div_ceil(CHUNK);
        let edges: Vec<(u64, u64)> = (0..num_chunks)
            .into_par_iter()
            .flat_map_iter(|chunk| {
                let lo = chunk * CHUNK;
                let hi = (lo + CHUNK).min(m);
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (chunk as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                (lo..hi).map(move |_| sample_rmat_edge(&mut rng, scale, a, b, c))
            })
            .collect();
        EdgeList::new(self.num_vertices(), edges)
    }

    /// Generates the full Graph500 input: RMAT edges, vertex ids randomized
    /// by a deterministic bijective hash, then made undirected by doubling.
    pub fn generate(&self) -> EdgeList {
        let mut list = self.generate_directed();
        let perm = VertexPermutation::new(self.num_vertices(), self.seed ^ 0xbadc_0ffe);
        list.renumber(|v| perm.apply(v));
        list.symmetrize();
        list
    }
}

/// Samples one RMAT edge by descending `scale` levels of the adjacency
/// matrix quadrants.
#[inline]
fn sample_rmat_edge(rng: &mut StdRng, scale: u32, a: f64, b: f64, c: f64) -> (u64, u64) {
    let mut u = 0u64;
    let mut v = 0u64;
    for level in (0..scale).rev() {
        let r: f64 = rng.random();
        let bit = 1u64 << level;
        if r < a {
            // top-left: no bits set
        } else if r < a + b {
            v |= bit;
        } else if r < a + b + c {
            u |= bit;
        } else {
            u |= bit;
            v |= bit;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_graph500_spec() {
        let cfg = RmatConfig::graph500(10);
        assert_eq!(cfg.num_vertices(), 1024);
        assert_eq!(cfg.num_generated_edges(), 1024 * 16);
        assert_eq!(cfg.graph500_edges(), 1024 * 16);
        let g = cfg.generate();
        assert_eq!(g.num_vertices, 1024);
        // Doubling at most doubles (self-loops are not doubled).
        assert!(g.num_edges() <= 2 * cfg.num_generated_edges());
        assert!(g.num_edges() > cfg.num_generated_edges());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = RmatConfig::graph500(8).generate();
        let b = RmatConfig::graph500(8).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = RmatConfig::graph500(8).generate();
        let b = RmatConfig::graph500(8).with_seed(123).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn generated_graph_is_symmetric() {
        assert!(RmatConfig::graph500(8).generate().is_symmetric());
    }

    #[test]
    fn skewed_degree_distribution() {
        // RMAT with Graph500 parameters is scale-free: the max out-degree
        // should be far above the mean (32 after doubling).
        let g = RmatConfig::graph500(12).generate();
        let degs = g.out_degrees();
        let max = *degs.iter().max().unwrap();
        assert!(max > 200, "max degree {max} not scale-free-like");
        // ... and plenty of vertices should be isolated or near-isolated.
        let low = degs.iter().filter(|&&d| d <= 1).count();
        assert!(low > (g.num_vertices as usize) / 10);
    }

    #[test]
    fn quadrant_probabilities_respected() {
        // With a = 1 every edge is (0, 0).
        let cfg = RmatConfig { scale: 6, edge_factor: 4, a: 1.0, b: 0.0, c: 0.0, seed: 1 };
        let g = cfg.generate_directed();
        assert!(g.edges.iter().all(|&e| e == (0, 0)));
        // With d = 1 every edge is (n-1, n-1).
        let cfg = RmatConfig { scale: 6, edge_factor: 4, a: 0.0, b: 0.0, c: 0.0, seed: 1 };
        let g = cfg.generate_directed();
        assert!(g.edges.iter().all(|&e| e == (63, 63)));
    }

    #[test]
    fn deterministic_across_thread_pools() {
        let in_one_thread = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| RmatConfig::graph500(8).generate());
        let parallel = RmatConfig::graph500(8).generate();
        assert_eq!(in_one_thread, parallel);
    }
}
