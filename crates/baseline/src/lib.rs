#![warn(missing_docs)]

//! Baselines the paper compares against or analyzes.
//!
//! * [`single`] — single-processor BFS and direction-optimizing BFS
//!   (Beamer, Asanović, Patterson; SC'12), the algorithmic foundation the
//!   paper builds on and the oracle for the `m'` workload of §IV-B;
//! * [`oned`] — conventional 1D-partitioned distributed BFS: vertices
//!   modulo-partitioned, frontier updates pushed point-to-point, and (for
//!   the backward direction) newly visited vertices broadcast to all peers
//!   — the `8m` communication volume §II-B starts from;
//! * [`twod`] — conventional 2D-partitioned distributed BFS on a √p × √p
//!   processor grid: column broadcasts of frontier segments, row reductions
//!   of discoveries, and the `√p`-growth communication the paper argues
//!   cannot scale (§II-B, §II-D).
//!
//! All baselines execute the real traversal (their outputs are validated
//! against the reference) and are charged to the same cost model as the
//! degree-separated implementation, so who-wins comparisons are apples to
//! apples.

pub mod oned;
pub mod single;
pub mod twod;

pub use oned::{OneDBfs, OneDResult};
pub use single::{SingleNodeBfs, SingleResult};
pub use twod::{TwoDBfs, TwoDResult};

/// Depth marker for unreached vertices (matches the rest of the workspace).
pub const UNREACHED: u32 = u32::MAX;
