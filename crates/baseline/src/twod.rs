//! Conventional 2D-partitioned distributed BFS (§II-B, §II-D).
//!
//! The adjacency matrix is blocked over a √p × √p processor grid:
//! processor `(i, j)` holds the edges whose source lies in vertex part `j`
//! and destination in part `i`. A forward iteration broadcasts each
//! frontier segment down its column (tree, `log √p` rounds), multiplies
//! blocks locally, and reduces the discovery bitmaps across each row to the
//! diagonal owner. A backward iteration moves two bitmasks per part —
//! frontier status down columns and unvisited status across rows — which is
//! the `2nS_b√p(log √p)/8`-byte cost the paper derives.
//!
//! The traversal executes for real and is validated against the reference;
//! volumes are measured per link-transfer (tree fan-out counted), so the
//! `√p` growth of §II-B is *observed*, not assumed. The workload inflation
//! of 2D DOBFS — every row processor independently searches for parents, so
//! up to `√p` parents are found per vertex — also shows up in the measured
//! `edges_examined`.

use crate::UNREACHED;
use gcbfs_cluster::cost::{CostModel, KernelKind, NetworkModel};
use gcbfs_graph::Csr;

/// Result of a 2D-partitioned run.
#[derive(Clone, Debug)]
pub struct TwoDResult {
    /// Hop distances (`UNREACHED` if unreachable).
    pub depths: Vec<u32>,
    /// BFS levels processed.
    pub iterations: u32,
    /// Levels run in the backward direction.
    pub backward_iterations: u32,
    /// Edges examined summed over processors (inflated vs 1D for DOBFS).
    pub edges_examined: u64,
    /// Bytes over links, counting tree fan-out.
    pub comm_bytes: u64,
    /// Modeled computation seconds (max over processors per iteration).
    pub compute_seconds: f64,
    /// Modeled communication seconds.
    pub comm_seconds: f64,
}

impl TwoDResult {
    /// Total modeled seconds.
    pub fn modeled_seconds(&self) -> f64 {
        self.compute_seconds + self.comm_seconds
    }

    /// Graph500 TEPS against modeled time.
    pub fn teps(&self, graph500_edges: u64) -> f64 {
        graph500_edges as f64 / self.modeled_seconds()
    }
}

/// 2D-partitioned BFS runner on an `r × r` grid (`p = r²`).
#[derive(Clone, Debug)]
pub struct TwoDBfs {
    /// Grid side √p.
    pub r: u32,
    /// Direction optimization on/off.
    pub direction_optimization: bool,
    /// Beamer α: switch bottom-up when frontier edges exceed `unexplored/α`.
    pub alpha: f64,
    /// Beamer β: switch top-down when the frontier shrinks below `n/β`.
    pub beta: f64,
    /// Machine model.
    pub cost: CostModel,
}

/// Per-processor block CSR: local source index (within part `j`) → local
/// destination indices (within part `i`).
struct Block {
    offsets: Vec<u32>,
    cols: Vec<u32>,
}

impl TwoDBfs {
    /// An `r × r`-grid 2D BFS with the Ray cost model.
    pub fn new(r: u32, direction_optimization: bool) -> Self {
        assert!(r >= 1);
        Self { r, direction_optimization, alpha: 14.0, beta: 24.0, cost: CostModel::ray() }
    }

    /// Runs from `source`.
    pub fn run(&self, graph: &Csr, source: u64) -> TwoDResult {
        let n = graph.num_vertices();
        let r = self.r as u64;
        let part_size = n.div_ceil(r).max(1);
        let part = |v: u64| (v / part_size) as usize;
        let local = |v: u64| (v % part_size) as u32;
        let global = |p: usize, l: u32| p as u64 * part_size + l as u64;

        // Build the r x r blocks: block[i][j] holds edges part(u) = j (as
        // rows) -> part(v) = i.
        let r_us = self.r as usize;
        let mut block_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); r_us * r_us];
        for u in 0..n {
            for &v in graph.neighbors(u) {
                block_edges[part(v) * r_us + part(u)].push((local(u), local(v)));
            }
        }
        let blocks: Vec<Block> = block_edges
            .into_iter()
            .map(|edges| {
                let mut offsets = vec![0u32; part_size as usize + 1];
                for &(s, _) in &edges {
                    offsets[s as usize + 1] += 1;
                }
                for k in 0..part_size as usize {
                    offsets[k + 1] += offsets[k];
                }
                let mut cursor = offsets[..part_size as usize].to_vec();
                let mut cols = vec![0u32; edges.len()];
                for &(s, d) in &edges {
                    let c = &mut cursor[s as usize];
                    cols[*c as usize] = d;
                    *c += 1;
                }
                Block { offsets, cols }
            })
            .collect();

        let net: &NetworkModel = &self.cost.network;
        let dev = &self.cost.device;
        let tree_rounds = NetworkModel::tree_depth(self.r.max(2)) as f64;
        let fanout = (r - 1).max(1);

        let mut depths = vec![UNREACHED; n as usize];
        depths[source as usize] = 0;
        // Frontier segments: local ids per part at the current level.
        let mut segments: Vec<Vec<u32>> = vec![Vec::new(); r_us];
        segments[part(source)].push(local(source));

        let mut iterations = 0u32;
        let mut backward_iterations = 0u32;
        let mut edges_examined = 0u64;
        let mut comm_bytes = 0u64;
        let mut compute_seconds = 0.0f64;
        let mut comm_seconds = 0.0f64;
        let mut unexplored = graph.num_edges();
        let mut backward = false;
        let mask_bytes = part_size.div_ceil(8);

        while segments.iter().any(|s| !s.is_empty()) {
            let depth = iterations;
            let frontier_len: usize = segments.iter().map(Vec::len).sum();
            let frontier_out: u64 = segments
                .iter()
                .enumerate()
                .flat_map(|(j, seg)| seg.iter().map(move |&l| graph.out_degree(global(j, l))))
                .sum();
            if self.direction_optimization && self.r > 1 {
                if !backward && frontier_out as f64 > unexplored as f64 / self.alpha {
                    backward = true;
                } else if backward && (frontier_len as f64) < n as f64 / self.beta {
                    backward = false;
                }
            }

            let mut proc_edges = vec![0u64; r_us * r_us];
            let mut next: Vec<Vec<u32>> = vec![Vec::new(); r_us];
            let mut col_bcast_time = 0.0f64;
            let mut row_reduce_time = 0.0f64;

            if backward && self.r > 1 {
                backward_iterations += 1;
                // Two masks move per part: frontier down columns, unvisited
                // across rows (both tree broadcasts of part-sized bitmaps).
                for _ in 0..2 * r_us {
                    comm_bytes += mask_bytes * fanout;
                }
                col_bcast_time = 2.0 * tree_rounds * net.p2p_time(mask_bytes, false);
                // Pull: for each unvisited vertex of part i, every row
                // processor (i, j) scans its own parent portion
                // *independently* — within an iteration they cannot see each
                // other's discoveries, so each one searches until it finds a
                // parent in its own part or exhausts it. This is the
                // up-to-√p-parents workload inflation of §II-B.
                for i in 0..r_us {
                    for lv in 0..part_size as u32 {
                        let v = global(i, lv);
                        if v >= n || depths[v as usize] != UNREACHED {
                            continue;
                        }
                        let mut found = false;
                        for j in 0..r_us {
                            // Block (i, j) stores by source; the symmetric
                            // block (j, i) keyed by part-i sources gives v's
                            // neighbors in part j.
                            let bt = &blocks[j * r_us + i];
                            let pe = &mut proc_edges[i * r_us + j];
                            let lo = bt.offsets[lv as usize] as usize;
                            let hi = bt.offsets[lv as usize + 1] as usize;
                            for &lu in &bt.cols[lo..hi] {
                                *pe += 1;
                                let u = global(j, lu);
                                if depths[u as usize] == depth {
                                    found = true;
                                    break;
                                }
                            }
                        }
                        if found {
                            depths[v as usize] = depth + 1;
                            next[i].push(lv);
                        }
                    }
                }
                // Row reduction of discoveries back to the diagonal.
                for _ in 0..r_us {
                    comm_bytes += mask_bytes * fanout;
                }
                row_reduce_time = tree_rounds * net.p2p_time(mask_bytes, false);
            } else {
                // Forward: broadcast each non-empty segment down its column.
                for (j, seg) in segments.iter().enumerate() {
                    if seg.is_empty() {
                        continue;
                    }
                    let bytes = 4 * seg.len() as u64;
                    if self.r > 1 {
                        comm_bytes += bytes * fanout;
                        col_bcast_time =
                            col_bcast_time.max(tree_rounds * net.p2p_time(bytes, false));
                    }
                    // Each processor (i, j) expands the segment on its block.
                    for i in 0..r_us {
                        let b = &blocks[i * r_us + j];
                        let pe = &mut proc_edges[i * r_us + j];
                        for &lu in seg {
                            let lo = b.offsets[lu as usize] as usize;
                            let hi = b.offsets[lu as usize + 1] as usize;
                            for &lv in &b.cols[lo..hi] {
                                *pe += 1;
                                let v = global(i, lv);
                                if depths[v as usize] == UNREACHED {
                                    depths[v as usize] = depth + 1;
                                    next[i].push(lv);
                                }
                            }
                        }
                    }
                }
                // Row reduce discovery bitmaps to the diagonal.
                if self.r > 1 {
                    for seg in next.iter().filter(|s| !s.is_empty()) {
                        let _ = seg;
                        comm_bytes += mask_bytes * fanout;
                    }
                    row_reduce_time = tree_rounds * net.p2p_time(mask_bytes, false);
                }
                for seg in &mut next {
                    seg.sort_unstable();
                    seg.dedup();
                }
            }

            edges_examined += proc_edges.iter().sum::<u64>();
            compute_seconds += proc_edges
                .iter()
                .map(|&e| dev.kernel_time(KernelKind::DynamicVisit, e))
                .fold(0.0, f64::max);
            comm_seconds += col_bcast_time + row_reduce_time;
            unexplored = unexplored.saturating_sub(frontier_out);
            segments = next;
            iterations += 1;
        }

        TwoDResult {
            depths,
            iterations,
            backward_iterations,
            edges_examined,
            comm_bytes,
            compute_seconds,
            comm_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcbfs_graph::reference::bfs_depths;
    use gcbfs_graph::rmat::RmatConfig;
    use gcbfs_graph::{builders, Csr};

    #[test]
    fn matches_reference_forward() {
        let g = Csr::from_edge_list(&builders::grid(6, 6));
        for r in [1, 2, 3] {
            let result = TwoDBfs::new(r, false).run(&g, 0);
            assert_eq!(result.depths, bfs_depths(&g, 0), "grid {r}x{r}");
        }
    }

    #[test]
    fn matches_reference_with_do_on_rmat() {
        let list = RmatConfig::graph500(9).generate();
        let g = Csr::from_edge_list(&list);
        let src = (0..list.num_vertices).find(|&v| g.out_degree(v) > 8).unwrap();
        for r in [2, 4] {
            let result = TwoDBfs::new(r, true).run(&g, src);
            assert_eq!(result.depths, bfs_depths(&g, src), "grid {r}x{r}");
            assert!(result.backward_iterations > 0);
        }
    }

    #[test]
    fn single_proc_has_no_comm() {
        let g = Csr::from_edge_list(&builders::cycle(16));
        let result = TwoDBfs::new(1, false).run(&g, 3);
        assert_eq!(result.comm_bytes, 0);
    }

    #[test]
    fn do_workload_inflates_with_grid_size() {
        // §II-B: 2D DOBFS tries to find up to sqrt(p) parents per vertex.
        let list = RmatConfig::graph500(10).generate();
        let g = Csr::from_edge_list(&list);
        let src = (0..list.num_vertices).find(|&v| g.out_degree(v) > 8).unwrap();
        let e2 = TwoDBfs::new(2, true).run(&g, src).edges_examined;
        let e6 = TwoDBfs::new(6, true).run(&g, src).edges_examined;
        assert!(e6 > e2, "workload must grow with the grid: {e6} vs {e2}");
    }

    #[test]
    fn comm_volume_grows_with_sqrt_p() {
        let list = RmatConfig::graph500(10).generate();
        let g = Csr::from_edge_list(&list);
        let src = (0..list.num_vertices).find(|&v| g.out_degree(v) > 8).unwrap();
        let c2 = TwoDBfs::new(2, false).run(&g, src).comm_bytes;
        let c8 = TwoDBfs::new(8, false).run(&g, src).comm_bytes;
        assert!(c8 > c2, "volume must grow with the grid: {c8} vs {c2}");
    }
}
