//! Conventional 1D-partitioned distributed BFS (§II-B).
//!
//! Vertices are modulo-partitioned over `p` processors; each processor owns
//! the adjacency rows of its vertices. Forward iterations push discoveries
//! point-to-point to the destination owner (8-byte global ids). In the
//! backward direction "each active (unvisited) vertex must know the status
//! of all its possible parents", which forces broadcasting the newly
//! visited vertices to every peer — the `8m`-bytes-total communication the
//! paper uses as its motivating negative example.
//!
//! The traversal itself executes for real; communication volumes are
//! measured from the actual updates and charged to the shared cost model
//! with every processor on its own rank (worst case: all traffic on the
//! inter-node fabric).

use crate::UNREACHED;
use gcbfs_cluster::cost::{CostModel, KernelKind, NetworkModel};
use gcbfs_graph::Csr;

/// Result of a 1D-partitioned run.
#[derive(Clone, Debug)]
pub struct OneDResult {
    /// Hop distances (`UNREACHED` if unreachable).
    pub depths: Vec<u32>,
    /// BFS levels processed.
    pub iterations: u32,
    /// Levels run in the backward direction.
    pub backward_iterations: u32,
    /// Edges examined across all processors.
    pub edges_examined: u64,
    /// Bytes crossing processor boundaries.
    pub comm_bytes: u64,
    /// Modeled computation seconds (max over processors, summed over
    /// iterations).
    pub compute_seconds: f64,
    /// Modeled communication seconds.
    pub comm_seconds: f64,
}

impl OneDResult {
    /// Total modeled seconds.
    pub fn modeled_seconds(&self) -> f64 {
        self.compute_seconds + self.comm_seconds
    }

    /// Graph500 TEPS against modeled time.
    pub fn teps(&self, graph500_edges: u64) -> f64 {
        graph500_edges as f64 / self.modeled_seconds()
    }
}

/// 1D-partitioned BFS runner.
#[derive(Clone, Copy, Debug)]
pub struct OneDBfs {
    /// Number of processors.
    pub p: u32,
    /// Direction optimization (costs the frontier broadcast).
    pub direction_optimization: bool,
    /// Beamer α: switch bottom-up when frontier edges exceed `unexplored/α`.
    pub alpha: f64,
    /// Beamer β: switch top-down when the frontier shrinks below `n/β`.
    pub beta: f64,
    /// Machine model.
    pub cost: CostModel,
}

impl OneDBfs {
    /// A `p`-processor 1D BFS with the Ray cost model.
    pub fn new(p: u32, direction_optimization: bool) -> Self {
        Self { p, direction_optimization, alpha: 14.0, beta: 24.0, cost: CostModel::ray() }
    }

    fn owner(&self, v: u64) -> u32 {
        (v % self.p as u64) as u32
    }

    /// Runs from `source`.
    pub fn run(&self, graph: &Csr, source: u64) -> OneDResult {
        assert!(self.p >= 1);
        let n = graph.num_vertices() as usize;
        let p = self.p as usize;
        let net: &NetworkModel = &self.cost.network;
        let dev = &self.cost.device;
        let mut depths = vec![UNREACHED; n];
        depths[source as usize] = 0;
        // Per-processor frontier of owned vertices at the current level.
        let mut frontiers: Vec<Vec<u64>> = vec![Vec::new(); p];
        frontiers[self.owner(source) as usize].push(source);

        let mut iterations = 0u32;
        let mut backward_iterations = 0u32;
        let mut edges_examined = 0u64;
        let mut comm_bytes = 0u64;
        let mut compute_seconds = 0.0f64;
        let mut comm_seconds = 0.0f64;
        let mut unexplored = graph.num_edges();
        let mut backward = false;

        while frontiers.iter().any(|f| !f.is_empty()) {
            let depth = iterations;
            let frontier_len: usize = frontiers.iter().map(Vec::len).sum();
            let frontier_out: u64 = frontiers.iter().flatten().map(|&u| graph.out_degree(u)).sum();
            if self.direction_optimization {
                if !backward && frontier_out as f64 > unexplored as f64 / self.alpha {
                    backward = true;
                } else if backward && (frontier_len as f64) < n as f64 / self.beta {
                    backward = false;
                }
            }

            let mut next: Vec<Vec<u64>> = vec![Vec::new(); p];
            let mut proc_edges = vec![0u64; p];
            let mut proc_send_bytes = vec![0u64; p];
            let mut proc_recv_bytes = vec![0u64; p];

            if backward {
                backward_iterations += 1;
                // Broadcast the newly visited vertices (this level's
                // frontier) from each owner to all peers: 8 bytes each,
                // p - 1 copies.
                for (owner, f) in frontiers.iter().enumerate() {
                    let bytes = 8 * f.len() as u64 * (p as u64 - 1);
                    proc_send_bytes[owner] += bytes;
                    comm_bytes += bytes;
                }
                // Pull: each processor scans its unvisited owned vertices.
                for v in 0..n as u64 {
                    if depths[v as usize] != UNREACHED {
                        continue;
                    }
                    let owner = self.owner(v) as usize;
                    for &u in graph.neighbors(v) {
                        proc_edges[owner] += 1;
                        if depths[u as usize] == depth {
                            depths[v as usize] = depth + 1;
                            next[owner].push(v);
                            break;
                        }
                    }
                }
            } else {
                // Push: discoveries for remote owners travel point-to-point.
                for (owner, f) in frontiers.iter().enumerate() {
                    for &u in f {
                        for &v in graph.neighbors(u) {
                            proc_edges[owner] += 1;
                            let v_owner = self.owner(v) as usize;
                            if v_owner == owner {
                                if depths[v as usize] == UNREACHED {
                                    depths[v as usize] = depth + 1;
                                    next[owner].push(v);
                                }
                            } else {
                                // 8-byte global id to the destination owner;
                                // the receiver applies it next superstep.
                                proc_send_bytes[owner] += 8;
                                proc_recv_bytes[v_owner] += 8;
                                comm_bytes += 8;
                                if depths[v as usize] == UNREACHED {
                                    depths[v as usize] = depth + 1;
                                    next[v_owner].push(v);
                                }
                            }
                        }
                    }
                }
            }

            edges_examined += proc_edges.iter().sum::<u64>();
            compute_seconds += proc_edges
                .iter()
                .map(|&e| dev.kernel_time(KernelKind::DynamicVisit, e))
                .fold(0.0, f64::max);
            let iter_comm = proc_send_bytes
                .iter()
                .zip(&proc_recv_bytes)
                .map(|(&s, &r)| net.p2p_time(s.max(r), false))
                .fold(0.0, f64::max);
            comm_seconds += iter_comm;
            unexplored = unexplored.saturating_sub(frontier_out);
            frontiers = next;
            iterations += 1;
        }

        OneDResult {
            depths,
            iterations,
            backward_iterations,
            edges_examined,
            comm_bytes,
            compute_seconds,
            comm_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcbfs_graph::reference::bfs_depths;
    use gcbfs_graph::rmat::RmatConfig;
    use gcbfs_graph::{builders, Csr};

    #[test]
    fn matches_reference() {
        let g = Csr::from_edge_list(&builders::grid(6, 7));
        for p in [1, 2, 5] {
            let r = OneDBfs::new(p, false).run(&g, 0);
            assert_eq!(r.depths, bfs_depths(&g, 0), "p = {p}");
        }
    }

    #[test]
    fn dobfs_matches_reference_on_rmat() {
        let list = RmatConfig::graph500(9).generate();
        let g = Csr::from_edge_list(&list);
        let src = (0..list.num_vertices).find(|&v| g.out_degree(v) > 8).unwrap();
        let r = OneDBfs::new(4, true).run(&g, src);
        assert_eq!(r.depths, bfs_depths(&g, src));
        assert!(r.backward_iterations > 0);
    }

    #[test]
    fn single_proc_has_no_comm() {
        let g = Csr::from_edge_list(&builders::cycle(20));
        let r = OneDBfs::new(1, false).run(&g, 0);
        assert_eq!(r.comm_bytes, 0);
        assert_eq!(r.comm_seconds, 0.0);
    }

    #[test]
    fn backward_broadcast_volume_scales_with_p() {
        // The §II-B problem: 1D DOBFS broadcast volume grows linearly in p.
        let list = RmatConfig::graph500(10).generate();
        let g = Csr::from_edge_list(&list);
        let src = (0..list.num_vertices).find(|&v| g.out_degree(v) > 8).unwrap();
        let r4 = OneDBfs::new(4, true).run(&g, src);
        let r16 = OneDBfs::new(16, true).run(&g, src);
        assert!(
            r16.comm_bytes > 2 * r4.comm_bytes,
            "expected ~4x growth: {} vs {}",
            r16.comm_bytes,
            r4.comm_bytes
        );
    }

    #[test]
    fn forward_volume_bounded_by_8m() {
        let list = RmatConfig::graph500(9).generate();
        let g = Csr::from_edge_list(&list);
        let src = (0..list.num_vertices).find(|&v| g.out_degree(v) > 8).unwrap();
        let r = OneDBfs::new(8, false).run(&g, src);
        assert!(r.comm_bytes <= 8 * g.num_edges());
        assert!(r.comm_bytes > 0);
    }
}
