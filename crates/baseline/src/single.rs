//! Single-processor BFS and direction-optimizing BFS (Beamer et al.).
//!
//! This is the algorithm of reference [4] in the paper: start top-down
//! (forward push), switch to bottom-up (backward pull) when the frontier's
//! out-edge count exceeds a fraction of the unexplored edges, and switch
//! back when the frontier shrinks again. The measured edges-examined count
//! of a DOBFS run is the `m'` that bounds the distributed implementation's
//! workload in §IV-B.

use crate::UNREACHED;
use gcbfs_cluster::cost::{DeviceModel, KernelKind};
use gcbfs_graph::Csr;

/// Result of a single-processor run.
#[derive(Clone, Debug)]
pub struct SingleResult {
    /// Hop distances (`UNREACHED` if unreachable).
    pub depths: Vec<u32>,
    /// Iterations (BFS levels processed).
    pub iterations: u32,
    /// Iterations run in the backward direction.
    pub backward_iterations: u32,
    /// Edges examined — for plain BFS every out-edge of every reached
    /// vertex; for DOBFS the (much smaller) `m'`.
    pub edges_examined: u64,
    /// Modeled single-device time (visit kernels only).
    pub modeled_seconds: f64,
}

impl SingleResult {
    /// Graph500 TEPS against modeled time.
    pub fn teps(&self, graph500_edges: u64) -> f64 {
        graph500_edges as f64 / self.modeled_seconds
    }
}

/// Single-processor BFS runner.
#[derive(Clone, Copy, Debug)]
pub struct SingleNodeBfs {
    /// Direction optimization on/off.
    pub direction_optimization: bool,
    /// Beamer's α: switch to bottom-up when
    /// `frontier_out_edges > unexplored_edges / alpha`.
    pub alpha: f64,
    /// Beamer's β: switch back to top-down when
    /// `frontier_len < n / beta`.
    pub beta: f64,
    /// Device model for modeled time.
    pub device: DeviceModel,
}

impl SingleNodeBfs {
    /// Plain BFS (no direction switching).
    pub fn plain() -> Self {
        Self { direction_optimization: false, alpha: 14.0, beta: 24.0, device: DeviceModel::p100() }
    }

    /// Direction-optimizing BFS with the standard α = 14, β = 24.
    pub fn direction_optimizing() -> Self {
        Self { direction_optimization: true, ..Self::plain() }
    }

    /// Runs from `source`.
    pub fn run(&self, graph: &Csr, source: u64) -> SingleResult {
        let n = graph.num_vertices() as usize;
        let m = graph.num_edges();
        let mut depths = vec![UNREACHED; n];
        depths[source as usize] = 0;
        let mut frontier: Vec<u64> = vec![source];
        let mut edges_examined = 0u64;
        let mut unexplored = m;
        let mut iterations = 0u32;
        let mut backward_iterations = 0u32;
        let mut backward = false;
        let mut modeled = 0.0f64;

        while !frontier.is_empty() {
            let depth = iterations;
            let frontier_out: u64 = frontier.iter().map(|&u| graph.out_degree(u)).sum();
            if self.direction_optimization {
                if !backward && frontier_out as f64 > unexplored as f64 / self.alpha {
                    backward = true;
                } else if backward && (frontier.len() as f64) < n as f64 / self.beta {
                    backward = false;
                }
            }
            let mut next = Vec::new();
            let examined_before = edges_examined;
            if backward {
                backward_iterations += 1;
                for v in 0..n as u64 {
                    if depths[v as usize] != UNREACHED {
                        continue;
                    }
                    for &u in graph.neighbors(v) {
                        edges_examined += 1;
                        if depths[u as usize] == depth {
                            depths[v as usize] = depth + 1;
                            next.push(v);
                            break;
                        }
                    }
                }
            } else {
                for &u in &frontier {
                    for &v in graph.neighbors(u) {
                        edges_examined += 1;
                        if depths[v as usize] == UNREACHED {
                            depths[v as usize] = depth + 1;
                            next.push(v);
                        }
                    }
                }
            }
            unexplored = unexplored.saturating_sub(frontier_out);
            modeled +=
                self.device.kernel_time(KernelKind::DynamicVisit, edges_examined - examined_before)
                    + self.device.kernel_time(KernelKind::Previsit, frontier.len() as u64);
            frontier = next;
            iterations += 1;
        }

        SingleResult {
            depths,
            iterations,
            backward_iterations,
            edges_examined,
            modeled_seconds: modeled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcbfs_graph::reference::bfs_depths;
    use gcbfs_graph::rmat::RmatConfig;
    use gcbfs_graph::{builders, Csr};

    #[test]
    fn plain_matches_reference() {
        let g = Csr::from_edge_list(&builders::grid(5, 6));
        let r = SingleNodeBfs::plain().run(&g, 3);
        assert_eq!(r.depths, bfs_depths(&g, 3));
        assert_eq!(r.backward_iterations, 0);
    }

    #[test]
    fn dobfs_matches_reference_on_rmat() {
        let list = RmatConfig::graph500(9).generate();
        let g = Csr::from_edge_list(&list);
        let src = (0..list.num_vertices).find(|&v| g.out_degree(v) > 4).unwrap();
        let plain = SingleNodeBfs::plain().run(&g, src);
        let dobfs = SingleNodeBfs::direction_optimizing().run(&g, src);
        assert_eq!(plain.depths, bfs_depths(&g, src));
        assert_eq!(dobfs.depths, plain.depths);
    }

    #[test]
    fn dobfs_examines_fewer_edges_on_rmat() {
        // The headline of Beamer et al.: DO slashes the workload on
        // small-diameter scale-free graphs.
        let list = RmatConfig::graph500(11).generate();
        let g = Csr::from_edge_list(&list);
        let src = (0..list.num_vertices).find(|&v| g.out_degree(v) > 8).unwrap();
        let plain = SingleNodeBfs::plain().run(&g, src);
        let dobfs = SingleNodeBfs::direction_optimizing().run(&g, src);
        assert!(dobfs.backward_iterations > 0, "DO never engaged");
        assert!(
            (dobfs.edges_examined as f64) < 0.7 * plain.edges_examined as f64,
            "DO saved too little: {} vs {}",
            dobfs.edges_examined,
            plain.edges_examined
        );
        assert!(dobfs.modeled_seconds < plain.modeled_seconds);
    }

    #[test]
    fn long_path_mostly_forward() {
        // A path's frontier never gets heavy: DO may only engage at the
        // very end, once `unexplored` has collapsed; results stay correct.
        let g = Csr::from_edge_list(&builders::path(500));
        let r = SingleNodeBfs::direction_optimizing().run(&g, 0);
        assert!(r.backward_iterations < 20, "{} backward iterations", r.backward_iterations);
        assert_eq!(r.iterations, 500);
        assert_eq!(r.depths, bfs_depths(&g, 0));
    }

    #[test]
    fn isolated_source() {
        let mut list = builders::path(3);
        list.num_vertices = 4;
        let g = Csr::from_edge_list(&list);
        let r = SingleNodeBfs::plain().run(&g, 3);
        assert_eq!(r.iterations, 1);
        assert_eq!(r.edges_examined, 0);
        assert_eq!(r.depths[3], 0);
        assert!(r.depths[..3].iter().all(|&d| d == UNREACHED));
    }
}
