//! Minimal property-testing harness exposing the subset of the `proptest`
//! API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` cannot be vendored. This shim keeps the test sources
//! unchanged: the `proptest!` macro, `ProptestConfig::with_cases`,
//! strategies for ranges / tuples / `any::<T>()` /
//! `proptest::collection::vec`, and the `prop_map` / `prop_flat_map`
//! combinators. Differences from upstream: no shrinking (a failing case
//! reports its values via the panic message and the deterministic per-test
//! seed reproduces it), and value generation is a simple seeded PRNG
//! rather than proptest's bias-aware strategies.

use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (SplitMix64). Each `proptest!` test derives its
/// seed from the test name, so failures reproduce across runs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a string (the test name).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, n)`; `n = 0` yields 0.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Test-runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A value-generation strategy. `generate` draws one value; combinators
/// mirror proptest's `prop_map` / `prop_flat_map`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy generating one fixed value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let draw = (rng.next_u64() as u128 % span) as $t;
                self.start + draw
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                let draw = (rng.next_u64() as u128 % span) as $t;
                self.start() + draw
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ );)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Types with a default "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    /// Arbitrary *finite* f64, spanning magnitudes via a random exponent.
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mag = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.below(61) as i32) - 30;
        mag * 2f64.powi(exp)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification: exact or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy generating `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: vectors of `element` with length in
    /// `size` (a `usize`, `Range<usize>`, or `RangeInclusive<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Property assertion: like `assert!` (the shim does not shrink, so plain
/// panics carry the failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion: like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion: like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests. Supports the upstream surface this workspace
/// uses: an optional `#![proptest_config(...)]` header and `fn name(arg in
/// strategy, ...) { body }` items (each becomes a `#[test]` running
/// `config.cases` deterministic random cases).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

/// The proptest prelude: glob-import for tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Just, ProptestConfig,
        Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5, z in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((-2.0..2.0).contains(&z));
        }

        #[test]
        fn tuples_and_vecs(pair in (0u32..10, 0u32..10),
                           v in crate::collection::vec(0u64..100, 2..6)) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn combinators_compose(n in (1u64..8).prop_flat_map(|n| (Just(n), 0..n)) ) {
            let (bound, below) = n;
            prop_assert!(below < bound);
        }
    }

    #[test]
    fn deterministic_generation() {
        let s = (0u64..1000, crate::collection::vec(any::<bool>(), 3));
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
