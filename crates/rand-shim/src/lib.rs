//! Deterministic drop-in for the subset of the `rand` 0.9 API this
//! workspace uses (`StdRng::seed_from_u64`, `Rng::random`,
//! `Rng::random_range`).
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be vendored. The workspace only ever uses *seeded*
//! generators (every graph generator takes an explicit seed and the same
//! seed must reproduce the same graph), so a small, fast, well-understood
//! PRNG is sufficient: `StdRng` here is SplitMix64 feeding a
//! xoshiro256**-style scramble. The stream differs from upstream
//! `StdRng` (ChaCha12) — generated graphs differ from ones generated with
//! the real crate, but all tests compare against references computed on
//! the *same* generated graph, so determinism, not the exact stream, is
//! the contract.

/// Core trait: a source of random `u64` words.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding trait mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a value of `Self` from raw random bits (the shim's stand-in
/// for `rand::distr::StandardUniform`).
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types usable as `random_range` bounds (integer uniform sampling).
pub trait UniformInt: Copy {
    /// Uniform draw from `[lo, hi)`; `hi > lo` required.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128);
                debug_assert!(span > 0, "random_range requires a non-empty range");
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a half-open integer range.
    fn random_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Draws a bool that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: SplitMix64-seeded
    /// xoshiro256** (public-domain construction by Blackman & Vigna).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same construction in the shim.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let x = rng.random_range(2u64..9);
            assert!((2..9).contains(&x));
            seen[x as usize] = true;
        }
        assert!(seen[2..9].iter().all(|&s| s), "all values of a small range appear");
    }
}
