//! Criterion end-to-end comparison: degree-separated distributed BFS vs
//! the single-node and partitioned baselines on the same graph
//! (real wall-clock of the Rust execution).

use criterion::{criterion_group, criterion_main, Criterion};
use gcbfs_baseline::{OneDBfs, SingleNodeBfs, TwoDBfs};
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_graph::rmat::RmatConfig;
use gcbfs_graph::Csr;
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let graph = RmatConfig::graph500(13).generate();
    let csr = Csr::from_edge_list(&graph);
    let degrees = graph.out_degrees();
    let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;

    let mut g = c.benchmark_group("end_to_end_scale13");
    g.sample_size(10);
    g.bench_function("single_bfs", |b| {
        b.iter(|| black_box(SingleNodeBfs::plain().run(&csr, source)))
    });
    g.bench_function("single_dobfs", |b| {
        b.iter(|| black_box(SingleNodeBfs::direction_optimizing().run(&csr, source)))
    });
    g.bench_function("oned_dobfs_4proc", |b| {
        b.iter(|| black_box(OneDBfs::new(4, true).run(&csr, source)))
    });
    g.bench_function("twod_dobfs_2x2", |b| {
        b.iter(|| black_box(TwoDBfs::new(2, true).run(&csr, source)))
    });
    let config = BfsConfig::new(16);
    let dist = DistributedGraph::build(&graph, Topology::new(2, 2), &config).unwrap();
    g.bench_function("degree_separated_dobfs_4gpus", |b| {
        b.iter(|| black_box(dist.run(source, &config).unwrap()))
    });
    g.bench_function("degree_separated_bfs_tree_4gpus", |b| {
        b.iter(|| black_box(dist.run_with_parents(source, &config).unwrap()))
    });
    let pr = gcbfs_core::pagerank::PageRankConfig {
        max_iterations: 10,
        tolerance: 0.0,
        ..Default::default()
    };
    g.bench_function("pagerank_10iters_4gpus", |b| b.iter(|| black_box(dist.pagerank(&pr))));
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
