//! Criterion microbenchmarks: the communication substrate (real
//! wall-clock of the simulated collectives and exchange).

use criterion::{criterion_group, criterion_main, Criterion};
use gcbfs_cluster::collectives::allreduce_or;
use gcbfs_cluster::cost::CostModel;
use gcbfs_cluster::topology::{GpuId, Topology};
use gcbfs_core::comm::exchange_normals;
use std::hint::black_box;

fn bench_allreduce(c: &mut Criterion) {
    let cost = CostModel::ray();
    let mut g = c.benchmark_group("allreduce");
    for words in [1024usize, 16 * 1024] {
        let topo = Topology::new(8, 2);
        let masks: Vec<Vec<u64>> =
            (0..16).map(|i| (0..words as u64).map(|w| w.wrapping_mul(i + 1)).collect()).collect();
        g.bench_function(format!("or_16gpus_{}kB", words * 8 / 1024), |b| {
            b.iter(|| black_box(allreduce_or(topo, &cost, &masks, true)))
        });
    }
    g.finish();
}

fn bench_exchange(c: &mut Criterion) {
    let cost = CostModel::ray();
    let topo = Topology::new(4, 4);
    // 16 GPUs, each sending 10k updates round-robin.
    let sends: Vec<Vec<(GpuId, u32)>> = (0..16)
        .map(|g| {
            (0..10_000u32)
                .map(|i| {
                    let dest = topo.unflat((g + 1 + i as usize) % 16);
                    (dest, i % 4096)
                })
                .collect()
        })
        .collect();
    let mut grp = c.benchmark_group("exchange");
    grp.sample_size(20);
    for (name, l, u) in
        [("plain", false, false), ("local_a2a", true, false), ("a2a_uniquify", true, true)]
    {
        grp.bench_function(name, |b| {
            b.iter(|| black_box(exchange_normals(&topo, &cost, sends.clone(), l, u)))
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_allreduce, bench_exchange);
criterion_main!(benches);
