//! Criterion benchmarks for the algorithm suite built on the
//! degree-separated distribution (real wall-clock of the simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_core::pagerank::PageRankConfig;
use gcbfs_core::sssp::DistributedSssp;
use gcbfs_graph::rmat::RmatConfig;
use gcbfs_graph::weighted::WeightedEdgeList;
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let graph = RmatConfig::graph500(12).generate();
    let degrees = graph.out_degrees();
    let config = BfsConfig::new(16);
    let topo = Topology::new(2, 2);
    let dist = DistributedGraph::build(&graph, topo, &config).unwrap();
    let sources: Vec<u64> =
        (0..graph.num_vertices).filter(|&v| degrees[v as usize] > 0).take(32).collect();
    let hub = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;

    let mut g = c.benchmark_group("algorithms_scale12_4gpus");
    g.sample_size(10);
    g.bench_function("msbfs_32_sources", |b| {
        b.iter(|| black_box(dist.run_multi_source(&sources, &config).unwrap()))
    });
    g.bench_function("async_bfs", |b| b.iter(|| black_box(dist.run_async(hub, &config).unwrap())));
    g.bench_function("connected_components", |b| {
        b.iter(|| black_box(dist.connected_components(&config)))
    });
    let pr = PageRankConfig { max_iterations: 10, tolerance: 0.0, ..Default::default() };
    g.bench_function("pagerank_10_iters", |b| b.iter(|| black_box(dist.pagerank(&pr))));
    g.bench_function("betweenness_4_sources", |b| {
        b.iter(|| black_box(dist.betweenness(&sources[..4], &config).unwrap()))
    });
    let weighted = WeightedEdgeList::from_topology(&graph, 16, 7);
    let wdist = DistributedSssp::build(&weighted, topo, &config);
    g.bench_function("sssp_bellman_ford", |b| {
        b.iter(|| black_box(wdist.run(hub, &config).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
