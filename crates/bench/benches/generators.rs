//! Criterion microbenchmarks: graph generation and construction
//! (real wall-clock of the Rust substrate, not modeled time).

use criterion::{criterion_group, criterion_main, Criterion};
use gcbfs_graph::rmat::RmatConfig;
use gcbfs_graph::{Csr, PowerLawConfig, WebGraphConfig};
use std::hint::black_box;

fn bench_rmat(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    g.sample_size(10);
    g.bench_function("rmat_scale14_generate", |b| {
        b.iter(|| black_box(RmatConfig::graph500(14).generate()))
    });
    g.bench_function("powerlaw_scale14_generate", |b| {
        b.iter(|| black_box(PowerLawConfig::friendster_like(14).generate()))
    });
    g.bench_function("webgraph_core12_generate", |b| {
        b.iter(|| black_box(WebGraphConfig::wdc_like(12).generate()))
    });
    let list = RmatConfig::graph500(14).generate();
    g.bench_function("csr_build_scale14", |b| b.iter(|| black_box(Csr::from_edge_list(&list))));
    g.bench_function("degrees_scale14", |b| b.iter(|| black_box(list.out_degrees())));
    g.finish();
}

criterion_group!(benches, bench_rmat);
criterion_main!(benches);
