//! Criterion microbenchmarks: local traversal kernels and the distributed
//! build pipeline (real wall-clock).

use criterion::{criterion_group, criterion_main, Criterion};
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::distributor::distribute;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_core::masks::DelegateMask;
use gcbfs_core::separation::Separation;
use gcbfs_graph::rmat::RmatConfig;
use std::hint::black_box;

fn bench_build_pipeline(c: &mut Criterion) {
    let graph = RmatConfig::graph500(13).generate();
    let degrees = graph.out_degrees();
    let topo = Topology::new(2, 2);
    let mut g = c.benchmark_group("build");
    g.sample_size(10);
    g.bench_function("separation_scale13", |b| {
        b.iter(|| black_box(Separation::from_degrees(&degrees, 16)))
    });
    let sep = Separation::from_degrees(&degrees, 16);
    g.bench_function("distribute_scale13_4gpus", |b| {
        b.iter(|| black_box(distribute(&graph, &sep, &degrees, &topo)))
    });
    let config = BfsConfig::new(16);
    g.bench_function("full_build_scale13_4gpus", |b| {
        b.iter(|| black_box(DistributedGraph::build(&graph, topo, &config).unwrap()))
    });
    g.finish();
}

fn bench_masks(c: &mut Criterion) {
    let mut g = c.benchmark_group("masks");
    let mut a = DelegateMask::new(1 << 20);
    let mut bmask = DelegateMask::new(1 << 20);
    for i in (0..(1 << 20)).step_by(17) {
        a.set(i);
    }
    for i in (0..(1 << 20)).step_by(13) {
        bmask.set(i);
    }
    g.bench_function("or_assign_1m_bits", |b| {
        b.iter(|| {
            let mut x = a.clone();
            x.or_assign(&bmask);
            black_box(x)
        })
    });
    g.bench_function("new_bits_1m_bits", |b| b.iter(|| black_box(bmask.new_bits(&a).count())));
    g.finish();
}

fn bench_iteration(c: &mut Criterion) {
    // One full BFS run amortizes kernel costs across iterations; this
    // benchmarks the hot path end to end per run (wall-clock, 4 GPUs).
    let graph = RmatConfig::graph500(13).generate();
    let degrees = graph.out_degrees();
    let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
    let topo = Topology::new(2, 2);
    let mut g = c.benchmark_group("traversal");
    g.sample_size(10);
    for (name, use_do) in [("bfs_scale13_4gpus", false), ("dobfs_scale13_4gpus", true)] {
        let config = BfsConfig::new(16).with_direction_optimization(use_do);
        let dist = DistributedGraph::build(&graph, topo, &config).unwrap();
        g.bench_function(name, |b| b.iter(|| black_box(dist.run(source, &config).unwrap())));
    }
    g.finish();
}

criterion_group!(benches, bench_build_pipeline, bench_masks, bench_iteration);
criterion_main!(benches);
