#![warn(missing_docs)]

//! Shared harness for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index). They share this harness:
//! deterministic source selection, the geometric-mean-over-sources
//! protocol of §VI-A3, scaled-down defaults (overridable via environment
//! variables), and plain-text table output.
//!
//! Environment knobs (all optional):
//!
//! * `GCBFS_SOURCES` — BFS sources per data point (default 8; paper: 140);
//! * `GCBFS_SCALE` — base RMAT scale override for the per-figure defaults;
//! * `GCBFS_MAX_GPUS` — cap on simulated GPUs in scaling sweeps.

use gcbfs_cluster::timing::PhaseTimes;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_core::stats::geometric_mean;
use gcbfs_graph::permute::splitmix64;
use gcbfs_graph::EdgeList;

/// Reads an environment knob with a default.
pub fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The paper's per-GPU RMAT scale on Ray.
pub const PAPER_PER_GPU_SCALE: u32 = 26;

/// Workload scale-down factor for a run whose per-GPU graph is
/// `per_gpu_scale`: feed this to `CostModel::ray_scaled` and multiply
/// resulting TEPS by it to obtain Ray-equivalent throughput (see that
/// method's docs for why this preserves the paper's shapes).
pub fn ray_factor(per_gpu_scale: u32) -> f64 {
    2f64.powi(PAPER_PER_GPU_SCALE.saturating_sub(per_gpu_scale) as i32)
}

/// Per-GPU scale of a run: total scale minus log2 of the GPU count.
pub fn per_gpu_scale(total_scale: u32, gpus: u32) -> u32 {
    total_scale.saturating_sub(gpus.ilog2())
}

/// Number of sources per data point (`GCBFS_SOURCES`, default 8).
pub fn num_sources() -> usize {
    env_or("GCBFS_SOURCES", 8) as usize
}

/// Deterministically picks `count` distinct non-isolated source vertices,
/// mimicking the paper's "randomly generated sources; only the ones that
/// executed for more than 1 iteration are considered".
pub fn pick_sources(graph: &EdgeList, count: usize, seed: u64) -> Vec<u64> {
    let degrees = graph.out_degrees();
    let n = graph.num_vertices;
    let mut sources = Vec::with_capacity(count);
    let mut state = seed;
    let mut attempts = 0u64;
    while sources.len() < count && attempts < n * 4 + 1000 {
        state = splitmix64(state);
        let v = state % n;
        attempts += 1;
        if degrees[v as usize] > 0 && !sources.contains(&v) {
            sources.push(v);
        }
    }
    assert!(!sources.is_empty(), "no connected source found");
    sources
}

/// Aggregated outcome of running BFS from several sources.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Geometric-mean GTEPS over sources (modeled time).
    pub gteps: f64,
    /// Mean modeled elapsed milliseconds.
    pub elapsed_ms: f64,
    /// Mean phase totals (milliseconds) — the stacked bars of Figs. 8/10.
    pub phases_ms: PhaseTimes,
    /// Mean iteration count `S`.
    pub iterations: f64,
    /// Mean iterations with a mask reduction `S'`.
    pub mask_reductions: f64,
    /// Mean wall-clock seconds per run of the Rust simulation itself.
    pub wall_seconds: f64,
}

/// Runs BFS from each source and aggregates per the paper's protocol.
pub fn run_many(
    dist: &DistributedGraph,
    config: &BfsConfig,
    sources: &[u64],
    graph500_edges: u64,
) -> RunSummary {
    assert!(!sources.is_empty());
    let mut rates = Vec::with_capacity(sources.len());
    let mut elapsed = 0.0;
    let mut phases = PhaseTimes::zero();
    let mut iterations = 0.0;
    let mut masks = 0.0;
    let mut wall = 0.0;
    let mut used = 0usize;
    for &s in sources {
        let r = dist.run(s, config).expect("valid source");
        // Paper: only runs with more than one iteration count.
        if r.iterations() <= 1 {
            continue;
        }
        rates.push(r.gteps(graph500_edges));
        elapsed += r.modeled_seconds() * 1e3;
        phases = phases.combine(&r.stats.phase_totals());
        iterations += r.iterations() as f64;
        masks += r.stats.mask_reductions() as f64;
        wall += r.stats.wall_seconds;
        used += 1;
    }
    assert!(used > 0, "every source finished in one iteration; pick better sources");
    let k = used as f64;
    RunSummary {
        gteps: geometric_mean(&rates),
        elapsed_ms: elapsed / k,
        phases_ms: PhaseTimes {
            computation: phases.computation * 1e3 / k,
            local_comm: phases.local_comm * 1e3 / k,
            remote_normal: phases.remote_normal * 1e3 / k,
            remote_delegate: phases.remote_delegate * 1e3 / k,
        },
        iterations: iterations / k,
        mask_reductions: masks / k,
        wall_seconds: wall / k,
    }
}

/// Prints a fixed-width table: header row then data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line: Vec<String> = headers.iter().zip(&widths).map(|(h, w)| format!("{h:>w$}")).collect();
    println!("{}", line.join("  "));
    for row in rows {
        let line: Vec<String> = row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a percentage with 2 decimals.
pub fn pct(x: f64) -> String {
    format!("{x:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcbfs_cluster::topology::Topology;
    use gcbfs_graph::rmat::RmatConfig;

    #[test]
    fn sources_are_connected_and_distinct() {
        let g = RmatConfig::graph500(8).generate();
        let s = pick_sources(&g, 5, 42);
        assert_eq!(s.len(), 5);
        let degrees = g.out_degrees();
        assert!(s.iter().all(|&v| degrees[v as usize] > 0));
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
    }

    #[test]
    fn run_many_aggregates() {
        let cfg = RmatConfig::graph500(8);
        let g = cfg.generate();
        let config = BfsConfig::new(8);
        let dist = DistributedGraph::build(&g, Topology::new(2, 1), &config).unwrap();
        let sources = pick_sources(&g, 4, 7);
        let summary = run_many(&dist, &config, &sources, cfg.graph500_edges());
        assert!(summary.gteps > 0.0);
        assert!(summary.iterations > 1.0);
        assert!(summary.elapsed_ms > 0.0);
    }

    #[test]
    fn env_default() {
        assert_eq!(env_or("GCBFS_DOES_NOT_EXIST_XYZ", 17), 17);
    }
}
