//! Figure 8: effect of the option set {DO, L, U, IR, BR} on the runtime
//! breakdown, for `*×2×2` and `*×1×4` hardware configurations
//! (paper: RMAT scale 32 with TH = 128 on 64 GPUs; default here: scale 16
//! with TH = 32 on 16 GPUs).
//!
//! Expected shape (paper): DO cuts computation ~3×; L and U add a little
//! local time without much global benefit (TH is low, few duplicates);
//! BR beats IR at this GPU count.

use gcbfs_bench::{
    env_or, f2, num_sources, per_gpu_scale, pick_sources, print_table, ray_factor, run_many,
};
use gcbfs_cluster::cost::CostModel;
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_graph::rmat::RmatConfig;

fn main() {
    let scale = env_or("GCBFS_SCALE", 17) as u32;
    // The paper used TH 128 for its scale-32 graph; the equivalent
    // plateau threshold for our actual scale-17 degree distribution comes
    // from the same suggested-TH rule (Fig. 6/7 calibration).
    let th = env_or("GCBFS_TH", BfsConfig::suggested_rmat_threshold(scale + 13).max(8));
    let cfg = RmatConfig::graph500(scale);
    println!(
        "Fig. 8 reproduction: RMAT scale {scale}, TH {th}, 64 GPUs \
         (paper: scale 32, TH 128, 64 GPUs)"
    );
    let graph = cfg.generate();
    let sources = pick_sources(&graph, num_sources(), 0xf18);
    let cost = CostModel::ray_scaled(ray_factor(per_gpu_scale(scale, 64)));

    // Option sets in the paper's presentation order.
    let base = || BfsConfig::new(th).with_cost_model(cost);
    let options: Vec<(&str, BfsConfig)> = vec![
        ("BFS+BR", base().with_direction_optimization(false)),
        ("DO+BR", base()),
        ("DO+L+BR", base().with_local_all2all(true)),
        ("DO+L+U+BR", base().with_local_all2all(true).with_uniquify(true)),
        ("DO+IR", base().with_blocking_reduce(false)),
        (
            "DO+L+U+IR",
            base().with_local_all2all(true).with_uniquify(true).with_blocking_reduce(false),
        ),
    ];

    for (label, topo) in [
        ("16x2x2", Topology::from_paper_notation(16, 2, 2)),
        ("16x1x4", Topology::from_paper_notation(16, 1, 4)),
    ] {
        let mut rows = Vec::new();
        for (name, config) in &options {
            let dist = DistributedGraph::build(&graph, topo, config).expect("build");
            let s = run_many(&dist, config, &sources, cfg.graph500_edges());
            rows.push(vec![
                name.to_string(),
                f2(s.phases_ms.computation),
                f2(s.phases_ms.local_comm),
                f2(s.phases_ms.remote_normal),
                f2(s.phases_ms.remote_delegate),
                f2(s.elapsed_ms),
            ]);
        }
        print_table(
            &format!("Fig. 8 — runtime breakdown by option set, {label} (ms, modeled)"),
            &[
                "options",
                "Computation",
                "Local Comm",
                "Remote Normal",
                "Remote Delegate",
                "elapsed",
            ],
            &rows,
        );
    }
    println!(
        "\nShape check: DO cuts Computation ~3x vs BFS; L/U shift small amounts into \
         Local Comm; BR keeps Remote Delegate lower than IR at this rank count; \
         the sum of parts exceeds elapsed because phases overlap."
    );
}
