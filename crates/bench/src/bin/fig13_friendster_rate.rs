//! Figure 13: traversal rate vs degree threshold on the Friendster-like
//! graph with 1×2×2 GPUs (paper: the real Friendster on 4 P100s).
//!
//! Expected shape (paper): a wide range of TH values ([32, 91] there)
//! gives close-to-best performance; DOBFS above BFS.

use gcbfs_bench::{env_or, f2, num_sources, pick_sources, print_table, run_many};
use gcbfs_cluster::cost::CostModel;
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_graph::PowerLawConfig;

fn main() {
    let scale = env_or("GCBFS_SCALE", 16) as u32;
    println!(
        "Fig. 13 reproduction: Friendster-like graph, 1x2x2 GPUs (paper: Friendster on 4 GPUs)"
    );
    let graph = PowerLawConfig::friendster_like(scale).generate();
    // Graph500-style TEPS denominator: undirected edge count.
    let g500_edges = graph.num_edges() / 2;
    let topo = Topology::from_paper_notation(1, 2, 2);
    let sources = pick_sources(&graph, num_sources(), 0xf13);
    // Friendster on 4 GPUs is ~1.3 G directed edges per GPU; ours is the
    // same graph shrunk, so scale the machine by the edge ratio.
    let paper_edges_per_gpu = 10.34e9 / 4.0; // doubled Friendster edges / 4
    let factor = (paper_edges_per_gpu / (graph.num_edges() as f64 / 4.0)).max(1.0);
    let cost = CostModel::ray_scaled(factor);

    let mut rows = Vec::new();
    for th in [8u64, 16, 32, 64, 128, 256] {
        let bfs_cfg = BfsConfig::new(th).with_direction_optimization(false).with_cost_model(cost);
        let do_cfg = BfsConfig::new(th).with_cost_model(cost);
        let dist = DistributedGraph::build(&graph, topo, &bfs_cfg).expect("build");
        let bfs = run_many(&dist, &bfs_cfg, &sources, g500_edges);
        let dobfs = run_many(&dist, &do_cfg, &sources, g500_edges);
        rows.push(vec![th.to_string(), f2(bfs.gteps * factor), f2(dobfs.gteps * factor)]);
    }
    print_table(
        "Fig. 13 — Ray-equivalent GTEPS vs TH (Friendster-like, 4 GPUs)",
        &["TH", "BFS GTEPS", "DOBFS GTEPS"],
        &rows,
    );
    println!("\nShape check: wide near-optimal TH band; DOBFS above BFS.");
}
