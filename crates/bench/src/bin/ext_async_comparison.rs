//! Extension experiment: BSP versus asynchronous execution (§VI-D's
//! closing argument).
//!
//! The paper: BSP suits dense, few-iteration traversals; "for graph
//! processing that yields insufficient local workloads over many
//! iterations ... the per-iteration overhead may well make such
//! implementations unscalable. Asynchronous graph frameworks, such as
//! HavoqGT and Groute, may be more suitable."
//!
//! We run the same forward BFS under both execution models on a dense
//! RMAT graph (few levels, heavy frontiers) and on the long-tail web-like
//! graph (hundreds of near-empty levels), and report modeled times.

use gcbfs_bench::{env_or, f2, num_sources, per_gpu_scale, pick_sources, print_table, ray_factor};
use gcbfs_cluster::cost::CostModel;
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_core::stats::geometric_mean;
use gcbfs_graph::rmat::RmatConfig;
use gcbfs_graph::WebGraphConfig;

fn main() {
    let scale = env_or("GCBFS_SCALE", 14) as u32;
    println!("Extension: BSP vs asynchronous execution (paper §VI-D)");
    let topo = Topology::from_paper_notation(4, 2, 2);

    let rmat = RmatConfig::graph500(scale).generate();
    let mut web = WebGraphConfig::wdc_like(scale);
    web.chain_length = 300;
    let web = web.generate();

    // Each graph runs at the machine model matching its paper context:
    // the dense RMAT at the workload-scaled Ray (bandwidth/compute-bound
    // regime of the main evaluation), the long tail at the unscaled Ray
    // (its whole point is the fixed per-level overhead, §VI-D).
    let scaled = CostModel::ray_scaled(ray_factor(per_gpu_scale(scale, topo.num_gpus())));
    let unscaled = CostModel::ray();
    let mut rows = Vec::new();
    for (name, graph, th, cost) in
        [("RMAT (dense core)", &rmat, 23u64, scaled), ("web-like (long tail)", &web, 256, unscaled)]
    {
        let config = BfsConfig::new(th).with_direction_optimization(false).with_cost_model(cost);
        let dist = DistributedGraph::build(graph, topo, &config).expect("build");
        let sources = pick_sources(graph, num_sources(), 0xa57c);
        let mut bsp_ms = Vec::new();
        let mut async_ms = Vec::new();
        let mut iters = 0.0;
        for &s in &sources {
            let bsp = dist.run(s, &config).expect("run");
            if bsp.iterations() <= 1 {
                continue;
            }
            let asy = dist.run_async(s, &config).expect("run");
            assert_eq!(asy.depths, bsp.depths, "models must agree on results");
            bsp_ms.push(bsp.modeled_seconds() * 1e3);
            async_ms.push(asy.modeled_seconds * 1e3);
            iters += bsp.iterations() as f64;
        }
        let bsp = geometric_mean(&bsp_ms);
        let asy = geometric_mean(&async_ms);
        rows.push(vec![
            name.to_string(),
            f2(iters / bsp_ms.len() as f64),
            f2(bsp),
            f2(asy),
            f2(bsp / asy),
        ]);
    }
    print_table(
        "BSP vs async BFS (16 GPUs, modeled ms)",
        &["graph", "levels", "BSP ms", "async ms", "BSP/async"],
        &rows,
    );
    println!(
        "\nShape check: on the dense RMAT graph BSP wins — the collective mask reduce \
         moves 1 bit per delegate where the async model broadcasts 8-byte updates, \
         vindicating the paper's BSP-plus-collectives design for Graph500 workloads. \
         On the long-tail graph async wins clearly: the per-level synchronization \
         term, paid hundreds of times, disappears. Exactly the regime split §VI-D \
         describes."
    );
}
