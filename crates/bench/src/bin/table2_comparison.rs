//! Table II: comparison with previous work.
//!
//! The prior-work rows are the paper's reported numbers (we cannot rerun
//! TSUBAME or a 4096-GPU cluster); our column reruns the measurement at
//! the reproduction's scaled-down operating point and reports modeled
//! GTEPS plus the per-GPU ratio structure the paper highlights
//! (e.g. ~10× per-GPU advantage over Bernaschi et al.).

use gcbfs_bench::{
    f2, num_sources, per_gpu_scale, pick_sources, print_table, ray_factor, run_many,
};
use gcbfs_cluster::cost::CostModel;
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_graph::rmat::RmatConfig;

/// One paper-reported comparison row.
struct PriorWork {
    name: &'static str,
    scale: u32,
    processors: u32,
    gteps: f64,
    hardware: &'static str,
}

const PRIOR: &[PriorWork] = &[
    PriorWork {
        name: "Pan et al. [5] (1 GPU)",
        scale: 24,
        processors: 1,
        gteps: 31.6,
        hardware: "1x1x1 P100",
    },
    PriorWork {
        name: "Pan et al. [5] (4 GPUs)",
        scale: 26,
        processors: 4,
        gteps: 46.1,
        hardware: "1x1x4 P100",
    },
    PriorWork {
        name: "Bernaschi et al. [18]",
        scale: 33,
        processors: 4096,
        gteps: 828.39,
        hardware: "4096x1x1 K20X",
    },
    PriorWork {
        name: "Krajecki et al. [20]",
        scale: 29,
        processors: 64,
        gteps: 13.7,
        hardware: "64x1x1 K20Xm",
    },
    PriorWork {
        name: "Yasui & Fujisawa [9]",
        scale: 33,
        processors: 128,
        gteps: 174.7,
        hardware: "128 Xeon (shared mem)",
    },
    PriorWork {
        name: "Buluc et al. [16]",
        scale: 33,
        processors: 1024,
        gteps: 240.0,
        hardware: "1024 Xeon",
    },
    PriorWork {
        name: "This paper [T]",
        scale: 33,
        processors: 124,
        gteps: 259.8,
        hardware: "31x2x2 P100",
    },
];

fn main() {
    println!("Table II reproduction: prior work (paper-reported) vs this reproduction (modeled)");

    let mut rows: Vec<Vec<String>> = PRIOR
        .iter()
        .map(|w| {
            vec![
                w.name.to_string(),
                w.scale.to_string(),
                w.processors.to_string(),
                f2(w.gteps),
                format!("{:.3}", w.gteps / w.processors as f64),
                w.hardware.to_string(),
            ]
        })
        .collect();

    // Our measured points: single GPU, 4 GPUs, and the largest sweep point.
    for (label, gpus, scale) in
        [("repro (1 GPU)", 1u32, 12u32), ("repro (4 GPUs)", 4, 14), ("repro (64 GPUs)", 64, 18)]
    {
        let cfg = RmatConfig::graph500(scale);
        let graph = cfg.generate();
        let th = BfsConfig::suggested_rmat_threshold(scale + 15).max(8);
        let topo = if gpus >= 4 { Topology::new(gpus / 2, 2) } else { Topology::new(1, gpus) };
        let factor = ray_factor(per_gpu_scale(scale, gpus));
        let config = BfsConfig::new(th)
            .with_blocking_reduce(gpus >= 32)
            .with_cost_model(CostModel::ray_scaled(factor));
        let dist = DistributedGraph::build(&graph, topo, &config).expect("build");
        let sources = pick_sources(&graph, num_sources(), 0x7a2);
        let s = run_many(&dist, &config, &sources, cfg.graph500_edges());
        let gteps = s.gteps * factor;
        rows.push(vec![
            label.to_string(),
            scale.to_string(),
            gpus.to_string(),
            f2(gteps),
            format!("{:.3}", gteps / gpus as f64),
            "simulated P100 cluster (Ray-eq)".to_string(),
        ]);
    }
    print_table(
        "Table II — comparison (prior rows: paper-reported; repro rows: modeled)",
        &["work", "scale", "procs", "GTEPS", "GTEPS/proc", "hardware"],
        &rows,
    );
    println!(
        "\nShape check: the paper's structural claims — higher GTEPS/processor than any \
         cluster row, ~31% of Bernaschi's aggregate with ~3% of the GPUs, 1.49x Yasui, \
         above Buluc with 8.4x fewer processors — and the repro rows show the same \
         per-processor superiority pattern at reduced scale."
    );
}
