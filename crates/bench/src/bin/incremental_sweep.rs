//! Incremental-repair bench: what the delta-update path buys on an
//! evolving graph.
//!
//! For each cell of {batch fraction} x {locality}, applies one seeded
//! mutation batch to a converged BFS answer and compares the modeled
//! cost of the depth-repair waves (plus overlay maintenance) against a
//! from-scratch recompute of the mutated graph, asserting the repaired
//! depths are bit-exact either way. Emits the `BENCH_incremental.json`
//! trajectory future PRs regress against.
//!
//! Environment knobs: `GCBFS_SCALE` (default 20), `GCBFS_GPUS` (default
//! 16), `GCBFS_TH`. `GCBFS_JSON_OUT=/path.json` writes the JSON
//! document to a file.
//!
//! `--smoke` additionally asserts the acceptance gates: every cell
//! bit-exact, and repair at least 3x cheaper than recompute on every
//! batch at or below 1% of the edges.
//!
//! Usage: `cargo run --release --bin incremental_sweep [-- --smoke]`

use gcbfs_bench::{env_or, f2, print_table};
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::incremental::EvolvingGraph;
use gcbfs_core::mutation::{MutationLog, MutationSettings};
use gcbfs_graph::rmat::RmatConfig;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = env_or("GCBFS_SCALE", 20) as u32;
    let gpus = env_or("GCBFS_GPUS", 16) as u32;
    let th = env_or("GCBFS_TH", BfsConfig::suggested_rmat_threshold(scale + 13).max(8));
    let topo = if gpus >= 2 { Topology::new(gpus / 2, 2) } else { Topology::new(1, 1) };
    let p = topo.num_gpus() as usize;
    let config = BfsConfig::new(th).with_mutations(MutationSettings::enabled());
    let graph = RmatConfig::graph500(scale).generate();
    let undirected_edges = graph.num_edges() / 2;
    let degrees = graph.out_degrees();
    let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
    println!("Incremental sweep: RMAT scale {scale}, TH {th}, {p} GPUs, source {source}");

    let mut base = EvolvingGraph::new(&graph, topo, &config);
    let initial = base.initial_run(source).expect("initial run");
    let full_seconds = initial.modeled_seconds();
    println!(
        "initial BFS: {} iterations, {} reached, modeled {} ms (the recompute price)",
        initial.iterations(),
        initial.reached(),
        f2(full_seconds * 1e3)
    );

    let fractions = [1e-4f64, 1e-3, 1e-2];
    let localities = [0.0f64, 0.9];
    let mut rows = Vec::new();
    let mut cell_json = Vec::new();
    let mut small_batch_speedup = f64::INFINITY;
    let mut all_bit_exact = true;
    for (i, &frac) in fractions.iter().enumerate() {
        for (j, &locality) in localities.iter().enumerate() {
            let ops = ((undirected_edges as f64 * frac) as usize).max(1);
            let seed = 0xbf5 + (i * localities.len() + j) as u64;
            let log = MutationLog::random(seed, &graph, 1, ops, locality);
            // Each cell mutates its own copy of the converged state so
            // cells stay independent and the batch is always measured
            // against the same baseline.
            let mut evolving = base.clone();
            let report = evolving.apply_batch(&log.batches[0]);
            let repair_seconds = report.modeled_seconds();
            let truth = evolving.recompute().expect("recompute");
            let recompute_seconds = truth.modeled_seconds();
            let bit_exact = evolving.depths() == truth.depths.as_slice();
            all_bit_exact &= bit_exact;
            let speedup = recompute_seconds / repair_seconds.max(1e-12);
            if frac <= 0.01 {
                small_batch_speedup = small_batch_speedup.min(speedup);
            }
            rows.push(vec![
                format!("{frac:.0e}"),
                format!("{locality}"),
                format!("{ops}"),
                format!("{}", report.waves),
                format!("{}", report.invalidated + report.resettled),
                f2(repair_seconds * 1e3),
                f2(recompute_seconds * 1e3),
                f2(speedup),
                if bit_exact { "yes".into() } else { "NO".into() },
            ]);
            cell_json.push(format!(
                "{{\"batch_frac\":{frac},\"locality\":{locality},\"ops\":{ops},\
                 \"waves\":{},\"touched\":{},\"repair_ms\":{},\"recompute_ms\":{},\
                 \"speedup\":{speedup},\"bit_exact\":{bit_exact}}}",
                report.waves,
                report.invalidated + report.resettled,
                repair_seconds * 1e3,
                recompute_seconds * 1e3
            ));
        }
    }
    print_table(
        &format!("repair vs recompute (scale {scale}, {p} GPUs)"),
        &[
            "batch",
            "locality",
            "ops",
            "waves",
            "touched",
            "repair ms",
            "recompute ms",
            "speedup",
            "bit-exact",
        ],
        &rows,
    );
    println!(
        "\nsmallest repair-vs-recompute advantage at batches <= 1% of edges: {}x",
        f2(small_batch_speedup)
    );

    let doc = format!(
        "{{\"bench\":\"incremental\",\"scale\":{scale},\"gpus\":{p},\"th\":{th},\
         \"full_recompute_ms\":{},\"cells\":[{}],\
         \"small_batch_speedup\":{small_batch_speedup},\"bit_exact\":{all_bit_exact}}}",
        full_seconds * 1e3,
        cell_json.join(",")
    );
    println!("\n{doc}");
    if let Ok(path) = std::env::var("GCBFS_JSON_OUT") {
        std::fs::write(&path, &doc).expect("write GCBFS_JSON_OUT");
        println!("json written to {path}");
    }
    if smoke {
        assert!(all_bit_exact, "a repaired cell diverged from its recompute");
        assert!(
            small_batch_speedup >= 3.0,
            "repair only {}x faster than recompute at batches <= 1% of edges (gate: 3x)",
            f2(small_batch_speedup)
        );
        println!(
            "\nsmoke: all cells bit-exact, repair >= {}x recompute at small batches",
            f2(small_batch_speedup)
        );
    }
}
