//! §VI-D: the long-tail regime (WDC 2012 in the paper; a synthetic
//! web-like graph here — dense RMAT core plus long chains, hundreds of BFS
//! levels).
//!
//! Expected result (paper): ~330 iterations on average, per-iteration time
//! close to the per-iteration overhead, and DOBFS *slightly slower* than
//! BFS because the direction-decision work exceeds the traversal savings.

use gcbfs_bench::{env_or, f2, num_sources, pick_sources, print_table, run_many};
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_graph::WebGraphConfig;

fn main() {
    let core_scale = env_or("GCBFS_SCALE", 14) as u32;
    let mut gen = WebGraphConfig::wdc_like(core_scale);
    gen.chain_length = env_or("GCBFS_CHAIN", 300);
    println!(
        "§VI-D reproduction: long-tail web-like graph, core scale {core_scale}, \
         {} chains x {} (paper: WDC 2012, 4.29G vertices, ~330 iterations)",
        gen.num_chains, gen.chain_length
    );
    let graph = gen.generate();
    let g500_edges = graph.num_edges() / 2;
    let topo = Topology::from_paper_notation(4, 2, 2);
    let th = 256;
    let sources = pick_sources(&graph, num_sources(), 0x3dc);

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for use_do in [false, true] {
        let config = BfsConfig::new(th).with_direction_optimization(use_do);
        let dist = DistributedGraph::build(&graph, topo, &config).expect("build");
        let s = run_many(&dist, &config, &sources, g500_edges);
        rows.push(vec![
            if use_do { "DOBFS" } else { "BFS" }.to_string(),
            f2(s.gteps * 1e3), // MTEPS at this scale
            f2(s.elapsed_ms),
            f2(s.iterations),
            format!("{:.1}", 1e3 * s.elapsed_ms / s.iterations), // us per iteration
        ]);
        results.push(s);
    }
    print_table(
        "WDC-like long-tail run (16 GPUs, TH 256, modeled)",
        &["algorithm", "MTEPS", "elapsed (ms)", "iterations", "us/iter"],
        &rows,
    );
    let (bfs, dobfs) = (&results[0], &results[1]);
    println!(
        "\nShape check: hundreds of iterations; per-iteration time dominated by \
         overheads; DOBFS/BFS = {:.3} (paper: slightly below 1 — 79.7 vs 84.2 GTEPS).",
        dobfs.gteps / bfs.gteps
    );
}
