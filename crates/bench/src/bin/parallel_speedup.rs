//! Host-pool self-speedup sweep: wall-clock scaling of the simulator itself.
//!
//! Not a paper figure — the paper's numbers are modeled GPU/network time —
//! but the harness that produces them is a multi-threaded host program, and
//! this sweep certifies its two load-bearing properties at once:
//!
//! 1. **Determinism**: for every (scale, source) the depth vector is
//!    bit-identical at every thread count. The pool's fixed length-only
//!    chunking and ordered chunk-index merges make this hold by
//!    construction (DESIGN.md §5d); this binary re-checks it end to end
//!    through graph generation, edge distribution, and the BFS driver.
//! 2. **Self-speedup**: the same workload gets genuinely faster with more
//!    worker threads. The headline claim is ≥2× at 4 threads vs 1 on the
//!    RMAT scale-20 / 16-GPU configuration, asserted only when the host
//!    actually has ≥4 cores (thread counts above the core count are still
//!    measured — oversubscription must not break determinism — but prove
//!    nothing about scaling).
//!
//! Output: a fixed-width table per scale plus a single JSON document on
//! stdout (machine-readable results for CI trend tracking). Set
//! `GCBFS_JSON_OUT=/path.json` to also write the JSON to a file.
//!
//! Environment knobs: `GCBFS_SCALES` (comma list, default `18,20`),
//! `GCBFS_PS_THREADS` (comma list, default `1,2,4,8`), `GCBFS_REPS`
//! (timing repetitions, best-of, default 3).
//!
//! Usage: `cargo run --release --bin parallel_speedup [-- --smoke]`
//! (`--smoke` shrinks to scale 12, threads 1,2,4, one rep, for CI).

use std::time::Instant;

use gcbfs_bench::{env_or, f2, pick_sources, print_table};
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_graph::rmat::RmatConfig;

/// One measured cell of the sweep.
struct Cell {
    scale: u32,
    threads: usize,
    wall_ms: f64,
    /// Harness throughput: undirected edges traversed per wall-clock
    /// second across all sources (the simulator's own GTEPS, distinct
    /// from the modeled-GPU GTEPS kernel_sweep tracks).
    gteps: f64,
    speedup: f64,
    depths_ok: bool,
}

/// Builds the distributed graph and runs BFS from every source, returning
/// the concatenated depth vectors (the determinism witness) and the
/// wall-clock seconds of the whole pipeline (generation is excluded: it
/// runs once outside, so each thread count times the same bytes).
fn run_pipeline(
    graph: &gcbfs_graph::EdgeList,
    topo: Topology,
    config: &BfsConfig,
    sources: &[u64],
) -> (Vec<u32>, f64) {
    let start = Instant::now();
    let dist = DistributedGraph::build(graph, topo, config).expect("build");
    let mut depths = Vec::new();
    for &s in sources {
        let r = dist.run(s, config).expect("valid source");
        depths.extend_from_slice(&r.depths);
    }
    (depths, start.elapsed().as_secs_f64())
}

fn sweep_scale(scale: u32, threads: &[usize], reps: usize) -> Vec<Cell> {
    let topo = Topology::new(4, 4); // 16 GPUs, the paper's full-Ray shape
    let th = BfsConfig::suggested_rmat_threshold(scale + 13).max(8);
    let config = BfsConfig::new(th).with_local_all2all(true).with_uniquify(true);
    let graph = RmatConfig::graph500(scale).generate();
    let m_half = graph.num_edges() / 2;
    let sources = pick_sources(&graph, 2, 0x5eed + scale as u64);

    let mut cells = Vec::new();
    let mut reference: Option<Vec<u32>> = None;
    let mut base_ms = 0f64;
    for &t in threads {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(t).build().expect("pool");
        // Best-of-`reps` wall time; depths captured from the first rep
        // (every rep is asserted identical anyway).
        let mut best = f64::INFINITY;
        let mut depths = Vec::new();
        for rep in 0..reps {
            let (d, secs) = pool.install(|| run_pipeline(&graph, topo, &config, &sources));
            best = best.min(secs);
            if rep == 0 {
                depths = d;
            } else {
                assert_eq!(d, depths, "scale {scale}: depths drifted between reps at {t} threads");
            }
        }
        let wall_ms = best * 1e3;
        let gteps = (m_half * sources.len() as u64) as f64 / best / 1e9;
        let depths_ok = match &reference {
            None => {
                reference = Some(depths);
                base_ms = wall_ms;
                true
            }
            Some(reference) => {
                assert_eq!(
                    &depths, reference,
                    "scale {scale}: depth vector differs at {t} threads vs {} threads",
                    threads[0],
                );
                true
            }
        };
        cells.push(Cell {
            scale,
            threads: t,
            wall_ms,
            gteps,
            speedup: base_ms / wall_ms,
            depths_ok,
        });
    }
    cells
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scales: Vec<u32> = if smoke {
        vec![12]
    } else {
        std::env::var("GCBFS_SCALES")
            .unwrap_or_else(|_| "18,20".into())
            .split(',')
            .map(|s| s.trim().parse().expect("GCBFS_SCALES entries are u32 scales"))
            .collect()
    };
    let threads: Vec<usize> = if smoke {
        vec![1, 2, 4]
    } else {
        std::env::var("GCBFS_PS_THREADS")
            .unwrap_or_else(|_| "1,2,4,8".into())
            .split(',')
            .map(|s| s.trim().parse().expect("GCBFS_PS_THREADS entries are thread counts"))
            .collect()
    };
    let reps = if smoke { 1 } else { env_or("GCBFS_REPS", 3) as usize };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "Parallel self-speedup{}: RMAT scales {scales:?}, 16 GPUs, threads {threads:?}, \
         best of {reps}, host cores {cores}",
        if smoke { " (smoke)" } else { "" },
    );

    let mut all = Vec::new();
    for &scale in &scales {
        let cells = sweep_scale(scale, &threads, reps);
        let rows: Vec<Vec<String>> = cells
            .iter()
            .map(|c| {
                vec![
                    c.threads.to_string(),
                    f2(c.wall_ms),
                    f2(c.gteps),
                    f2(c.speedup),
                    if c.depths_ok { "bit-exact" } else { "DRIFT" }.into(),
                ]
            })
            .collect();
        print_table(
            &format!("scale {scale}, 16 GPUs"),
            &["threads", "wall ms", "GTEPS", "speedup", "depths"],
            &rows,
        );
        all.extend(cells);
    }

    // The headline assertion: ≥2.1× at 4 threads on the largest scale —
    // raised from 2.0× after the word-parallel/sliding-queue overhaul
    // (less per-vertex bookkeeping leaves proportionally more
    // parallelizable work). Only meaningful when the host actually has
    // the cores. A 1-core CI runner still verifies determinism above;
    // it cannot prove scaling.
    if !smoke && cores >= 4 {
        let top = *scales.iter().max().expect("at least one scale");
        if let Some(c) = all.iter().find(|c| c.scale == top && c.threads == 4) {
            assert!(
                c.speedup >= 2.1,
                "scale {top}: expected >=2.1x self-speedup at 4 threads, got {:.2}x",
                c.speedup,
            );
            println!(
                "\nself-speedup at 4 threads on scale {top}: {:.2}x (>=2.1x required)",
                c.speedup
            );
        }
    } else {
        println!("\nspeedup assertion skipped (smoke={smoke}, cores={cores}); determinism checked");
    }

    // JSON results — hand-rolled (the workspace is dependency-free by
    // design), shape kept flat for easy jq/CI consumption.
    let cells_json: Vec<String> = all
        .iter()
        .map(|c| {
            format!(
                "{{\"scale\":{},\"threads\":{},\"wall_ms\":{:.3},\"gteps\":{:.3},\
                 \"speedup\":{:.3},\"depths_bit_exact\":{}}}",
                c.scale, c.threads, c.wall_ms, c.gteps, c.speedup, c.depths_ok,
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"parallel_speedup\",\"smoke\":{smoke},\"host_cores\":{cores},\
         \"gpus\":16,\"reps\":{reps},\"results\":[{}]}}",
        cells_json.join(","),
    );
    println!("\n{json}");
    if let Ok(path) = std::env::var("GCBFS_JSON_OUT") {
        std::fs::write(&path, &json).expect("write GCBFS_JSON_OUT");
        println!("json written to {path}");
    }
}
