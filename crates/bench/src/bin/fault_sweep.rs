//! Resilience sweep: the price of surviving faults.
//!
//! Not a paper figure — the paper measures fault-free runs — but the
//! natural operational question its scale raises: what does BFS cost when
//! the cluster misbehaves? Three sweeps, all verified bit-exact against
//! the fault-free depths:
//!
//! 1. **Message-fault intensity**: drop/duplicate/delay probabilities from
//!    0 to 20% per in-flight update; overhead comes from exchange
//!    retransmissions with exponential backoff.
//! 2. **Checkpoint cadence vs fail-stop**: a GPU dies mid-run; sparser
//!    checkpoints are cheaper up front but waste more work at rollback.
//! 3. **Random chaos plans**: seeded mixed plans ([`FaultPlan::random`])
//!    as a smoke-level reproduction of the recovery property test.
//! 4. **Chaos with compression on** (bit-exact under retransmission).
//! 5. **Availability vs MTTF**: periodic fail-stop/rejoin churn at a
//!    given mean-time-to-failure (in iterations); reports the surviving
//!    GTEPS, recovery bill, and availability fraction.
//!
//! Environment knobs: `GCBFS_SCALE` (default 13), `GCBFS_TH`,
//! `GCBFS_SEEDS` (random plans in sweep 3, default 10).
//!
//! Usage: `cargo run --release --bin fault_sweep`
//!
//! `--smoke [buddy|spread|spare|rejoin|all]` instead runs the elastic
//! membership acceptance checks at scale `GCBFS_SCALE` (default 20) on a
//! 16-GPU grid: spare absorption must keep the post-recovery
//! per-iteration time within 5% of fault-free, and spreading must beat
//! buddy hosting on the degraded per-iteration time by at least 1.5x.
//! `--smoke sdc` instead runs the correctness-armor acceptance gate:
//! seeded random silent-data-corruption plans (`GCBFS_SEEDS`, default 10)
//! at scale `GCBFS_SCALE` (default 18) on the same 16-GPU grid, under
//! `Full` online verification — every plan whose events fire must be
//! detected and recover to bit-exact fault-free depths.
//! `GCBFS_JSON_OUT=/path.json` writes the smoke measurements as JSON.

use gcbfs_bench::{env_or, f2, pct, print_table};
use gcbfs_cluster::fault::FaultPlan;
use gcbfs_cluster::timing::degraded_bound;
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::{BfsResult, DistributedGraph};
use gcbfs_core::recovery::{HostingPolicy, RecoveryConfig};
use gcbfs_core::stats::FaultStats;
use gcbfs_core::verify::VerificationMode;
use gcbfs_graph::rmat::RmatConfig;

fn ms(s: f64) -> f64 {
    s * 1e3
}

/// Mean modeled per-iteration time over a run's final (post-replay)
/// iteration records.
fn per_iteration_seconds(r: &BfsResult) -> f64 {
    let sum: f64 = r.stats.records.iter().map(|rec| rec.timing.elapsed()).sum();
    sum / r.stats.records.len().max(1) as f64
}

/// The `--smoke` mode: elastic-membership acceptance checks on a 16-GPU
/// grid, one hosting trajectory per invocation (or `all`).
fn smoke(mode: &str) {
    let scale = env_or("GCBFS_SCALE", 20) as u32;
    let th = env_or("GCBFS_TH", BfsConfig::suggested_rmat_threshold(scale + 13).max(8));
    let topo = Topology::new(8, 2);
    let config = BfsConfig::new(th);
    let graph = RmatConfig::graph500(scale).generate();
    let degrees = graph.out_degrees();
    let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
    println!(
        "Elastic membership smoke [{mode}]: RMAT scale {scale}, TH {th}, {} GPUs, source {source}",
        topo.num_gpus()
    );

    let dist = DistributedGraph::build(&graph, topo, &config).expect("build");
    let clean = dist.run(source, &config).expect("fault-free run");
    let clean_iter_s = per_iteration_seconds(&clean);
    println!(
        "fault-free: {} iterations, {} ms modeled, {} ms/iter",
        clean.iterations(),
        f2(ms(clean.modeled_seconds())),
        f2(ms(clean_iter_s))
    );
    let fail_iter = (clean.iterations() / 3).max(1);
    let p = topo.num_gpus() as usize;

    let run_mode = |hosting: HostingPolicy, spares: u32, rejoin_at: Option<u32>| {
        let topo = Topology::new(8, 2).with_spares(spares);
        let dist = DistributedGraph::build(&graph, topo, &config).expect("build");
        let cfg = config.with_recovery(RecoveryConfig::default().with_hosting(hosting));
        let mut plan = FaultPlan::new(0xe1a5).with_fail_stop(5, fail_iter);
        if let Some(at) = rejoin_at {
            plan = plan.with_rejoin(5, at);
        }
        let r = dist.run_with_faults(source, &cfg, &plan).expect("recovered");
        assert_eq!(r.depths, clean.depths, "recovery must be bit-exact");
        r
    };

    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut record = |name: &str, r: &BfsResult| {
        let iter_s = per_iteration_seconds(r);
        let f = &r.stats.fault;
        rows.push(vec![
            name.into(),
            f.spare_absorptions.to_string(),
            f.spread_hostings.to_string(),
            f.rejoins.to_string(),
            f.degraded_iterations.to_string(),
            f2(ms(iter_s)),
            format!("{:.3}", iter_s / clean_iter_s),
            f2(ms(f.recovery_seconds)),
            "ok".into(),
        ]);
        json.push(format!(
            "{{\"mode\":\"{name}\",\"per_iter_ms\":{},\"ratio\":{},\"recovery_ms\":{},\"degraded_iterations\":{}}}",
            ms(iter_s),
            iter_s / clean_iter_s,
            ms(f.recovery_seconds),
            f.degraded_iterations
        ));
        iter_s
    };

    let all = mode == "all";
    let mut buddy_iter_s = None;
    let mut spread_iter_s = None;
    if all || mode == "buddy" {
        let r = run_mode(HostingPolicy::Buddy, 0, None);
        assert!(r.stats.fault.degraded_iterations > 0);
        buddy_iter_s = Some(record("buddy", &r));
    }
    if all || mode == "spread" {
        let r = run_mode(HostingPolicy::Spread, 0, None);
        assert_eq!(r.stats.fault.spread_hostings, 1);
        let s = record("spread", &r);
        // The water-filled plan must stay within the analytic bound
        // (p+1)/p, with headroom for the comm-lane reassignment.
        let bound = degraded_bound(p - 1);
        assert!(
            s / clean_iter_s <= bound * 1.10,
            "spread degraded per-iteration {:.3}x exceeds (p+1)/p bound {bound:.3}",
            s / clean_iter_s
        );
        spread_iter_s = Some(s);
    }
    if all || mode == "spare" {
        let r = run_mode(HostingPolicy::Spread, 1, None);
        let f = &r.stats.fault;
        assert_eq!(f.spare_absorptions, 1, "the free spare absorbs the death");
        assert_eq!(f.degraded_iterations, 0, "spare absorption never degrades");
        let s = record("spare", &r);
        assert!(
            (s - clean_iter_s).abs() <= 0.05 * clean_iter_s,
            "spare-absorbed per-iteration {} ms vs fault-free {} ms: more than 5% apart",
            ms(s),
            ms(clean_iter_s)
        );
    }
    if all || mode == "rejoin" {
        let rejoin_at = (fail_iter + 3).min(clean.iterations().saturating_sub(1));
        let r = run_mode(HostingPolicy::Spread, 0, Some(rejoin_at));
        assert_eq!(r.stats.fault.rejoins, 1, "the rejoin is detected and applied");
        record("rejoin", &r);
    }
    if all {
        let b = buddy_iter_s.unwrap();
        let s = spread_iter_s.unwrap();
        assert!(
            b / s >= 1.5,
            "spreading must beat buddy hosting by >=1.5x on the degraded \
             per-iteration time (got {:.3}x)",
            b / s
        );
        println!("\nspread vs buddy degraded per-iteration: {:.3}x", b / s);
    }

    print_table(
        &format!("elastic membership smoke (fail GPU 5 at iteration {fail_iter})"),
        &[
            "mode", "spares", "spread", "rejoins", "degraded", "ms/iter", "vs clean", "rec ms",
            "depths",
        ],
        &rows,
    );
    let doc = format!(
        "{{\"scale\":{scale},\"gpus\":{p},\"clean_per_iter_ms\":{},\"modes\":[{}]}}",
        ms(clean_iter_s),
        json.join(",")
    );
    println!("\n{doc}");
    if let Ok(path) = std::env::var("GCBFS_JSON_OUT") {
        std::fs::write(&path, &doc).expect("write GCBFS_JSON_OUT");
        println!("json written to {path}");
    }
    println!("\nall membership trajectories recovered to bit-exact depths");
}

/// The `--smoke sdc` mode: the correctness-armor acceptance gate. Seeded
/// random silent-data-corruption plans run under `Full` online
/// verification on a 16-GPU grid; every plan whose events fire must be
/// detected (100% detection) and recover to bit-exact fault-free depths.
fn smoke_sdc() {
    let scale = env_or("GCBFS_SCALE", 18) as u32;
    let th = env_or("GCBFS_TH", BfsConfig::suggested_rmat_threshold(scale + 13).max(8));
    let seeds = env_or("GCBFS_SEEDS", 10) as u64;
    let topo = Topology::new(8, 2);
    let p = topo.num_gpus() as usize;
    let config = BfsConfig::new(th);
    let graph = RmatConfig::graph500(scale).generate();
    let degrees = graph.out_degrees();
    let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
    println!("SDC smoke: RMAT scale {scale}, TH {th}, {p} GPUs, {seeds} seeded plans");

    let dist = DistributedGraph::build(&graph, topo, &config).expect("build");
    let clean = dist.run(source, &config).expect("fault-free run");
    let full = config.with_verification(VerificationMode::Full);
    // Schedule events inside the traversal actually run.
    let horizon = clean.iterations().max(2);

    let mut rows = Vec::new();
    let mut fired_plans = 0u64;
    let (mut injected, mut detected, mut reexecs, mut rollbacks) = (0u64, 0u64, 0u64, 0u64);
    for seed in 0..seeds {
        let plan = FaultPlan::random_sdc(seed, p, horizon);
        let r = dist.run_with_faults(source, &full, &plan).expect("verified recovery");
        assert_eq!(r.depths, clean.depths, "seed {seed}: recovered depths must be bit-exact");
        let f = &r.stats.fault;
        if f.injected_sdc > 0 {
            fired_plans += 1;
            assert!(f.sdc_detections > 0, "seed {seed}: a fired SDC event slipped past Full");
        } else {
            assert_eq!(f.sdc_detections, 0, "seed {seed}: detection without any fired event");
        }
        injected += f.injected_sdc;
        detected += f.sdc_detections;
        reexecs += f.sdc_reexecutions;
        rollbacks += f.rollbacks;
        rows.push(vec![
            seed.to_string(),
            f.injected_sdc.to_string(),
            f.sdc_detections.to_string(),
            f.sdc_reexecutions.to_string(),
            f.rollbacks.to_string(),
            f2(ms(f.recovery_seconds)),
            "ok".into(),
        ]);
    }
    assert!(fired_plans > 0, "no plan fired any event: widen the horizon");
    print_table(
        "SDC smoke (Full tier, seeded random plans)",
        &["seed", "injected", "detected", "reexec", "rollbacks", "rec ms", "depths"],
        &rows,
    );
    let doc = format!(
        "{{\"scale\":{scale},\"gpus\":{p},\"plans\":{seeds},\"fired_plans\":{fired_plans},\
         \"injected\":{injected},\"detected\":{detected},\"reexecutions\":{reexecs},\
         \"rollbacks\":{rollbacks},\"detection_rate\":1.0}}"
    );
    println!("\n{doc}");
    if let Ok(path) = std::env::var("GCBFS_JSON_OUT") {
        std::fs::write(&path, &doc).expect("write GCBFS_JSON_OUT");
        println!("json written to {path}");
    }
    println!("\nall fired SDC plans detected under Full and recovered to bit-exact depths");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        let mode = args
            .iter()
            .position(|a| a == "--smoke")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "all".into());
        assert!(
            ["buddy", "spread", "spare", "rejoin", "all", "sdc"].contains(&mode.as_str()),
            "unknown smoke mode {mode:?}"
        );
        if mode == "sdc" {
            smoke_sdc();
        } else {
            smoke(&mode);
        }
        return;
    }
    let scale = env_or("GCBFS_SCALE", 13) as u32;
    let th = env_or("GCBFS_TH", BfsConfig::suggested_rmat_threshold(scale + 13).max(8));
    let topo = Topology::new(2, 2);
    let config = BfsConfig::new(th);
    let graph = RmatConfig::graph500(scale).generate();
    let degrees = graph.out_degrees();
    let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;

    println!("Fault sweep: RMAT scale {scale}, TH {th}, {} GPUs, source {source}", topo.num_gpus());
    let dist = DistributedGraph::build(&graph, topo, &config).expect("build");
    let clean = dist.run(source, &config).expect("fault-free run");
    let base_s = clean.modeled_seconds();
    println!("fault-free: {} iterations, {} ms modeled", clean.iterations(), f2(ms(base_s)));

    let overhead = |f: &FaultStats| 100.0 * f.overhead_seconds() / base_s;

    // ---- Sweep 1: message-fault intensity. ----
    let mut rows = Vec::new();
    for intensity in [0.0, 0.01, 0.05, 0.10, 0.20] {
        let plan = FaultPlan::new(0xc0ffee)
            .with_message_faults(intensity, intensity / 2.0, intensity / 2.0)
            .with_max_delay(2);
        let r = dist.run_with_faults(source, &config, &plan).expect("recovered");
        assert_eq!(r.depths, clean.depths, "recovery must be bit-exact");
        let f = &r.stats.fault;
        rows.push(vec![
            pct(intensity * 100.0),
            f.injected_drops.to_string(),
            f.injected_duplicates.to_string(),
            f.injected_delays.to_string(),
            f.retries.to_string(),
            f2(ms(f.recovery_seconds)),
            f2(ms(f.checkpoint_seconds)),
            pct(overhead(f)),
            "ok".into(),
        ]);
    }
    print_table(
        "message-fault intensity (drop p, dup p/2, delay p/2)",
        &["p", "drops", "dups", "delays", "retries", "rec ms", "ckpt ms", "overhead", "depths"],
        &rows,
    );

    // ---- Sweep 2: checkpoint cadence vs a mid-run fail-stop. ----
    let fail_iter = (clean.iterations() / 2).max(1);
    let mut rows = Vec::new();
    for interval in [1u32, 2, 4, 8, 0] {
        let cfg =
            config.with_recovery(RecoveryConfig::default().with_checkpoint_interval(interval));
        let plan = FaultPlan::new(1).with_fail_stop(1, fail_iter);
        let r = dist.run_with_faults(source, &cfg, &plan).expect("recovered");
        assert_eq!(r.depths, clean.depths, "recovery must be bit-exact");
        let f = &r.stats.fault;
        rows.push(vec![
            if interval == 0 { "iter-0 only".into() } else { format!("every {interval}") },
            f.checkpoints_taken.to_string(),
            f.rollbacks.to_string(),
            f.degraded_iterations.to_string(),
            f2(ms(f.checkpoint_seconds)),
            f2(ms(f.recovery_seconds)),
            pct(overhead(f)),
            "ok".into(),
        ]);
    }
    print_table(
        &format!("checkpoint cadence vs fail-stop of GPU 1 at iteration {fail_iter}"),
        &["cadence", "ckpts", "rollbacks", "degraded", "ckpt ms", "rec ms", "overhead", "depths"],
        &rows,
    );

    // ---- Sweep 3: random chaos plans. ----
    let seeds = env_or("GCBFS_SEEDS", 10);
    let mut rows = Vec::new();
    for seed in 0..seeds {
        let plan = FaultPlan::random(seed, topo.num_gpus() as usize, clean.iterations());
        let r = dist.run_with_faults(source, &config, &plan).expect("recovered");
        assert_eq!(r.depths, clean.depths, "recovery must be bit-exact");
        let f = &r.stats.fault;
        rows.push(vec![
            seed.to_string(),
            format!(
                "{}d/{}u/{}l/{}c/{}f",
                f.injected_drops,
                f.injected_duplicates,
                f.injected_delays,
                f.injected_corruptions,
                f.fail_stops
            ),
            f.retries.to_string(),
            f.rollbacks.to_string(),
            pct(overhead(f)),
            "ok".into(),
        ]);
    }
    print_table(
        "random chaos plans (faults = drops/dups/delays/corruptions/fail-stops)",
        &["seed", "faults", "retries", "rollbacks", "overhead", "depths"],
        &rows,
    );

    // ---- Sweep 4: chaos with compression on. ----
    // Retransmissions re-encode deterministically and rollbacks reset the
    // differential-mask baseline, so the compressed wire must recover to
    // the same depths as the raw one — while still saving bytes.
    let cfg = config.with_compression(gcbfs_compress::CompressionMode::Adaptive);
    let mut rows = Vec::new();
    for seed in 0..seeds.min(5) {
        let plan = FaultPlan::random(seed, topo.num_gpus() as usize, clean.iterations());
        let r = dist.run_with_faults(source, &cfg, &plan).expect("recovered");
        assert_eq!(r.depths, clean.depths, "compressed recovery must be bit-exact");
        let f = &r.stats.fault;
        rows.push(vec![
            seed.to_string(),
            f.retries.to_string(),
            f.rollbacks.to_string(),
            r.stats.total_remote_bytes().to_string(),
            r.stats.total_bytes_saved().to_string(),
            format!("{:.3}", r.stats.compression_ratio()),
            pct(overhead(f)),
            "ok".into(),
        ]);
    }
    print_table(
        "random chaos plans with adaptive compression",
        &["seed", "retries", "rollbacks", "rbytes", "saved", "ratio", "overhead", "depths"],
        &rows,
    );

    // ---- Sweep 5: availability vs MTTF. ----
    // Periodic fail-stop churn: one GPU dies every `mttf` iterations
    // (round-robin victims) and rejoins two beats later, so the cluster
    // oscillates between full strength and degraded spreading. Reports
    // the GTEPS that survives the churn and the availability fraction
    // (time not spent checkpointing or recovering).
    let horizon = clean.iterations();
    let mut rows = Vec::new();
    for mttf in [0u32, 3, 2, 1] {
        let mut plan = FaultPlan::new(0xa11ce);
        if mttf > 0 {
            let mut victim = 1usize;
            // First loss after one clean iteration, then every `mttf`:
            // BFS horizons are short, so an iteration-scale MTTF is the
            // regime where churn actually lands inside the run.
            let mut t = 1;
            while t < horizon {
                plan = plan.with_fail_stop(victim, t);
                if t + 2 < horizon {
                    // Only schedule rejoins the run can still observe;
                    // later losses stay spread until the run ends.
                    plan = plan.with_rejoin(victim, t + 2);
                }
                victim = (victim + 1) % topo.num_gpus() as usize;
                t += mttf;
            }
        }
        let r = dist.run_with_faults(source, &config, &plan).expect("recovered");
        assert_eq!(r.depths, clean.depths, "recovery must be bit-exact");
        let f = &r.stats.fault;
        let total = r.modeled_seconds();
        let gteps = r.stats.total_edges_examined() as f64 / total / 1e9;
        let availability = 1.0 - (f.recovery_seconds + f.checkpoint_seconds) / total;
        rows.push(vec![
            if mttf == 0 { "inf".into() } else { format!("{mttf} iters") },
            f.fail_stops.to_string(),
            f.rejoins.to_string(),
            f.degraded_iterations.to_string(),
            format!("{gteps:.3}"),
            f2(ms(f.recovery_seconds)),
            pct(100.0 * availability),
            "ok".into(),
        ]);
    }
    print_table(
        "availability vs MTTF (round-robin fail-stops, rejoin after 2 iterations)",
        &["MTTF", "fails", "rejoins", "degraded", "GTEPS", "rec ms", "avail", "depths"],
        &rows,
    );
    println!("\nall plans recovered to bit-exact depths (raw and compressed wire)");
}
