//! Resilience sweep: the price of surviving faults.
//!
//! Not a paper figure — the paper measures fault-free runs — but the
//! natural operational question its scale raises: what does BFS cost when
//! the cluster misbehaves? Three sweeps, all verified bit-exact against
//! the fault-free depths:
//!
//! 1. **Message-fault intensity**: drop/duplicate/delay probabilities from
//!    0 to 20% per in-flight update; overhead comes from exchange
//!    retransmissions with exponential backoff.
//! 2. **Checkpoint cadence vs fail-stop**: a GPU dies mid-run; sparser
//!    checkpoints are cheaper up front but waste more work at rollback.
//! 3. **Random chaos plans**: seeded mixed plans ([`FaultPlan::random`])
//!    as a smoke-level reproduction of the recovery property test.
//!
//! Environment knobs: `GCBFS_SCALE` (default 13), `GCBFS_TH`,
//! `GCBFS_SEEDS` (random plans in sweep 3, default 10).
//!
//! Usage: `cargo run --release --bin fault_sweep`

use gcbfs_bench::{env_or, f2, pct, print_table};
use gcbfs_cluster::fault::FaultPlan;
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_core::recovery::RecoveryConfig;
use gcbfs_core::stats::FaultStats;
use gcbfs_graph::rmat::RmatConfig;

fn ms(s: f64) -> f64 {
    s * 1e3
}

fn main() {
    let scale = env_or("GCBFS_SCALE", 13) as u32;
    let th = env_or("GCBFS_TH", BfsConfig::suggested_rmat_threshold(scale + 13).max(8));
    let topo = Topology::new(2, 2);
    let config = BfsConfig::new(th);
    let graph = RmatConfig::graph500(scale).generate();
    let degrees = graph.out_degrees();
    let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;

    println!("Fault sweep: RMAT scale {scale}, TH {th}, {} GPUs, source {source}", topo.num_gpus());
    let dist = DistributedGraph::build(&graph, topo, &config).expect("build");
    let clean = dist.run(source, &config).expect("fault-free run");
    let base_s = clean.modeled_seconds();
    println!("fault-free: {} iterations, {} ms modeled", clean.iterations(), f2(ms(base_s)));

    let overhead = |f: &FaultStats| 100.0 * f.overhead_seconds() / base_s;

    // ---- Sweep 1: message-fault intensity. ----
    let mut rows = Vec::new();
    for intensity in [0.0, 0.01, 0.05, 0.10, 0.20] {
        let plan = FaultPlan::new(0xc0ffee)
            .with_message_faults(intensity, intensity / 2.0, intensity / 2.0)
            .with_max_delay(2);
        let r = dist.run_with_faults(source, &config, &plan).expect("recovered");
        assert_eq!(r.depths, clean.depths, "recovery must be bit-exact");
        let f = &r.stats.fault;
        rows.push(vec![
            pct(intensity * 100.0),
            f.injected_drops.to_string(),
            f.injected_duplicates.to_string(),
            f.injected_delays.to_string(),
            f.retries.to_string(),
            f2(ms(f.recovery_seconds)),
            f2(ms(f.checkpoint_seconds)),
            pct(overhead(f)),
            "ok".into(),
        ]);
    }
    print_table(
        "message-fault intensity (drop p, dup p/2, delay p/2)",
        &["p", "drops", "dups", "delays", "retries", "rec ms", "ckpt ms", "overhead", "depths"],
        &rows,
    );

    // ---- Sweep 2: checkpoint cadence vs a mid-run fail-stop. ----
    let fail_iter = (clean.iterations() / 2).max(1);
    let mut rows = Vec::new();
    for interval in [1u32, 2, 4, 8, 0] {
        let cfg =
            config.with_recovery(RecoveryConfig::default().with_checkpoint_interval(interval));
        let plan = FaultPlan::new(1).with_fail_stop(1, fail_iter);
        let r = dist.run_with_faults(source, &cfg, &plan).expect("recovered");
        assert_eq!(r.depths, clean.depths, "recovery must be bit-exact");
        let f = &r.stats.fault;
        rows.push(vec![
            if interval == 0 { "iter-0 only".into() } else { format!("every {interval}") },
            f.checkpoints_taken.to_string(),
            f.rollbacks.to_string(),
            f.degraded_iterations.to_string(),
            f2(ms(f.checkpoint_seconds)),
            f2(ms(f.recovery_seconds)),
            pct(overhead(f)),
            "ok".into(),
        ]);
    }
    print_table(
        &format!("checkpoint cadence vs fail-stop of GPU 1 at iteration {fail_iter}"),
        &["cadence", "ckpts", "rollbacks", "degraded", "ckpt ms", "rec ms", "overhead", "depths"],
        &rows,
    );

    // ---- Sweep 3: random chaos plans. ----
    let seeds = env_or("GCBFS_SEEDS", 10);
    let mut rows = Vec::new();
    for seed in 0..seeds {
        let plan = FaultPlan::random(seed, topo.num_gpus() as usize, clean.iterations());
        let r = dist.run_with_faults(source, &config, &plan).expect("recovered");
        assert_eq!(r.depths, clean.depths, "recovery must be bit-exact");
        let f = &r.stats.fault;
        rows.push(vec![
            seed.to_string(),
            format!(
                "{}d/{}u/{}l/{}c/{}f",
                f.injected_drops,
                f.injected_duplicates,
                f.injected_delays,
                f.injected_corruptions,
                f.fail_stops
            ),
            f.retries.to_string(),
            f.rollbacks.to_string(),
            pct(overhead(f)),
            "ok".into(),
        ]);
    }
    print_table(
        "random chaos plans (faults = drops/dups/delays/corruptions/fail-stops)",
        &["seed", "faults", "retries", "rollbacks", "overhead", "depths"],
        &rows,
    );

    // ---- Sweep 4: chaos with compression on. ----
    // Retransmissions re-encode deterministically and rollbacks reset the
    // differential-mask baseline, so the compressed wire must recover to
    // the same depths as the raw one — while still saving bytes.
    let cfg = config.with_compression(gcbfs_compress::CompressionMode::Adaptive);
    let mut rows = Vec::new();
    for seed in 0..seeds.min(5) {
        let plan = FaultPlan::random(seed, topo.num_gpus() as usize, clean.iterations());
        let r = dist.run_with_faults(source, &cfg, &plan).expect("recovered");
        assert_eq!(r.depths, clean.depths, "compressed recovery must be bit-exact");
        let f = &r.stats.fault;
        rows.push(vec![
            seed.to_string(),
            f.retries.to_string(),
            f.rollbacks.to_string(),
            r.stats.total_remote_bytes().to_string(),
            r.stats.total_bytes_saved().to_string(),
            format!("{:.3}", r.stats.compression_ratio()),
            pct(overhead(f)),
            "ok".into(),
        ]);
    }
    print_table(
        "random chaos plans with adaptive compression",
        &["seed", "retries", "rollbacks", "rbytes", "saved", "ratio", "overhead", "depths"],
        &rows,
    );
    println!("\nall plans recovered to bit-exact depths (raw and compressed wire)");
}
