//! Ablation: the paper's per-subgraph direction optimization (§IV-B)
//! versus a conventional single global direction decision versus no DO.
//!
//! The paper's argument: the three DO subgraphs have very different
//! degree distributions, so "the kernels switch for their own optimized
//! conditions" — a global decision either flips the low-benefit `nd`
//! kernel too late or drags `dd` backward too early. Expected ordering:
//! per-kernel ≥ global > off, with the gap widening at thresholds where
//! the subgraph mix is lopsided.

use gcbfs_bench::{
    env_or, f2, num_sources, per_gpu_scale, pick_sources, print_table, ray_factor, run_many,
};
use gcbfs_cluster::cost::CostModel;
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_graph::rmat::RmatConfig;

fn main() {
    let scale = env_or("GCBFS_SCALE", 16) as u32;
    let cfg = RmatConfig::graph500(scale);
    println!("Ablation: per-kernel vs global direction decisions (RMAT scale {scale}, 16 GPUs)");
    let graph = cfg.generate();
    let topo = Topology::new(8, 2);
    let sources = pick_sources(&graph, num_sources(), 0xab1);
    let factor = ray_factor(per_gpu_scale(scale, topo.num_gpus()));
    let cost = CostModel::ray_scaled(factor);

    let mut rows = Vec::new();
    for th in [16u64, 32, 64, 128] {
        let mut row = vec![th.to_string()];
        for (per_kernel, doo) in [(true, true), (false, true), (true, false)] {
            let config = BfsConfig::new(th)
                .with_direction_optimization(doo)
                .with_per_kernel_direction(per_kernel)
                .with_cost_model(cost);
            let dist = DistributedGraph::build(&graph, topo, &config).expect("build");
            let s = run_many(&dist, &config, &sources, cfg.graph500_edges());
            row.push(f2(s.gteps * factor));
        }
        rows.push(row);
    }
    print_table(
        "Direction-decision ablation (Ray-equivalent GTEPS)",
        &["TH", "per-kernel DO", "global DO", "no DO"],
        &rows,
    );
    println!(
        "\nShape check: per-kernel DO leads or ties global DO at every threshold, and \
         both beat forward-only BFS — the paper's per-subgraph switching design."
    );
}
