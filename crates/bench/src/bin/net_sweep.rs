//! §VI-A1 network microbenchmark: effective bandwidth vs message size.
//!
//! The paper swept MPI message sizes from 128 kB to 16 MB between 32 nodes
//! and found ~4 MB optimal for data larger than 2 MB. This binary sweeps
//! the same range against the network model and reports the effective
//! per-message throughput, confirming the model reproduces that optimum.

use gcbfs_bench::{f2, print_table};
use gcbfs_cluster::cost::NetworkModel;

fn main() {
    let net = NetworkModel::ray();
    println!("§VI-A1 reproduction: message-size sweep (modeled Ray InfiniBand + staging)");

    let mut rows = Vec::new();
    let mut best = (0u64, 0.0f64);
    for exp in 17..=24 {
        let bytes = 1u64 << exp; // 128 kB .. 16 MB
        let time = net.p2p_time(bytes, false);
        let throughput = bytes as f64 / time / 1e9;
        if throughput > best.1 {
            best = (bytes, throughput);
        }
        rows.push(vec![
            format!("{} kB", bytes / 1024),
            format!("{:.1}", time * 1e6),
            f2(throughput),
            f2(net.effective_internode_bandwidth(bytes) / 1e9),
        ]);
    }
    print_table(
        "Message-size sweep",
        &["message", "time (us)", "end-to-end GB/s", "wire GB/s"],
        &rows,
    );
    println!(
        "\nOptimum: {} kB at {:.2} GB/s (paper: ~4 MB optimal for data > 2 MB).",
        best.0 / 1024,
        best.1
    );
    assert!(
        (2 * 1024 * 1024..=8 * 1024 * 1024).contains(&best.0),
        "model optimum drifted away from ~4 MB"
    );
}
