//! Figure 7: suggested degree thresholds per RMAT scale, with the
//! resulting delegate and nn-edge percentages and the `4n/p` guide line.
//!
//! The paper's recipe (§VI-B): keep the delegate count `d` under `4n/p`
//! and the nn-edge share under ~10%; the suggested `TH` then grows by
//! about √2 per scale. We sweep scaled-down weak-scaling points (paper:
//! scales 25–33; default here: 13–20 with a scale-12 graph per GPU).

use gcbfs_bench::{env_or, pct, print_table};
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::distributor::{distribute, EdgeClass};
use gcbfs_core::separation::Separation;
use gcbfs_graph::rmat::RmatConfig;

fn main() {
    let base = env_or("GCBFS_SCALE", 13) as u32; // smallest scale (1 GPU)
    let per_gpu_scale = base - 1;
    let max_gpus = env_or("GCBFS_MAX_GPUS", 128) as u32;
    println!(
        "Fig. 7 reproduction: scales {base}..{} with a scale-{per_gpu_scale} graph per GPU \
         (paper: scales 25-33, scale-26 per GPU)",
        base + 7
    );

    let mut rows = Vec::new();
    for scale in base..=base + 7 {
        let p = (1u32 << (scale - per_gpu_scale - 1)).min(max_gpus);
        let topo = Topology::new(p.max(1), 1);
        let graph = RmatConfig::graph500(scale).generate();
        let degrees = graph.out_degrees();
        let n = graph.num_vertices as f64;
        let four_n_over_p = 4.0 / topo.num_gpus() as f64 * 100.0;

        // The √2-per-scale rule, anchored at our measured Fig. 6 optimum
        // (scale 16 → TH ≈ 24; the paper anchors its rule at its own
        // sweeps, scale 30 → TH 64).
        let th = BfsConfig::suggested_rmat_threshold(scale + 13).max(2);
        let sep = Separation::from_degrees(&degrees, th);
        let delegate_pct = 100.0 * sep.num_delegates() as f64 / n;
        let dist = distribute(&graph, &sep, &degrees, &topo);
        let nn_pct = dist.class_counts.percentage(EdgeClass::Nn);
        rows.push(vec![
            scale.to_string(),
            topo.num_gpus().to_string(),
            th.to_string(),
            pct(delegate_pct),
            pct(nn_pct),
            pct(four_n_over_p),
            if delegate_pct <= four_n_over_p { "yes" } else { "NO" }.to_string(),
        ]);
    }
    print_table(
        "Fig. 7 — suggested TH per scale (weak scaling)",
        &["scale", "GPUs", "TH", "delegates", "nn edges", "4n/p line", "d<=4n/p"],
        &rows,
    );
    println!(
        "\nShape check: TH grows ~sqrt(2)/scale; delegate%% stays below the 4n/p line at \
         the large-scale end (paper: 1.75%% vs 3.23%% at scale 33); nn%% creeps up but \
         stays acceptable (paper: 6.3%% at scale 33)."
    );
}
