//! The full Graph500 benchmark protocol (the contest the paper enters):
//! generate a scale-N RMAT graph, build the distributed structure, run BFS
//! from 64 random sources, validate every result, and report the TEPS
//! statistics the list requires.
//!
//! `GCBFS_SCALE` (default 15), `GCBFS_GPUS` (default 16).

use gcbfs_bench::{env_or, f2, per_gpu_scale, pick_sources, print_table, ray_factor};
use gcbfs_cluster::cost::CostModel;
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_core::stats::geometric_mean;
use gcbfs_graph::reference::{validate_depths, validate_parents};
use gcbfs_graph::rmat::RmatConfig;
use gcbfs_graph::Csr;

fn main() {
    let scale = env_or("GCBFS_SCALE", 15) as u32;
    let gpus = env_or("GCBFS_GPUS", 16) as u32;
    let cfg = RmatConfig::graph500(scale);
    println!("Graph500 protocol run: scale {scale}, edge factor 16, {gpus} simulated GPUs");

    // Kernel 0 in Graph500 terms: construction.
    let t0 = std::time::Instant::now();
    let graph = cfg.generate();
    let gen_secs = t0.elapsed().as_secs_f64();
    let th = BfsConfig::suggested_rmat_threshold(scale + 13).max(8);
    let factor = ray_factor(per_gpu_scale(scale, gpus));
    let config = BfsConfig::new(th)
        .with_blocking_reduce(gpus >= 32)
        .with_cost_model(CostModel::ray_scaled(factor));
    let topo = if gpus >= 2 { Topology::new(gpus / 2, 2) } else { Topology::new(1, 1) };
    let t1 = std::time::Instant::now();
    let dist = DistributedGraph::build(&graph, topo, &config).expect("build");
    let build_secs = t1.elapsed().as_secs_f64();
    println!(
        "construction: generate {gen_secs:.2}s, distribute+build {build_secs:.2}s (wall); \
         TH {th}, {} delegates, {:.2} MiB total graph storage",
        dist.separation().num_delegates(),
        dist.total_graph_bytes() as f64 / (1 << 20) as f64
    );

    // Kernel 1: 64 BFS runs with validation.
    let sources = pick_sources(&graph, 64, 0x6500);
    let csr = Csr::from_edge_list(&graph);
    let mut rates = Vec::new();
    let mut validated = 0usize;
    for &s in &sources {
        let r = dist.run_with_parents(s, &config).expect("run");
        if r.iterations() <= 1 {
            continue;
        }
        validate_depths(&csr, s, &r.depths).expect("Graph500 depth validation");
        validate_parents(&csr, s, &r.depths, r.parents.as_ref().unwrap())
            .expect("Graph500 tree validation");
        validated += 1;
        rates.push(r.teps(cfg.graph500_edges()) * factor);
    }
    assert!(validated >= 32, "too few multi-iteration sources");

    // The Graph500 result table: min / quartiles / max, harmonic and
    // geometric means of TEPS.
    let mut sorted = rates.clone();
    sorted.sort_by(f64::total_cmp);
    let q = |f: f64| sorted[((sorted.len() - 1) as f64 * f) as usize];
    let harmonic = sorted.len() as f64 / sorted.iter().map(|r| 1.0 / r).sum::<f64>();
    let rows = vec![
        vec!["min".into(), f2(q(0.0) / 1e9)],
        vec!["firstquartile".into(), f2(q(0.25) / 1e9)],
        vec!["median".into(), f2(q(0.5) / 1e9)],
        vec!["thirdquartile".into(), f2(q(0.75) / 1e9)],
        vec!["max".into(), f2(q(1.0) / 1e9)],
        vec!["harmonic_mean".into(), f2(harmonic / 1e9)],
        vec!["geometric_mean".into(), f2(geometric_mean(&rates) / 1e9)],
    ];
    print_table(
        &format!("Graph500 TEPS statistics ({validated} validated searches, Ray-eq GTEPS)"),
        &["statistic", "GTEPS"],
        &rows,
    );
    println!("\nAll {validated} searches passed depth and parent-tree validation.");
}
