//! Figure 1: placing this work in the context of other large-scale BFS
//! projects — scale vs processor count (left) and per-processor throughput
//! vs cluster size (right).
//!
//! Figure 1 is a literature survey; its points are the published numbers
//! of prior systems (reproduced verbatim below from the paper's
//! annotations) plus the paper's own point `[T]`. We re-emit the survey
//! data as two series tables and append this reproduction's measured
//! weak-scaling point for comparison of the *shape*: `[T]` sits lower-right
//! on the left plot (larger graphs with fewer processors) and upper-right
//! on the right plot (high per-processor throughput at cluster scale).

use gcbfs_bench::{
    f2, num_sources, per_gpu_scale, pick_sources, print_table, ray_factor, run_many,
};
use gcbfs_cluster::cost::CostModel;
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_graph::rmat::RmatConfig;

struct Point {
    label: &'static str,
    category: &'static str,
    scale: u32,
    processors: u32,
    gteps: f64,
}

const SURVEY: &[Point] = &[
    Point {
        label: "[5] Pan (Gunrock)",
        category: "GPU 1 node",
        scale: 26,
        processors: 4,
        gteps: 46.1,
    },
    Point { label: "[9] Yasui", category: "CPU 1 node", scale: 33, processors: 128, gteps: 174.7 },
    Point {
        label: "[9] Yasui (27)",
        category: "CPU 1 node",
        scale: 27,
        processors: 1,
        gteps: 40.0,
    },
    Point {
        label: "[16] Buluc",
        category: "CPU cluster",
        scale: 36,
        processors: 4096,
        gteps: 850.0,
    },
    Point {
        label: "[16] Buluc (33)",
        category: "CPU cluster",
        scale: 33,
        processors: 1024,
        gteps: 240.0,
    },
    Point {
        label: "[14] Ueno (37)",
        category: "CPU cluster",
        scale: 37,
        processors: 8192,
        gteps: 5363.0,
    },
    Point {
        label: "[14] Ueno (40)",
        category: "CPU cluster",
        scale: 40,
        processors: 82944,
        gteps: 38621.4,
    },
    Point {
        label: "[15] Lin (40)",
        category: "CPU cluster",
        scale: 40,
        processors: 40768,
        gteps: 23755.7,
    },
    Point { label: "[19] Fu", category: "GPU cluster", scale: 27, processors: 64, gteps: 29.1 },
    Point { label: "[21] Young", category: "GPU cluster", scale: 27, processors: 64, gteps: 3.26 },
    Point {
        label: "[20] Krajecki",
        category: "GPU cluster",
        scale: 29,
        processors: 64,
        gteps: 13.7,
    },
    Point {
        label: "[18] Bernaschi",
        category: "GPU cluster",
        scale: 33,
        processors: 4096,
        gteps: 828.39,
    },
    Point {
        label: "[17] Ueno GPU",
        category: "GPU cluster",
        scale: 35,
        processors: 4096,
        gteps: 317.0,
    },
    Point {
        label: "[1] TSUBAME",
        category: "GPU cluster",
        scale: 35,
        processors: 4096,
        gteps: 462.25,
    },
    Point {
        label: "[T] This paper",
        category: "GPU cluster",
        scale: 33,
        processors: 124,
        gteps: 259.8,
    },
];

fn main() {
    println!("Fig. 1 reproduction: survey data (paper-reported) + this reproduction's point");

    let rows: Vec<Vec<String>> = SURVEY
        .iter()
        .map(|p| {
            vec![
                p.label.to_string(),
                p.category.to_string(),
                p.scale.to_string(),
                p.processors.to_string(),
                f2(p.gteps),
                format!("{:.3}", p.gteps / p.processors as f64),
            ]
        })
        .collect();
    print_table(
        "Fig. 1 — survey series (GTEPS and GTEPS/processor)",
        &["work", "category", "scale", "processors", "GTEPS", "GTEPS/proc"],
        &rows,
    );

    // Our measured point at the reproduction's weak-scaling end.
    let scale = 18u32;
    let gpus = 64u32;
    let cfg = RmatConfig::graph500(scale);
    let graph = cfg.generate();
    let th = BfsConfig::suggested_rmat_threshold(scale + 15).max(8);
    let factor = ray_factor(per_gpu_scale(scale, gpus));
    let config = BfsConfig::new(th)
        .with_blocking_reduce(true)
        .with_cost_model(CostModel::ray_scaled(factor));
    let dist = DistributedGraph::build(&graph, Topology::new(gpus / 2, 2), &config).expect("build");
    let sources = pick_sources(&graph, num_sources(), 0xf01);
    let s = run_many(&dist, &config, &sources, cfg.graph500_edges());
    println!(
        "\n[repro] scale {scale} on {gpus} simulated GPUs: {:.2} Ray-equivalent GTEPS, \
         {:.3} GTEPS/GPU",
        s.gteps * factor,
        s.gteps * factor / gpus as f64
    );
    println!(
        "Shape check: like [T], the repro point combines cluster-scale processor counts \
         with per-processor throughput near the single-node points — the gap Fig. 1 \
         highlights against other GPU clusters."
    );
}
