//! Figure 11: strong scaling on a fixed RMAT graph
//! (paper: scale 30 on 12–64 GPUs; default here: scale 16 on 4–64 GPUs).
//!
//! Expected shape (paper): DOBFS improves modestly, then flattens, then
//! *drops* once communication dominates and GPUs are under-utilized;
//! plain BFS strong-scales better because it has more computation to
//! amortize.

use gcbfs_bench::{
    env_or, f2, num_sources, per_gpu_scale, pick_sources, print_table, ray_factor, run_many,
};
use gcbfs_cluster::cost::CostModel;
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_graph::rmat::RmatConfig;

fn main() {
    let scale = env_or("GCBFS_SCALE", 16) as u32;
    let max_gpus = env_or("GCBFS_MAX_GPUS", 64) as u32;
    let cfg = RmatConfig::graph500(scale);
    println!("Fig. 11 reproduction: strong scaling, RMAT scale {scale} (paper: scale 30)");
    let graph = cfg.generate();
    let th = BfsConfig::suggested_rmat_threshold(scale + 13).max(8);
    let sources = pick_sources(&graph, num_sources(), 0xf11);

    let mut rows = Vec::new();
    let mut gpus = 4u32;
    // Strong scaling: the graph is fixed, so the workload factor is fixed
    // by the *smallest* configuration's per-GPU share; larger GPU counts
    // then genuinely have less work per GPU, exactly as on Ray.
    let factor = ray_factor(per_gpu_scale(scale, 4));
    let cost = CostModel::ray_scaled(factor);
    while gpus <= max_gpus {
        let blocking = gpus >= 32;
        let mut row = vec![gpus.to_string()];
        for topo in [Topology::new(gpus / 2, 2), Topology::new(gpus / 4, 4)] {
            for use_do in [false, true] {
                let config = BfsConfig::new(th)
                    .with_direction_optimization(use_do)
                    .with_blocking_reduce(blocking)
                    .with_cost_model(cost);
                let dist = DistributedGraph::build(&graph, topo, &config).expect("build");
                let s = run_many(&dist, &config, &sources, cfg.graph500_edges());
                row.push(f2(s.gteps * factor));
            }
        }
        rows.push(row);
        gpus *= 2;
    }
    print_table(
        &format!("Fig. 11 — strong scaling, Ray-equivalent GTEPS (RMAT scale {scale})"),
        &["GPUs", "2x2 BFS", "2x2 DO", "1x4 BFS", "1x4 DO"],
        &rows,
    );
    println!(
        "\nShape check: DOBFS gains early, flattens, then declines as communication \
         dominates; BFS strong-scales further thanks to its larger compute share."
    );
}
