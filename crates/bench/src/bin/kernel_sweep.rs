//! Kernel-variant bench: what the raw-speed overhaul buys.
//!
//! Runs the same traversal under the {scalar, word-parallel} kernel
//! variants with the compute/comm overlap pipeline off and on, and
//! reports GTEPS plus modeled elapsed per cell — the
//! `BENCH_kernels.json` trajectory future PRs regress against. The
//! scalar variant prices per-bit mask probing on a derated device; the
//! word-parallel default is the seed's charge model bit-for-bit.
//!
//! Environment knobs: `GCBFS_SCALE` (default 20), `GCBFS_GPUS` (default
//! 16), `GCBFS_TH`. `GCBFS_JSON_OUT=/path.json` writes the JSON
//! document to a file.
//!
//! `--smoke` additionally asserts the acceptance gates: word-parallel
//! must be at least 1.5x the scalar GTEPS, the overlap pipeline must
//! hide at least half of the nn-exchange wire seconds on a
//! direction-switching run, and depths must be bit-exact across the
//! whole matrix.
//!
//! Usage: `cargo run --release --bin kernel_sweep [-- --smoke]`

use gcbfs_bench::{env_or, f2, pct, print_table};
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_core::kernels::KernelVariant;
use gcbfs_core::trace::{direction_trajectory, is_single_switch, Kernel};
use gcbfs_graph::rmat::RmatConfig;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = env_or("GCBFS_SCALE", 20) as u32;
    let gpus = env_or("GCBFS_GPUS", 16) as u32;
    let th = env_or("GCBFS_TH", BfsConfig::suggested_rmat_threshold(scale + 13).max(8));
    let topo = if gpus >= 2 { Topology::new(gpus / 2, 2) } else { Topology::new(1, 1) };
    let p = topo.num_gpus() as usize;
    let config = BfsConfig::new(th);
    let graph = RmatConfig::graph500(scale).generate();
    let m_half = graph.num_edges() / 2;
    let degrees = graph.out_degrees();
    let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
    println!("Kernel sweep: RMAT scale {scale}, TH {th}, {p} GPUs, source {source}");

    let dist = DistributedGraph::build(&graph, topo, &config).expect("build");
    let mut rows = Vec::new();
    let mut cell_json = Vec::new();
    let mut baseline_depths = Vec::new();
    // Per (variant, overlap) cell: modeled seconds, plus the word-parallel
    // runs' wire seconds for the overlap gate.
    let mut modeled = Vec::new();
    let mut word_wire_seconds = 0.0f64;
    let mut trajectory = String::new();
    for variant in [KernelVariant::Scalar, KernelVariant::WordParallel] {
        for overlap in [false, true] {
            let cfg = config.with_kernel_variant(variant).with_overlap(overlap);
            let r = dist.run(source, &cfg).expect("clean run");
            if baseline_depths.is_empty() {
                baseline_depths = r.depths.clone();
            } else {
                assert_eq!(
                    r.depths,
                    baseline_depths,
                    "variant {} overlap {overlap} changed depths",
                    variant.label()
                );
            }
            if variant == KernelVariant::WordParallel && !overlap {
                word_wire_seconds =
                    r.stats.records.iter().map(|rec| rec.timing.phases.remote_normal).sum::<f64>();
                trajectory = direction_trajectory(&r, Kernel::Dd);
            }
            let s = r.modeled_seconds();
            rows.push(vec![
                variant.label().into(),
                if overlap { "on" } else { "off" }.into(),
                f2(r.gteps(m_half)),
                f2(s * 1e3),
            ]);
            cell_json.push(format!(
                "{{\"variant\":\"{}\",\"overlap\":{overlap},\"gteps\":{},\"modeled_ms\":{}}}",
                variant.label(),
                r.gteps(m_half),
                s * 1e3
            ));
            modeled.push(s);
        }
    }
    print_table(
        &format!("kernel variants (scale {scale}, {p} GPUs)"),
        &["variant", "overlap", "GTEPS", "modeled ms"],
        &rows,
    );

    // modeled[]: [scalar/off, scalar/on, word/off, word/on].
    let speedup = modeled[0] / modeled[2];
    let hidden = modeled[2] - modeled[3];
    let hidden_frac = if word_wire_seconds > 0.0 { hidden / word_wire_seconds } else { 0.0 };
    println!(
        "\nword-parallel vs scalar: {}x; overlap hides {} of {} ms nn-exchange wire time \
         (trajectory {trajectory})",
        f2(speedup),
        pct(hidden_frac * 100.0),
        f2(word_wire_seconds * 1e3)
    );

    let doc = format!(
        "{{\"bench\":\"kernels\",\"scale\":{scale},\"gpus\":{p},\"th\":{th},\
         \"cells\":[{}],\"word_speedup\":{speedup},\"wire_seconds\":{word_wire_seconds},\
         \"wire_hidden_frac\":{hidden_frac},\"dd_trajectory\":\"{trajectory}\",\
         \"depths_bit_exact\":true}}",
        cell_json.join(",")
    );
    println!("\n{doc}");
    if let Ok(path) = std::env::var("GCBFS_JSON_OUT") {
        std::fs::write(&path, &doc).expect("write GCBFS_JSON_OUT");
        println!("json written to {path}");
    }
    if smoke {
        assert!(
            speedup >= 1.5,
            "word-parallel speedup {}x below the 1.5x acceptance gate",
            f2(speedup)
        );
        assert!(
            trajectory.contains('B') && is_single_switch(&trajectory),
            "gate run must switch direction once (dd trajectory {trajectory})"
        );
        assert!(
            hidden_frac >= 0.5,
            "overlap hides only {} of the nn-exchange wire seconds (gate: 50%)",
            pct(hidden_frac * 100.0)
        );
        println!(
            "\nsmoke: {}x word-parallel speedup, {} of wire hidden, depths bit-exact",
            f2(speedup),
            pct(hidden_frac * 100.0)
        );
    }
}
