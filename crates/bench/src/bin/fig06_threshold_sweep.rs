//! Figure 6: traversal rate vs degree threshold for BFS and DOBFS
//! (paper: scale-30 RMAT on 4×1×4; default here: scale 16 on 4×1×4,
//! override with `GCBFS_SCALE`).
//!
//! Expected shape (paper): a wide plateau of near-optimal thresholds
//! (45–90 there), with DOBFS well above BFS everywhere.

use gcbfs_bench::{
    env_or, f2, num_sources, per_gpu_scale, pick_sources, print_table, ray_factor, run_many,
};
use gcbfs_cluster::cost::CostModel;
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_graph::rmat::RmatConfig;

fn main() {
    let scale = env_or("GCBFS_SCALE", 16) as u32;
    let cfg = RmatConfig::graph500(scale);
    println!("Fig. 6 reproduction: RMAT scale {scale}, 4x1x4 GPUs (paper: scale 30)");
    let graph = cfg.generate();
    let topo = Topology::from_paper_notation(4, 1, 4);
    let sources = pick_sources(&graph, num_sources(), 0xf16);
    let factor = ray_factor(per_gpu_scale(scale, topo.num_gpus()));
    let cost = CostModel::ray_scaled(factor);

    let mut rows = Vec::new();
    for th in [8u64, 16, 24, 32, 48, 64, 96, 128, 192, 256] {
        let bfs_cfg = BfsConfig::new(th).with_direction_optimization(false).with_cost_model(cost);
        let do_cfg = BfsConfig::new(th).with_cost_model(cost);
        let dist = DistributedGraph::build(&graph, topo, &bfs_cfg).expect("build");
        let bfs = run_many(&dist, &bfs_cfg, &sources, cfg.graph500_edges());
        let dobfs = run_many(&dist, &do_cfg, &sources, cfg.graph500_edges());
        rows.push(vec![th.to_string(), f2(bfs.gteps * factor), f2(dobfs.gteps * factor)]);
    }
    print_table(
        &format!("Fig. 6 — Ray-equivalent GTEPS vs TH (RMAT scale {scale}, 16 GPUs)"),
        &["TH", "BFS GTEPS", "DOBFS GTEPS"],
        &rows,
    );
    println!("\nShape check: wide near-optimal TH plateau; DOBFS > BFS throughout.");
}
