//! Figure 10: runtime breakdown along the weak-scaling curve for the
//! `*×2×2` setup, DOBFS (left) and BFS (right)
//! (paper: scales 26–33; default here: scales 12–18 with a scale-12 graph
//! per GPU).
//!
//! Expected shape (paper): computation grows slowly (≈4× over 7 scales for
//! DOBFS, ≈3× for BFS); communication grows slightly faster; the sum of
//! parts exceeds elapsed because of overlap (~10%). The pipeline runs
//! with compute/comm overlap on, so the `hidden` column shows how much
//! wire time disappears behind compute at each point on the curve.

use gcbfs_bench::{env_or, f2, num_sources, pct, pick_sources, print_table, ray_factor, run_many};
use gcbfs_cluster::cost::CostModel;
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_graph::rmat::RmatConfig;

fn main() {
    let per_gpu_scale = env_or("GCBFS_SCALE", 12) as u32;
    let max_gpus = env_or("GCBFS_MAX_GPUS", 64) as u32;
    println!(
        "Fig. 10 reproduction: breakdown along weak scaling, *x2x2, scale-{per_gpu_scale} per GPU \
         (paper: scales 26-33)"
    );

    for use_do in [true, false] {
        let mut rows = Vec::new();
        let mut gpus = 1u32;
        while gpus <= max_gpus {
            let scale = per_gpu_scale + gpus.ilog2();
            let cfg = RmatConfig::graph500(scale);
            let graph = cfg.generate();
            let th = BfsConfig::suggested_rmat_threshold(scale + 13).max(8);
            let topo =
                if gpus == 1 { Topology::new(1, 1) } else { Topology::new((gpus / 2).max(1), 2) };
            // Paper: scales 28-30 unblocking, 31-33 blocking.
            let blocking = gpus >= 32;
            let config = BfsConfig::new(th)
                .with_direction_optimization(use_do)
                .with_blocking_reduce(blocking)
                .with_overlap(true)
                .with_cost_model(CostModel::ray_scaled(ray_factor(per_gpu_scale)));
            let dist = DistributedGraph::build(&graph, topo, &config).expect("build");
            let sources = pick_sources(&graph, num_sources(), 0xf10 + gpus as u64);
            let s = run_many(&dist, &config, &sources, cfg.graph500_edges());
            let hidden = s.phases_ms.sum() - s.elapsed_ms;
            let comm = s.phases_ms.sum() - s.phases_ms.computation;
            let hidden_pct = if comm > 0.0 { hidden / comm * 100.0 } else { 0.0 };
            rows.push(vec![
                scale.to_string(),
                gpus.to_string(),
                f2(s.phases_ms.computation),
                f2(s.phases_ms.local_comm),
                f2(s.phases_ms.remote_normal),
                f2(s.phases_ms.remote_delegate),
                f2(s.elapsed_ms),
                f2(s.phases_ms.sum()),
                format!("{} ({})", f2(hidden), pct(hidden_pct)),
            ]);
            gpus *= 2;
        }
        print_table(
            &format!(
                "Fig. 10 — {} breakdown along weak scaling (ms, modeled)",
                if use_do { "DOBFS" } else { "BFS" }
            ),
            &[
                "scale",
                "GPUs",
                "Computation",
                "Local Comm",
                "Remote Normal",
                "Remote Delegate",
                "elapsed",
                "sum of parts",
                "hidden (of comm)",
            ],
            &rows,
        );
    }
    println!(
        "\nShape check: computation grows only a few x across the whole sweep; \
         communication grows slightly faster; sum of parts > elapsed because the \
         pipeline hides wire time behind compute (the hidden column)."
    );
}
