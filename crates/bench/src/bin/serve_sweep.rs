//! Saturation bench for the multi-tenant serving layer.
//!
//! Ramps open-loop Poisson offered load from well below the no-batching
//! capacity to past the batched capacity, for two scheduler policies on
//! the same arrival sequences:
//!
//! * `batch64` — MS-BFS coalescing up to 64 distinct sources per sweep;
//! * `batch1` — the no-batching baseline (one sweep per query).
//!
//! Reports per-QPS p50/p95/p99 latency, queue wait, goodput (on-time
//! completions per modeled second), shed rate and sharing factor, and
//! emits the `results/BENCH_serve.json` trajectory document.
//!
//! Environment knobs: `GCBFS_SCALE` (default 20), `GCBFS_GPUS` (16),
//! `GCBFS_TH`, `GCBFS_SEED` (42), `GCBFS_ARRIVALS` (256 per QPS point),
//! `GCBFS_POOL` (64 distinct sources), `GCBFS_QUEUE` (admission queue
//! bound, 96), `GCBFS_JSON_OUT=/path.json`.
//!
//! `--smoke` additionally asserts the acceptance gates: sharing factor
//! at least 8x at the saturated batch-64 point, batched peak goodput at
//! least 4x the batch-1 peak, p99 monotone non-decreasing in offered
//! load, and bit-identical reports on a repeated run.
//!
//! Usage: `cargo run --release --bin serve_sweep [-- --smoke]`

use gcbfs_bench::{env_or, f2, pct, pick_sources, print_table};
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_graph::rmat::RmatConfig;
use gcbfs_serve::{generate, BatchPolicy, ServeReport, TenantSpec, TraversalService, WorkloadSpec};

/// One measured point of the ramp.
struct Point {
    qps: f64,
    report: ServeReport,
}

/// Ramp parameters shared by both scheduler policies.
struct Ramp<'a> {
    qps_list: &'a [f64],
    arrivals: usize,
    seed: u64,
    deadline: f64,
    pool: &'a [u64],
    tenants: &'a [TenantSpec],
}

fn run_ramp(svc: &mut TraversalService<'_>, policy: BatchPolicy, ramp: &Ramp<'_>) -> Vec<Point> {
    svc.set_policy(policy);
    ramp.qps_list
        .iter()
        .map(|&qps| {
            let spec = WorkloadSpec::bfs_only(qps, ramp.arrivals, ramp.seed, ramp.pool.to_vec())
                .with_deadline(ramp.deadline)
                .with_tenant_shares(vec![4.0, 2.0, 1.0, 1.0]);
            let workload = generate(&spec, ramp.tenants);
            Point { qps, report: svc.run(&workload) }
        })
        .collect()
}

fn point_json(p: &Point) -> String {
    let r = &p.report;
    format!(
        "{{\"qps\":{:.3},\"offered\":{},\"completed\":{},\"shed_rate\":{:.6},\
         \"p50_ms\":{:.6},\"p95_ms\":{:.6},\"p99_ms\":{:.6},\"queue_wait_p99_ms\":{:.6},\
         \"goodput_qps\":{:.6},\"mean_batch\":{:.3},\"sharing\":{:.4}}}",
        p.qps,
        r.offered,
        r.completed,
        r.shed_rate,
        r.latency.p50 * 1e3,
        r.latency.p95 * 1e3,
        r.latency.p99 * 1e3,
        r.queue_wait.p99 * 1e3,
        r.goodput_qps,
        r.mean_batch,
        r.sharing_factor
    )
}

fn print_ramp(title: &str, points: &[Point]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let r = &p.report;
            vec![
                f2(p.qps),
                r.offered.to_string(),
                f2(r.latency.p50 * 1e3),
                f2(r.latency.p95 * 1e3),
                f2(r.latency.p99 * 1e3),
                f2(r.goodput_qps),
                pct(r.shed_rate * 100.0),
                f2(r.mean_batch),
                f2(r.sharing_factor),
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "offered QPS",
            "queries",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "goodput",
            "shed",
            "batch",
            "sharing",
        ],
        &rows,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = env_or("GCBFS_SCALE", 20) as u32;
    let gpus = env_or("GCBFS_GPUS", 16) as u32;
    let th = env_or("GCBFS_TH", BfsConfig::suggested_rmat_threshold(scale + 13).max(8));
    let seed = env_or("GCBFS_SEED", 42);
    let arrivals = env_or("GCBFS_ARRIVALS", 256) as usize;
    let pool_size = env_or("GCBFS_POOL", 64) as usize;
    // A bounded queue makes backpressure visible: past the knee the
    // open-loop backlog exceeds the limit and excess load is shed with
    // typed rejections instead of queueing without bound.
    let queue_limit = env_or("GCBFS_QUEUE", 96) as usize;
    let topo = if gpus >= 2 { Topology::new(gpus / 2, 2) } else { Topology::new(1, 1) };
    let p = topo.num_gpus() as usize;
    // MS-BFS is forward-only; direction optimization does not compose
    // with source batching, so both modes serve forward sweeps.
    let config = BfsConfig::new(th).with_direction_optimization(false);
    println!("Serve sweep: RMAT scale {scale}, TH {th}, {p} GPUs, {arrivals} arrivals/point");

    let graph = RmatConfig::graph500(scale).generate();
    let dist = DistributedGraph::build(&graph, topo, &config).expect("build");
    let pool = pick_sources(&graph, pool_size, seed);

    // Calibrate the ramp on the two capacity anchors: one single-source
    // sweep (batch-1 service time) and one full-width sweep.
    let t1 = dist.run_multi_source(&pool[..1], &config).expect("probe").modeled_seconds;
    let full = &pool[..pool.len().min(64)];
    let t64 = dist.run_multi_source(full, &config).expect("probe").modeled_seconds;
    let cap1 = 1.0 / t1;
    let cap64 = full.len() as f64 / t64;
    println!(
        "capacity anchors: single sweep {:.3} ms ({cap1:.1} QPS), \
         {}-wide sweep {:.3} ms ({cap64:.1} QPS)",
        t1 * 1e3,
        full.len(),
        t64 * 1e3
    );

    // Geometric ramp from half the baseline capacity past the batched
    // capacity — both saturation knees are inside the window.
    let lo = 0.5 * cap1;
    let hi = 2.0 * cap64;
    let points = 7usize;
    let qps_list: Vec<f64> =
        (0..points).map(|i| lo * (hi / lo).powf(i as f64 / (points - 1) as f64)).collect();
    let deadline = 10.0 * t64;
    let window = t1;

    let tenants = vec![
        TenantSpec::new(0, "interactive").with_weight(4.0),
        TenantSpec::new(1, "analytics").with_weight(2.0),
        TenantSpec::new(2, "batch-a").with_weight(1.0),
        TenantSpec::new(3, "batch-b").with_weight(1.0),
    ];
    let mut svc = TraversalService::new(&dist, config, tenants.clone(), BatchPolicy::default());

    let batched_policy = BatchPolicy::new(64, window).with_queue_limit(queue_limit);
    let baseline_policy = BatchPolicy::new(1, 0.0).with_queue_limit(queue_limit);
    let ramp =
        Ramp { qps_list: &qps_list, arrivals, seed, deadline, pool: &pool, tenants: &tenants };
    let batched = run_ramp(&mut svc, batched_policy, &ramp);
    let baseline = run_ramp(&mut svc, baseline_policy, &ramp);

    print_ramp(&format!("batch-64 scheduler (window {:.2} ms)", window * 1e3), &batched);
    print_ramp("batch-1 baseline (no coalescing)", &baseline);

    let peak = |pts: &[Point]| pts.iter().map(|p| p.report.goodput_qps).fold(0.0f64, f64::max);
    let batched_peak = peak(&batched);
    let baseline_peak = peak(&baseline);
    let ratio = batched_peak / baseline_peak.max(f64::MIN_POSITIVE);
    let knee_qps = batched
        .iter()
        .max_by(|a, b| a.report.goodput_qps.total_cmp(&b.report.goodput_qps))
        .map(|p| p.qps)
        .unwrap_or(0.0);
    let saturated = batched.last().expect("non-empty ramp");
    println!(
        "\npeak goodput: batched {batched_peak:.2} QPS vs baseline {baseline_peak:.2} QPS \
         ({ratio:.2}x), knee at ~{knee_qps:.1} offered QPS, \
         saturated sharing factor {:.2}x",
        saturated.report.sharing_factor
    );

    // Fairness at the knee: per-tenant p99 under the batched scheduler.
    let knee_point = batched
        .iter()
        .max_by(|a, b| a.report.goodput_qps.total_cmp(&b.report.goodput_qps))
        .expect("non-empty");
    let tenant_rows: Vec<Vec<String>> = knee_point
        .report
        .tenants
        .iter()
        .map(|t| {
            vec![
                t.name.clone(),
                t.offered.to_string(),
                t.completed.to_string(),
                f2(t.latency.p50 * 1e3),
                f2(t.latency.p99 * 1e3),
            ]
        })
        .collect();
    print_table(
        "per-tenant latency at the knee (batched)",
        &["tenant", "offered", "completed", "p50 ms", "p99 ms"],
        &tenant_rows,
    );

    let tenant_json: Vec<String> = knee_point
        .report
        .tenants
        .iter()
        .map(|t| {
            format!(
                "{{\"tenant\":\"{}\",\"offered\":{},\"completed\":{},\"p99_ms\":{:.6}}}",
                t.name,
                t.offered,
                t.completed,
                t.latency.p99 * 1e3
            )
        })
        .collect();
    let doc = format!(
        "{{\"bench\":\"serve\",\"scale\":{scale},\"gpus\":{p},\"th\":{th},\"seed\":{seed},\
         \"arrivals\":{arrivals},\"pool\":{},\"queue_limit\":{queue_limit},\
         \"deadline_ms\":{:.4},\"window_ms\":{:.4},\
         \"batched\":[{}],\"baseline\":[{}],\
         \"batched_peak_goodput\":{batched_peak:.6},\"baseline_peak_goodput\":{baseline_peak:.6},\
         \"goodput_ratio\":{ratio:.4},\"knee_qps\":{knee_qps:.3},\
         \"saturated_sharing\":{:.4},\"tenants_at_knee\":[{}]}}",
        pool.len(),
        deadline * 1e3,
        window * 1e3,
        batched.iter().map(point_json).collect::<Vec<_>>().join(","),
        baseline.iter().map(point_json).collect::<Vec<_>>().join(","),
        saturated.report.sharing_factor,
        tenant_json.join(",")
    );
    println!("\n{doc}");
    if let Ok(path) = std::env::var("GCBFS_JSON_OUT") {
        std::fs::write(&path, &doc).expect("write GCBFS_JSON_OUT");
        println!("json written to {path}");
    }

    if smoke {
        assert!(
            saturated.report.sharing_factor >= 8.0,
            "sharing factor {:.2} below the 8x acceptance bound at batch 64",
            saturated.report.sharing_factor
        );
        assert!(
            ratio >= 4.0,
            "batched goodput only {ratio:.2}x the no-batching baseline (needs >= 4x)"
        );
        for w in batched.windows(2) {
            assert!(
                w[1].report.latency.p99 >= w[0].report.latency.p99 * 0.98,
                "batched p99 not monotone in offered load: {:.4} ms then {:.4} ms",
                w[0].report.latency.p99 * 1e3,
                w[1].report.latency.p99 * 1e3
            );
        }
        // Bit-reproducibility: repeat the saturated point and compare.
        svc.set_policy(BatchPolicy::new(64, window).with_queue_limit(queue_limit));
        let spec = WorkloadSpec::bfs_only(saturated.qps, arrivals, seed, pool.clone())
            .with_deadline(deadline)
            .with_tenant_shares(vec![4.0, 2.0, 1.0, 1.0]);
        let workload = generate(&spec, &tenants);
        let again = svc.run(&workload);
        assert_eq!(
            again.latency.p99.to_bits(),
            saturated.report.latency.p99.to_bits(),
            "repeated serving run drifted"
        );
        assert_eq!(again.goodput_qps.to_bits(), saturated.report.goodput_qps.to_bits());
        assert_eq!(again.metrics, saturated.report.metrics);
        println!(
            "\nsmoke: sharing {:.2}x >= 8x, goodput ratio {ratio:.2}x >= 4x, \
             p99 monotone, repeat run bit-identical",
            saturated.report.sharing_factor
        );
    }
}
