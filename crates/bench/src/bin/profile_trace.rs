//! Structured-trace profile of an observed BFS run.
//!
//! Runs the distributed BFS with
//! [`ObservabilityConfig::Full`](gcbfs_trace::ObservabilityConfig) over a
//! small matrix of configurations (raw vs adaptive-compressed wire,
//! fault-free vs message-fault chaos) and reports what the trace recorded:
//! span counts, per-channel message bytes, and the critical-path phase
//! attribution. Every run re-checks the subsystem's two load-bearing
//! identities:
//!
//! * the trace's critical-path total equals the run's modeled elapsed
//!   time bit-for-bit, and
//! * the Chrome `trace_event` export passes the in-tree schema validator
//!   and the JSON-lines export parses back to the same totals.
//!
//! Environment knobs: `GCBFS_PROFILE_OUT=/path.json` writes the fault-free
//! compressed run's Chrome trace to a file (the CI smoke artifact);
//! `GCBFS_JSONL_OUT=/path.jsonl` writes its JSON-lines document.
//!
//! Usage: `cargo run --release --bin profile_trace [-- --smoke]`
//! (`--smoke` shrinks to scale 10 for CI).

use gcbfs_bench::{f2, print_table};
use gcbfs_cluster::fault::FaultPlan;
use gcbfs_cluster::topology::Topology;
use gcbfs_compress::CompressionMode;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::{BfsResult, DistributedGraph};
use gcbfs_graph::rmat::RmatConfig;
use gcbfs_trace::{chrome, json, jsonl, ObservabilityConfig, PhaseTag, TraceLog};

struct Case {
    label: &'static str,
    compression: CompressionMode,
    faults: Option<FaultPlan>,
}

fn cases() -> Vec<Case> {
    vec![
        Case { label: "raw", compression: CompressionMode::Off, faults: None },
        Case { label: "adaptive", compression: CompressionMode::Adaptive, faults: None },
        Case {
            label: "raw+chaos",
            compression: CompressionMode::Off,
            faults: Some(FaultPlan::new(99).with_message_faults(0.2, 0.1, 0.1).with_max_delay(2)),
        },
        Case {
            label: "adaptive+chaos",
            compression: CompressionMode::Adaptive,
            faults: Some(FaultPlan::new(99).with_message_faults(0.2, 0.1, 0.1).with_max_delay(2)),
        },
    ]
}

fn check_exports(label: &str, log: &TraceLog) -> (String, String) {
    let chrome_json = chrome::export_chrome(log);
    let events = json::validate_chrome_trace(&chrome_json)
        .unwrap_or_else(|e| panic!("{label}: chrome export failed validation: {e}"));
    assert!(events > 0, "{label}: chrome export must contain events");
    let lines = jsonl::export_jsonl(log);
    let summary = jsonl::summarize(&lines)
        .unwrap_or_else(|e| panic!("{label}: jsonl export failed to parse back: {e}"));
    assert_eq!(summary.phase_spans, log.phase_spans.len() as u64, "{label}: phase-span count");
    assert_eq!(summary.kernel_spans, log.kernel_spans.len() as u64, "{label}: kernel-span count");
    assert_eq!(summary.messages, log.messages.len() as u64, "{label}: message count");
    assert_eq!(summary.faults, log.faults.len() as u64, "{label}: fault count");
    assert_eq!(
        summary.total_seconds.to_bits(),
        log.critical_path().total_seconds().to_bits(),
        "{label}: jsonl critical-path total drifted"
    );
    (chrome_json, lines)
}

fn row(label: &str, r: &BfsResult) -> Vec<String> {
    let log = r.observed.as_ref().expect("observability was on");
    let cp = log.critical_path();
    assert_eq!(
        cp.total_seconds().to_bits(),
        r.modeled_seconds().to_bits(),
        "{label}: critical path must reproduce modeled time bit-for-bit"
    );
    let attr = cp.phase_attribution();
    let comp = attr[PhaseTag::Computation as usize];
    let remote: f64 =
        attr[PhaseTag::RemoteNormal as usize] + attr[PhaseTag::RemoteDelegate as usize];
    vec![
        label.to_string(),
        r.iterations().to_string(),
        log.phase_spans.len().to_string(),
        log.kernel_spans.len().to_string(),
        log.messages.len().to_string(),
        log.faults.len().to_string(),
        r.stats.total_remote_bytes().to_string(),
        f2(r.modeled_seconds() * 1e3),
        format!(
            "{:.0}%/{:.0}%",
            100.0 * comp / cp.total_seconds(),
            100.0 * remote / cp.total_seconds()
        ),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { 10 } else { 14 };
    let topo = Topology::new(2, 2);
    let th = BfsConfig::suggested_rmat_threshold(scale + 13).max(8);
    let graph = RmatConfig::graph500(scale).generate();
    let degrees = graph.out_degrees();
    let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;

    let mut rows = Vec::new();
    let mut artifact: Option<(String, String)> = None;
    for case in cases() {
        let config = BfsConfig::new(th)
            .with_compression(case.compression)
            .with_observability(ObservabilityConfig::Full);
        let dist = DistributedGraph::build(&graph, topo, &config).expect("build");
        let r = match &case.faults {
            Some(plan) => dist.run_with_faults(source, &config, plan).expect("faulted run"),
            None => dist.run(source, &config).expect("run"),
        };
        rows.push(row(case.label, &r));
        let exports = check_exports(case.label, r.observed.as_ref().unwrap());
        if case.label == "adaptive" {
            artifact = Some(exports);
        }
    }
    print_table(
        &format!("observed BFS, scale {scale}, TH {th}, {} GPUs, source {source}", topo.num_gpus()),
        &["case", "iters", "phase", "kernel", "msgs", "faults", "rbytes", "elap ms", "comp/net"],
        &rows,
    );
    println!(
        "all traces: chrome schema valid, jsonl roundtrip exact, critical path == modeled time"
    );

    let (chrome_json, lines) = artifact.expect("adaptive case ran");
    if let Ok(path) = std::env::var("GCBFS_PROFILE_OUT") {
        std::fs::write(&path, &chrome_json).expect("write GCBFS_PROFILE_OUT");
        println!("wrote chrome trace: {path} ({} bytes)", chrome_json.len());
    }
    if let Ok(path) = std::env::var("GCBFS_JSONL_OUT") {
        std::fs::write(&path, &lines).expect("write GCBFS_JSONL_OUT");
        println!("wrote jsonl trace: {path} ({} bytes)", lines.len());
    }
}
