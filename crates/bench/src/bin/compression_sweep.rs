//! Communication-compression sweep: what the codec layer buys on the wire.
//!
//! Not a paper figure — the paper ships its §V-B raw wire format (4 bytes
//! per nn update, `d/8` bytes per mask message) — but the natural question
//! its communication analysis raises: how much of that traffic is
//! entropy? For each RMAT scale the sweep runs every compression mode
//! over the same build and sources:
//!
//! * `off` — the paper's raw format (the seed baseline, bit-for-bit);
//! * `fixed(raw32/rawmask)` — the codec envelope with no compression:
//!   isolates header + floor overhead;
//! * `fixed(varint/sparse)` and `fixed(bitmap/rle)` — each codec family
//!   on its own;
//! * `adaptive` — per-message density-driven selection, the analogue of
//!   the paper's direction-optimization crossover (§IV-B).
//!
//! Every mode is verified to produce depths bit-identical to `off`, and on
//! each scale the densest iteration must ship strictly fewer bytes under
//! `adaptive` than under the raw32 envelope while paying nonzero codec
//! time — compression is modeled as work, not as a free discount.
//!
//! Environment knobs: `GCBFS_SCALES` (comma list, default `14,17,20`),
//! `GCBFS_TH` (overrides the per-scale suggested threshold).
//!
//! Usage: `cargo run --release --bin compression_sweep [-- --smoke]`
//! (`--smoke` shrinks to scales 10,12 for CI).

use gcbfs_bench::{env_or, f2, print_table};
use gcbfs_cluster::topology::Topology;
use gcbfs_compress::{CompressionMode, FrontierCodec, MaskCodec};
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::{BfsResult, DistributedGraph};
use gcbfs_core::trace::compression_trajectory;
use gcbfs_graph::rmat::RmatConfig;

fn modes() -> Vec<CompressionMode> {
    vec![
        CompressionMode::Off,
        CompressionMode::Fixed(FrontierCodec::Raw32, MaskCodec::RawMask),
        CompressionMode::Fixed(FrontierCodec::VarintDelta, MaskCodec::SparseIndex),
        CompressionMode::Fixed(FrontierCodec::Bitmap, MaskCodec::RleMask),
        CompressionMode::Adaptive,
    ]
}

/// Index of the iteration that transmits the most nn updates — the dense
/// regime where compression must pay for itself. Taken from the
/// uncompressed reference so every mode is compared on the same iteration.
fn dense_iteration(reference: &BfsResult) -> usize {
    reference
        .stats
        .records
        .iter()
        .enumerate()
        .max_by_key(|(_, rec)| rec.nn_updates_sent)
        .expect("a run has at least one iteration")
        .0
}

fn sweep_scale(scale: u32) -> (u64, u64) {
    let th = env_or("GCBFS_TH", BfsConfig::suggested_rmat_threshold(scale + 13).max(8));
    let topo = Topology::new(2, 2);
    let base = BfsConfig::new(th).with_local_all2all(true).with_uniquify(true);
    let graph = RmatConfig::graph500(scale).generate();
    let degrees = graph.out_degrees();
    let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
    let dist = DistributedGraph::build(&graph, topo, &base).expect("build");

    let reference = dist.run(source, &base).expect("off-mode run");
    let dense_iter = dense_iteration(&reference);
    let mut rows = Vec::new();
    let mut dense_raw32 = None;
    let mut dense_adaptive = None;
    let mut adaptive_saved = 0u64;
    let mut adaptive_wire = 0u64;
    for mode in modes() {
        let config = base.with_compression(mode);
        let r = dist.run(source, &config).expect("compressed run");
        assert_eq!(r.depths, reference.depths, "depths must be bit-exact under {mode}");
        assert_eq!(r.iterations(), reference.iterations(), "iteration count drifted under {mode}");
        let s = &r.stats;
        let dense_bytes = s.records[dense_iter].remote_bytes;
        match mode {
            CompressionMode::Fixed(FrontierCodec::Raw32, _) => dense_raw32 = Some(dense_bytes),
            CompressionMode::Adaptive => {
                dense_adaptive = Some((dense_bytes, s.total_codec_seconds()));
                adaptive_saved = s.total_bytes_saved();
                adaptive_wire = s.total_remote_bytes();
            }
            _ => {}
        }
        rows.push(vec![
            mode.label(),
            r.iterations().to_string(),
            s.total_remote_bytes().to_string(),
            s.total_bytes_saved().to_string(),
            format!("{:.3}", s.compression_ratio()),
            format!("{:.3}", s.total_codec_seconds() * 1e3),
            f2(r.modeled_seconds() * 1e3),
            format!("{dense_iter}:{dense_bytes}"),
            compression_trajectory(&r),
            "ok".into(),
        ]);
    }
    print_table(
        &format!("scale {scale}, TH {th}, {} GPUs, source {source}", topo.num_gpus()),
        &[
            "mode",
            "iters",
            "rbytes",
            "saved",
            "ratio",
            "codec ms",
            "elap ms",
            "dense it:B",
            "trajectory",
            "depths",
        ],
        &rows,
    );

    // The headline property: on the densest iteration the adaptive wire
    // beats the raw32 envelope outright, and the codec work is charged.
    let raw32 = dense_raw32.expect("raw32 mode ran");
    let (adaptive, codec_s) = dense_adaptive.expect("adaptive mode ran");
    assert!(
        adaptive < raw32,
        "scale {scale}: dense iteration must compress (adaptive {adaptive} vs raw32 {raw32})"
    );
    assert!(codec_s > 0.0, "scale {scale}: codec time must be nonzero when compression runs");
    (adaptive_saved, adaptive_wire)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scales: Vec<u32> = if smoke {
        vec![10, 12]
    } else {
        std::env::var("GCBFS_SCALES")
            .unwrap_or_else(|_| "14,17,20".into())
            .split(',')
            .map(|s| s.trim().parse().expect("GCBFS_SCALES entries are u32 scales"))
            .collect()
    };
    println!(
        "Compression sweep{}: RMAT scales {scales:?}, modes off / raw32 / varint / bitmap / \
         adaptive",
        if smoke { " (smoke)" } else { "" },
    );
    let mut total_saved = 0u64;
    let mut total_wire = 0u64;
    for &scale in &scales {
        let (saved, wire) = sweep_scale(scale);
        total_saved += saved;
        total_wire += wire;
    }
    println!(
        "\nall modes bit-exact on every scale; adaptive saved {total_saved} of {} raw remote \
         bytes ({:.1}%)",
        total_wire + total_saved,
        100.0 * total_saved as f64 / (total_wire + total_saved).max(1) as f64,
    );
}
