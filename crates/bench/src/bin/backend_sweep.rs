//! Backend sweep: the simulator vs the real multi-process runtime.
//!
//! Not a paper figure — the paper runs on a real GPU cluster — but the
//! repo's closest analogue: the same traversal executed (a) in the
//! deterministic modeled-time simulator and (b) in real worker OS
//! processes exchanging sealed frames over Unix-domain sockets. Three
//! measurements per worker width:
//!
//! 1. **Agreement**: depths and parents must be bit-exact across
//!    backends (the whole point of the shared-kernel design).
//! 2. **Throughput**: the sim's modeled GTEPS next to the proc
//!    backend's wall-clock GTEPS (host-CPU kernels; expect orders of
//!    magnitude below modeled Ray numbers — the column exists to track
//!    runtime overhead, not to flatter).
//! 3. **Traffic**: bytes the sim *models* crossing rank boundaries vs
//!    bytes the proc runtime *actually shipped* over sockets (frames,
//!    headers, seals, heartbeats included).
//!
//! Plus the recovery bill: a worker is SIGKILL'd mid-sweep, confirmed
//! dead by phi-accrual heartbeat silence, and recovered onto a spare
//! process (and, separately, spread onto survivors); the real
//! detect/re-home/total times are reported.
//!
//! Environment knobs: `GCBFS_SCALE` (default 12; `--smoke` 10),
//! `GCBFS_TH`. `GCBFS_JSON_OUT=/path.json` writes the measurements as
//! JSON (`results/BENCH_backend.json` in CI).
//!
//! Usage: `cargo run --release --bin backend_sweep [--smoke]`
//!
//! The binary is its own worker executable: the coordinator respawns it
//! as `backend_sweep worker --socket PATH --worker N` (hidden mode).

use gcbfs_bench::{env_or, f2, print_table};
use gcbfs_cluster::topology::Topology;
use gcbfs_core::backend::{Backend, BackendRun, ProcBackend, SimBackend};
use gcbfs_core::config::BfsConfig;
use gcbfs_core::procrt::{self, ChaosSpec, KillSpec, ProcOptions, RecoveryMode, WorkerCommand};
use gcbfs_graph::rmat::RmatConfig;
use gcbfs_graph::EdgeList;

fn ms(s: f64) -> f64 {
    s * 1e3
}

/// Hidden worker mode: `backend_sweep worker --socket PATH --worker N`.
fn worker_mode(args: &[String]) -> ! {
    let mut socket = None;
    let mut worker = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = it.next().cloned(),
            "--worker" => worker = it.next().and_then(|v| v.parse::<u32>().ok()),
            _ => {}
        }
    }
    let (socket, worker) = match (socket, worker) {
        (Some(s), Some(w)) => (s, w),
        _ => {
            eprintln!("worker mode needs --socket PATH --worker N");
            std::process::exit(2);
        }
    };
    match procrt::worker::run_worker(std::path::Path::new(&socket), worker) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("worker {worker}: {e}");
            std::process::exit(1);
        }
    }
}

fn worker_cmd() -> WorkerCommand {
    let exe = std::env::current_exe().expect("own path");
    WorkerCommand::new(exe, vec!["worker".to_string()])
}

fn run_proc(
    graph: &EdgeList,
    topo: Topology,
    source: u64,
    config: &BfsConfig,
    opts: ProcOptions,
) -> BackendRun {
    ProcBackend::new(worker_cmd(), opts)
        .run(graph, topo, source, config, true)
        .expect("proc backend run")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("worker") {
        worker_mode(&args[2..]);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = env_or("GCBFS_SCALE", if smoke { 10 } else { 12 }) as u32;
    let th = env_or("GCBFS_TH", 32);
    let topo = Topology::new(4, 2);
    let config = BfsConfig::new(th);
    let graph = RmatConfig::graph500(scale).generate();
    let degrees = graph.out_degrees();
    let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
    let g500_edges = graph.num_edges() / 2;
    println!(
        "Backend sweep: RMAT scale {scale}, TH {th}, {} GPUs ({}x{}), source {source}\n",
        topo.num_gpus(),
        topo.num_ranks(),
        topo.gpus_per_rank()
    );

    let sim = SimBackend.run(&graph, topo, source, &config, true).expect("sim run");
    let sim_result = sim.sim.as_ref().expect("sim result");
    let sim_gteps = sim_result.gteps(g500_edges);
    let modeled_bytes = sim_result.stats.total_remote_bytes();

    let mut rows = Vec::new();
    let mut width_json = Vec::new();
    let mut all_bit_exact = true;
    for procs in [1u32, 2, 4] {
        let opts = ProcOptions { workers: procs, ..ProcOptions::default() };
        let proc = run_proc(&graph, topo, source, &config, opts);
        let report = proc.proc.as_ref().expect("proc report");
        let bit_exact = proc.depths == sim.depths && proc.parents == sim.parents;
        all_bit_exact &= bit_exact;
        let proc_gteps = g500_edges as f64 / report.wall_seconds.max(1e-12) / 1e9;
        rows.push(vec![
            format!("{procs}"),
            format!("{}", report.iterations),
            format!("{:.4}", sim_gteps),
            format!("{:.6}", proc_gteps),
            f2(ms(report.wall_seconds)),
            format!("{modeled_bytes}"),
            format!("{}", report.wire_bytes),
            f2(report.wire_bytes as f64 / modeled_bytes.max(1) as f64),
            if bit_exact { "yes".into() } else { "NO".into() },
        ]);
        width_json.push(format!(
            "{{\"procs\":{procs},\"iterations\":{},\"sim_gteps\":{sim_gteps},\
             \"proc_gteps\":{proc_gteps},\"wall_ms\":{},\"modeled_bytes\":{modeled_bytes},\
             \"wire_bytes\":{},\"heartbeats\":{},\"bit_exact\":{bit_exact}}}",
            report.iterations,
            ms(report.wall_seconds),
            report.wire_bytes,
            report.heartbeats
        ));
    }
    print_table(
        "sim vs proc backend (bit-exact required)",
        &[
            "procs",
            "iters",
            "sim GTEPS",
            "proc GTEPS",
            "wall ms",
            "modeled B",
            "wire B",
            "wire/modeled",
            "bit-exact",
        ],
        &rows,
    );

    // The recovery bill: SIGKILL a worker mid-sweep and measure the
    // real phi-accrual detection and re-homing times, for both the
    // spare-process and spread-onto-survivors paths.
    println!("\nrecovery bill (SIGKILL mid-sweep, phi-accrual confirmation):");
    let mut rec_rows = Vec::new();
    let mut rec_json = Vec::new();
    for (label, spares, victim) in [("spare", 1u32, 1u32), ("spread", 0, 0)] {
        let opts = ProcOptions {
            workers: 2,
            spares,
            checkpoint_interval: 2,
            chaos: ChaosSpec {
                kill: Some(KillSpec { worker: victim, iter: 1 }),
                ..ChaosSpec::default()
            },
            ..ProcOptions::default()
        };
        let proc = run_proc(&graph, topo, source, &config, opts);
        let report = proc.proc.as_ref().expect("proc report");
        let rec = report.recovery.expect("a killed worker must be recovered");
        let expected = if label == "spare" { RecoveryMode::Spare } else { RecoveryMode::Spread };
        assert_eq!(rec.mode, expected, "recovery took the wrong path");
        let bit_exact = proc.depths == sim.depths && proc.parents == sim.parents;
        all_bit_exact &= bit_exact;
        rec_rows.push(vec![
            label.to_string(),
            format!("{}", rec.worker),
            f2(ms(rec.detect_seconds)),
            f2(ms(rec.recover_seconds)),
            format!("{}", rec.resumed_iter),
            f2(ms(report.wall_seconds)),
            if bit_exact { "yes".into() } else { "NO".into() },
        ]);
        rec_json.push(format!(
            "{{\"mode\":\"{label}\",\"worker\":{},\"detect_ms\":{},\"recover_ms\":{},\
             \"resumed_iter\":{},\"total_wall_ms\":{},\"bit_exact\":{bit_exact}}}",
            rec.worker,
            ms(rec.detect_seconds),
            ms(rec.recover_seconds),
            rec.resumed_iter,
            ms(report.wall_seconds)
        ));
    }
    print_table(
        "recovery after a real kill",
        &[
            "mode",
            "victim",
            "detect ms",
            "re-home ms",
            "resumed iter",
            "total wall ms",
            "bit-exact",
        ],
        &rec_rows,
    );

    let doc = format!(
        "{{\"bench\":\"backend\",\"scale\":{scale},\"gpus\":{},\"th\":{th},\
         \"sim_gteps\":{sim_gteps},\"modeled_bytes\":{modeled_bytes},\
         \"widths\":[{}],\"recovery\":[{}],\"bit_exact\":{all_bit_exact}}}",
        topo.num_gpus(),
        width_json.join(","),
        rec_json.join(",")
    );
    println!("\n{doc}");
    if let Ok(path) = std::env::var("GCBFS_JSON_OUT") {
        std::fs::write(&path, &doc).expect("write GCBFS_JSON_OUT");
        println!("json written to {path}");
    }
    assert!(all_bit_exact, "a proc-backend run diverged from the simulator");
    if smoke {
        println!("\nsmoke: all widths and both recovery paths bit-exact against the sim");
    }
}
