//! Figure 12: edge/delegate distribution vs degree threshold on the
//! Friendster-like power-law graph (paper: the real Friendster social
//! network, 134 M vertices; here: a Chung–Lu synthetic with matching
//! shape — see DESIGN.md's substitution table).
//!
//! Expected shape (paper): the same qualitative curves as Fig. 5, with a
//! wide band of suitable thresholds ([16, 128] there).

use gcbfs_bench::{env_or, pct, print_table};
use gcbfs_cluster::topology::Topology;
use gcbfs_core::distributor::{distribute, EdgeClass};
use gcbfs_core::separation::Separation;
use gcbfs_graph::PowerLawConfig;

fn main() {
    let scale = env_or("GCBFS_SCALE", 18) as u32;
    println!(
        "Fig. 12 reproduction: Friendster-like Chung-Lu graph, 2^{scale} vertices \
         (paper: Friendster, 134M vertices, half isolated)"
    );
    let graph = PowerLawConfig::friendster_like(scale).generate();
    let degrees = graph.out_degrees();
    println!(
        "graph: n = {}, m = {}, isolated = {:.1}%",
        graph.num_vertices,
        graph.num_edges(),
        100.0 * graph.count_zero_degree() as f64 / graph.num_vertices as f64
    );
    let topo = Topology::new(2, 2);

    let mut rows = Vec::new();
    for th in [8u64, 16, 32, 64, 128, 256, 512] {
        let sep = Separation::from_degrees(&degrees, th);
        let dist = distribute(&graph, &sep, &degrees, &topo);
        let c = dist.class_counts;
        rows.push(vec![
            th.to_string(),
            pct(c.percentage(EdgeClass::Dd)),
            pct(c.percentage(EdgeClass::Dn) + c.percentage(EdgeClass::Nd)),
            pct(c.percentage(EdgeClass::Nn)),
            pct(100.0 * sep.delegate_fraction()),
        ]);
    }
    print_table(
        "Fig. 12 — edge/delegate distribution vs TH (Friendster-like)",
        &["TH", "dd edges", "dn/nd edges", "nn edges", "delegates"],
        &rows,
    );
    println!("\nShape check: same qualitative behaviour as Fig. 5, wide suitable-TH band.");
}
