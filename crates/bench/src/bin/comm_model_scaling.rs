//! §II-B / §V: communication-cost scaling of the three partitioning
//! strategies under weak scaling.
//!
//! The paper's analysis: conventional 2D partitioning communicates
//! `O(√p)`-growing volume per unit graph; 1D DOBFS degenerates to
//! broadcasting everything; the degree-separated model's cost grows only
//! as `log(prank)`. Here all three run the *same* per-GPU-sized workload
//! at increasing `p` and we report measured communication per edge plus
//! the modeled communication seconds.

use gcbfs_baseline::{OneDBfs, TwoDBfs};
use gcbfs_bench::{env_or, f2, print_table, ray_factor};
use gcbfs_cluster::cost::CostModel;
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_graph::rmat::RmatConfig;
use gcbfs_graph::Csr;

fn main() {
    let per_gpu_scale = env_or("GCBFS_SCALE", 11) as u32;
    println!(
        "§II-B/§V reproduction: communication growth under weak scaling \
         (scale-{per_gpu_scale} RMAT per processor)"
    );

    let mut rows = Vec::new();
    for exp in [0u32, 2, 4, 6] {
        let p = 1u32 << exp; // 1, 4, 16, 64 processors
        let scale = per_gpu_scale + exp;
        let cfg = RmatConfig::graph500(scale);
        let graph = cfg.generate();
        let csr = Csr::from_edge_list(&graph);
        let m = graph.num_edges();
        let src = gcbfs_bench::pick_sources(&graph, 1, 0xc0)[0];

        // All three strategies charged to the same workload-scaled machine.
        let cost = CostModel::ray_scaled(ray_factor(per_gpu_scale));
        let th = BfsConfig::suggested_rmat_threshold(scale + 15).max(8);
        let config = BfsConfig::new(th).with_blocking_reduce(p >= 32).with_cost_model(cost);
        let topo = if p >= 2 { Topology::new(p / 2, 2) } else { Topology::new(1, 1) };
        let dist = DistributedGraph::build(&graph, topo, &config).expect("build");
        let ours = dist.run(src, &config).expect("run");
        let ours_bytes = ours.stats.total_remote_bytes();

        // 1D DOBFS.
        let mut oned_runner = OneDBfs::new(p, true);
        oned_runner.cost = cost;
        let oned = oned_runner.run(&csr, src);

        // 2D DOBFS on the nearest square grid.
        let r = (p as f64).sqrt().round() as u32;
        let mut twod_runner = TwoDBfs::new(r.max(1), true);
        twod_runner.cost = cost;
        let twod = twod_runner.run(&csr, src);

        rows.push(vec![
            p.to_string(),
            scale.to_string(),
            f2(ours_bytes as f64 / m as f64),
            f2(oned.comm_bytes as f64 / m as f64),
            f2(twod.comm_bytes as f64 / m as f64),
            format!(
                "{:.2}",
                ours.stats.phase_totals().remote_normal * 1e3
                    + ours.stats.phase_totals().remote_delegate * 1e3
            ),
            format!("{:.2}", oned.comm_seconds * 1e3),
            format!("{:.2}", twod.comm_seconds * 1e3),
        ]);
    }
    print_table(
        "Communication per edge (bytes/edge) and modeled comm time (ms)",
        &["p", "scale", "ours B/edge", "1D B/edge", "2D B/edge", "ours ms", "1D ms", "2D ms"],
        &rows,
    );
    println!(
        "\nShape check: ours stays ~flat in bytes/edge (log-rank growth in time); \
         1D and 2D DOBFS bytes/edge grow with p — the 2D per-edge volume tracks sqrt(p)."
    );
}
