//! Verification-tier bench: what the correctness armor costs.
//!
//! Runs the same traversal under online verification `Off`, `Checksums`,
//! and `Full` and reports GTEPS plus modeled elapsed per tier, then runs
//! seeded silent-data-corruption plans under `Full` and reports the
//! detection counts — the `BENCH_verify.json` trajectory future PRs
//! regress against.
//!
//! Environment knobs: `GCBFS_SCALE` (default 20), `GCBFS_GPUS` (default
//! 16), `GCBFS_SEEDS` (SDC plans, default 5), `GCBFS_TH`.
//! `GCBFS_JSON_OUT=/path.json` writes the JSON document to a file.
//!
//! `--smoke` additionally asserts the acceptance bound: `Full`-tier
//! overhead must stay within 10% of the `Off`-tier modeled elapsed.
//!
//! Usage: `cargo run --release --bin verify_sweep [-- --smoke]`

use gcbfs_bench::{env_or, f2, pct, print_table};
use gcbfs_cluster::fault::FaultPlan;
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_core::verify::VerificationMode;
use gcbfs_graph::rmat::RmatConfig;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = env_or("GCBFS_SCALE", 20) as u32;
    let gpus = env_or("GCBFS_GPUS", 16) as u32;
    let seeds = env_or("GCBFS_SEEDS", 5) as u64;
    let th = env_or("GCBFS_TH", BfsConfig::suggested_rmat_threshold(scale + 13).max(8));
    let topo = if gpus >= 2 { Topology::new(gpus / 2, 2) } else { Topology::new(1, 1) };
    let p = topo.num_gpus() as usize;
    let config = BfsConfig::new(th);
    let graph = RmatConfig::graph500(scale).generate();
    let m_half = graph.num_edges() / 2;
    let degrees = graph.out_degrees();
    let source = degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64;
    println!("Verification sweep: RMAT scale {scale}, TH {th}, {p} GPUs, source {source}");

    let dist = DistributedGraph::build(&graph, topo, &config).expect("build");
    let tiers = [VerificationMode::Off, VerificationMode::Checksums, VerificationMode::Full];
    let mut rows = Vec::new();
    let mut tier_json = Vec::new();
    let mut elapsed = Vec::new();
    let mut off_depths = Vec::new();
    for mode in tiers {
        let r = dist.run(source, &config.with_verification(mode)).expect("clean run");
        if mode == VerificationMode::Off {
            off_depths = r.depths.clone();
        } else {
            assert_eq!(r.depths, off_depths, "verification perturbed a clean traversal");
        }
        let s = r.modeled_seconds();
        rows.push(vec![
            mode.label().into(),
            f2(r.gteps(m_half)),
            f2(s * 1e3),
            pct((s / elapsed.first().copied().unwrap_or(s) - 1.0) * 100.0),
        ]);
        tier_json.push(format!(
            "{{\"mode\":\"{}\",\"gteps\":{},\"modeled_ms\":{}}}",
            mode.label(),
            r.gteps(m_half),
            s * 1e3
        ));
        elapsed.push(s);
    }
    let overhead = elapsed[2] / elapsed[0] - 1.0;
    print_table(
        &format!("verification tiers (clean run, scale {scale}, {p} GPUs)"),
        &["tier", "GTEPS", "modeled ms", "vs off"],
        &rows,
    );

    // Detection counts: seeded SDC plans under Full, every recovered run
    // bit-exact against the Off-tier depths.
    let full = config.with_verification(VerificationMode::Full);
    let horizon = off_depths.iter().filter(|&&d| d != u32::MAX).max().copied().unwrap_or(1) + 1;
    let (mut injected, mut detected, mut reexecs) = (0u64, 0u64, 0u64);
    for seed in 0..seeds {
        let plan = FaultPlan::random_sdc(seed, p, horizon);
        let r = dist.run_with_faults(source, &full, &plan).expect("verified recovery");
        assert_eq!(r.depths, off_depths, "seed {seed}: recovery must be bit-exact");
        let f = &r.stats.fault;
        assert!(
            f.injected_sdc == 0 || f.sdc_detections > 0,
            "seed {seed}: a fired SDC event slipped past Full"
        );
        injected += f.injected_sdc;
        detected += f.sdc_detections;
        reexecs += f.sdc_reexecutions;
    }
    println!(
        "\nSDC under Full: {seeds} plans, {injected} event(s) fired, {detected} detection(s), \
         {reexecs} re-execution(s), all depths bit-exact"
    );

    let doc = format!(
        "{{\"bench\":\"verify\",\"scale\":{scale},\"gpus\":{p},\"th\":{th},\
         \"tiers\":[{}],\"full_overhead_pct\":{},\
         \"sdc\":{{\"plans\":{seeds},\"injected\":{injected},\"detected\":{detected},\
         \"reexecutions\":{reexecs},\"recovered_bit_exact\":true}}}}",
        tier_json.join(","),
        overhead * 100.0
    );
    println!("\n{doc}");
    if let Ok(path) = std::env::var("GCBFS_JSON_OUT") {
        std::fs::write(&path, &doc).expect("write GCBFS_JSON_OUT");
        println!("json written to {path}");
    }
    if smoke {
        assert!(
            overhead <= 0.10,
            "Full verification overhead {} exceeds the 10% acceptance bound",
            pct(overhead * 100.0)
        );
        println!("\nsmoke: Full overhead {} within the 10% bound", pct(overhead * 100.0));
    }
}
