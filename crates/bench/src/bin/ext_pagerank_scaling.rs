//! Extension experiment: does the paper's scalability argument carry to
//! PageRank, as §VI-D claims?
//!
//! "For large scale-free graphs, the increases in computation and
//! communication are roughly in the same order, and our computation and
//! communication models should still be scalable."
//!
//! We run degree-separated PageRank along the same weak-scaling curve as
//! Fig. 9 and report modeled time per iteration, the computation and
//! communication shares, and the per-iteration remote volume relative to
//! BFS's.

use gcbfs_bench::{env_or, f2, print_table, ray_factor};
use gcbfs_cluster::cost::CostModel;
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_core::pagerank::PageRankConfig;
use gcbfs_graph::rmat::RmatConfig;

fn main() {
    let per_gpu_scale = env_or("GCBFS_SCALE", 12) as u32;
    let max_gpus = env_or("GCBFS_MAX_GPUS", 64) as u32;
    println!(
        "Extension: PageRank weak scaling, scale-{per_gpu_scale} RMAT per GPU \
         (the §VI-D generalization claim)"
    );

    let mut rows = Vec::new();
    let mut gpus = 1u32;
    while gpus <= max_gpus {
        let scale = per_gpu_scale + gpus.ilog2();
        let graph = RmatConfig::graph500(scale).generate();
        let topo = if gpus == 1 { Topology::new(1, 1) } else { Topology::new(gpus / 2, 2) };
        let factor = ray_factor(per_gpu_scale);
        let cost = CostModel::ray_scaled(factor);
        let bfs_th = BfsConfig::suggested_rmat_threshold(scale + 13).max(8);

        let mut row = vec![gpus.to_string(), scale.to_string()];
        // PageRank with the BFS-tuned TH, then with TH raised 8x: the
        // §VI-B option-1 knob (fewer delegates, more nn edges), which is
        // what keeps score-carrying algorithms scalable.
        for th in [bfs_th, bfs_th * 8] {
            let bfs_config = BfsConfig::new(th).with_cost_model(cost);
            let dist = DistributedGraph::build(&graph, topo, &bfs_config).expect("build");
            let pr_config =
                PageRankConfig { max_iterations: 10, tolerance: 0.0, cost, ..Default::default() };
            let pr = dist.pagerank(&pr_config);
            let per_iter_ms = pr.modeled_seconds * 1e3 / pr.iterations as f64;
            let comm_share = 100.0 * (pr.phases.remote_normal + pr.phases.remote_delegate)
                / pr.phases.sum().max(1e-12);
            row.push(f2(per_iter_ms));
            row.push(f2(comm_share));
        }
        rows.push(row);
        gpus *= 2;
    }
    print_table(
        "PageRank weak scaling (modeled, 10 power iterations)",
        &["GPUs", "scale", "ms/iter @BFS-TH", "comm% @BFS-TH", "ms/iter @8xTH", "comm% @8xTH"],
        &rows,
    );
    println!(
        "\nShape check (and an honest finding): PageRank inherits the BFS structure, but \
         its replicated delegate state is 64x heavier (8 B scores vs 1-bit masks), so at \
         the BFS-tuned TH the score reduction overtakes computation as p grows. Raising \
         TH shrinks d and restores the balance at the cost of more nn traffic — the \
         paper's §VI-B remedy. Its §VI-D claim ('computation and communication increase \
         in the same order') holds per iteration at the adjusted operating point."
    );
}
