//! Figure 5: distribution of edge kinds and delegates vs degree threshold,
//! for an RMAT graph (paper: scale 30; default here: scale 18, override
//! with `GCBFS_SCALE`).
//!
//! Expected shape (paper): as `TH` rises, delegate% and dd% fall, nn%
//! rises; in the paper's suggested band the delegates stay a small
//! percentage while nn edges remain under ~10%.

use gcbfs_bench::{env_or, pct, print_table};
use gcbfs_cluster::topology::Topology;
use gcbfs_core::distributor::{distribute, EdgeClass};
use gcbfs_core::separation::Separation;
use gcbfs_graph::rmat::RmatConfig;

fn main() {
    let scale = env_or("GCBFS_SCALE", 18) as u32;
    let cfg = RmatConfig::graph500(scale);
    println!("Fig. 5 reproduction: RMAT scale {scale} (paper: scale 30)");
    let graph = cfg.generate();
    let degrees = graph.out_degrees();
    let topo = Topology::new(4, 4);

    let mut rows = Vec::new();
    let mut th = 1u64;
    let max_degree = *degrees.iter().max().unwrap();
    while th <= max_degree * 2 {
        let sep = Separation::from_degrees(&degrees, th);
        let dist = distribute(&graph, &sep, &degrees, &topo);
        let c = dist.class_counts;
        rows.push(vec![
            th.to_string(),
            pct(c.percentage(EdgeClass::Dd)),
            pct(c.percentage(EdgeClass::Dn) + c.percentage(EdgeClass::Nd)),
            pct(c.percentage(EdgeClass::Nn)),
            pct(100.0 * sep.delegate_fraction()),
        ]);
        th *= 2;
    }
    print_table(
        &format!("Fig. 5 — edge/delegate distribution vs TH (RMAT scale {scale})"),
        &["TH", "dd edges", "dn/nd edges", "nn edges", "delegates"],
        &rows,
    );
    println!(
        "\nShape check: dd%% and delegate%% fall with TH; nn%% rises; \
         the paper's suggested band keeps nn under ~10%% and delegates small."
    );
}
