//! Table I: memory usage of the four-subgraph representation vs the
//! conventional formats.
//!
//! Expected result (paper, §III-C): with suitable `TH`, total subgraph
//! storage `8n + 8d·p + 4m + 4|Enn|` is about **one third** of the
//! 16-bytes-per-edge edge list and a little more than **half** of plain
//! CSR (`8n + 8m`).

use gcbfs_bench::{env_or, f2, print_table};
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_core::subgraph::paper_total_bytes;
use gcbfs_graph::rmat::RmatConfig;
use gcbfs_graph::Csr;

fn main() {
    let base = env_or("GCBFS_SCALE", 14) as u32;
    println!("Table I reproduction: RMAT scales {base}..={}", base + 4);
    let topo = Topology::new(4, 4);

    let mut rows = Vec::new();
    for scale in base..=base + 4 {
        let cfg = RmatConfig::graph500(scale);
        let graph = cfg.generate();
        let th = BfsConfig::suggested_rmat_threshold(scale + 13).max(8);
        let config = BfsConfig::new(th);
        let dist = DistributedGraph::build(&graph, topo, &config).expect("build");
        let n = graph.num_vertices;
        let m = graph.num_edges();
        let d = dist.separation().num_delegates() as u64;
        let measured = dist.total_graph_bytes();
        let formula = paper_total_bytes(n, d, topo.num_gpus() as u64, m, dist.class_counts().nn);
        let edge_list = Csr::edge_list_bytes(m);
        let csr = Csr::conventional_bytes(n, m);
        rows.push(vec![
            scale.to_string(),
            th.to_string(),
            mib(measured),
            mib(formula),
            mib(edge_list),
            mib(csr),
            f2(measured as f64 / edge_list as f64),
            f2(measured as f64 / csr as f64),
        ]);
    }
    print_table(
        "Table I — graph storage (MiB) and ratios",
        &["scale", "TH", "ours", "formula", "edge list 16m", "CSR 8n+8m", "vs edge list", "vs CSR"],
        &rows,
    );
    println!(
        "\nShape check: ours/edge-list ~ 1/3 and ours/CSR a little over 1/2, as §III-C claims."
    );
}

fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1 << 20) as f64)
}
