//! Figure 9: weak scaling with a fixed-scale RMAT graph per GPU
//! (paper: scale 26 per GPU, 1–124 GPUs, peaking at 259.8 GTEPS;
//! default here: scale 12 per GPU, 1–64 GPUs; override with
//! `GCBFS_SCALE` / `GCBFS_MAX_GPUS`).
//!
//! Expected shape (paper): close-to-linear growth in GTEPS for both
//! topologies, DOBFS several times above BFS; the paper switches IR→BR
//! above 16 GPUs, which we mirror.
//!
//! `--smoke` shrinks to scale 10 per GPU, ≤8 GPUs, 2 sources — the
//! fixed workload EXPERIMENTS.md uses for wall-clock before/after
//! comparisons of the simulator itself.

use gcbfs_bench::{env_or, f2, num_sources, pick_sources, print_table, ray_factor, run_many};
use gcbfs_cluster::cost::CostModel;
use gcbfs_cluster::topology::Topology;
use gcbfs_core::config::BfsConfig;
use gcbfs_core::driver::DistributedGraph;
use gcbfs_graph::rmat::RmatConfig;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let per_gpu_scale = if smoke { 10 } else { env_or("GCBFS_SCALE", 12) as u32 };
    let max_gpus = if smoke { 8 } else { env_or("GCBFS_MAX_GPUS", 64) as u32 };
    let sources_per_point = if smoke { 2 } else { num_sources() };
    println!(
        "Fig. 9 reproduction{}: weak scaling, scale-{per_gpu_scale} RMAT per GPU \
         (paper: scale-26 per GPU up to 124 GPUs)",
        if smoke { " (smoke)" } else { "" },
    );
    let wall = std::time::Instant::now();

    let mut rows = Vec::new();
    let mut gpus = 1u32;
    while gpus <= max_gpus {
        let scale = per_gpu_scale + gpus.ilog2();
        let cfg = RmatConfig::graph500(scale);
        let graph = cfg.generate();
        let th = BfsConfig::suggested_rmat_threshold(scale + 13).max(8);
        let sources = pick_sources(&graph, sources_per_point, 0xf19 + gpus as u64);
        // Paper: IR below 32 GPUs, BR from 32 up.
        let blocking = gpus >= 32;
        let factor = ray_factor(per_gpu_scale);
        let cost = CostModel::ray_scaled(factor);

        let mut row = vec![gpus.to_string(), scale.to_string(), th.to_string()];
        for topo in [topology_2x2(gpus), topology_1x4(gpus)] {
            match topo {
                Some(t) => {
                    for use_do in [false, true] {
                        let config = BfsConfig::new(th)
                            .with_direction_optimization(use_do)
                            .with_blocking_reduce(blocking)
                            .with_cost_model(cost);
                        let dist = DistributedGraph::build(&graph, t, &config).expect("build");
                        let s = run_many(&dist, &config, &sources, cfg.graph500_edges());
                        row.push(f2(s.gteps * factor));
                    }
                }
                None => {
                    row.push("-".into());
                    row.push("-".into());
                }
            }
        }
        rows.push(row);
        gpus *= 2;
    }
    print_table(
        "Fig. 9 — weak scaling, Ray-equivalent GTEPS (modeled)",
        &["GPUs", "scale", "TH", "2x2 BFS", "2x2 DO", "1x4 BFS", "1x4 DO"],
        &rows,
    );
    println!(
        "\nShape check: near-linear GTEPS growth with GPU count; DOBFS well above BFS; \
         both topologies close (1x4 slightly ahead: more NVLink, fewer ranks)."
    );
    println!("wall-clock: {:.2} s", wall.elapsed().as_secs_f64());
}

/// `*x2x2`-style topology: ranks of 2 GPUs (needs ≥ 4 GPUs to be faithful).
fn topology_2x2(gpus: u32) -> Option<Topology> {
    if gpus >= 2 && gpus.is_multiple_of(2) {
        Some(Topology::new(gpus / 2, 2))
    } else if gpus == 1 {
        Some(Topology::new(1, 1))
    } else {
        None
    }
}

/// `*x1x4`-style topology: ranks of 4 GPUs.
fn topology_1x4(gpus: u32) -> Option<Topology> {
    if gpus >= 4 && gpus.is_multiple_of(4) {
        Some(Topology::new(gpus / 4, 4))
    } else if gpus < 4 {
        Some(Topology::new(1, gpus))
    } else {
        None
    }
}
