//! Network and device cost model: the analytic stand-in for LLNL *Ray*.
//!
//! The reproduction executes every kernel and every transfer for real (so
//! byte volumes and edge workloads are *measured*), then charges them to
//! this model to obtain modeled Ray time. The model is the same family the
//! paper itself uses for its scalability arguments (§II-B, §V): α–β
//! point-to-point costs with a bandwidth ramp over message size, and
//! tree-structured collectives costing `log₂(prank)` rounds.
//!
//! Calibration targets (documented, not fitted per-figure):
//!
//! * NVLink 40 GB/s per direction, EDR InfiniBand 100 Gb/s = 12.5 GB/s
//!   (§VI-A1);
//! * no NIC–GPU RDMA on Ray — every inter-node byte is staged through CPU
//!   memory with `cudaMemcpyAsync` on both ends (§VI-A2);
//! * effective network bandwidth ramps up with message size and peaks
//!   around 4 MB (§VI-A1's sweep);
//! * `MPI_Iallreduce` was new and unoptimized on Ray: it carries a
//!   per-rank overhead that makes it lose to blocking `MPI_Allreduce`
//!   beyond ~8 ranks (§VI-B, Fig. 8);
//! * P100-class traversal throughput per GPU, with merge-based load
//!   balancing for the heavy `dd` subgraph and thread-warp-block dynamic
//!   mapping for the light ones (§IV-A), plus a few-µs kernel launch
//!   overhead (§VI-D).

/// Kind of local GPU work being charged, mapping to the paper's kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Merge-based workload partitioning — used by the `dd` visit kernel.
    MergeVisit,
    /// Thread-warp-block dynamic mapping — `nn`, `nd`, `dn` visit kernels.
    DynamicVisit,
    /// Previsit: dedupe, level marking, queue + workload construction.
    Previsit,
    /// Binning, uniquify, and 64↔32-bit id conversion for the exchange.
    Binning,
    /// Bitmask scan/reduce work (delegate masks).
    MaskOps,
    /// Wire-payload compression (codec encode, charged per raw byte).
    Compress,
    /// Wire-payload decompression (codec decode, charged per raw byte).
    Decompress,
}

/// GPU device model (P100-class).
#[derive(Clone, Copy, Debug)]
pub struct DeviceModel {
    /// Edge throughput of the thread-warp-block visit kernels (edges/s).
    pub dynamic_visit_edges_per_sec: f64,
    /// Edge throughput of the merge-based `dd` visit kernel (edges/s).
    pub merge_visit_edges_per_sec: f64,
    /// Previsit throughput (vertices/s).
    pub previsit_vertices_per_sec: f64,
    /// Binning/uniquify/conversion throughput (items/s).
    pub binning_items_per_sec: f64,
    /// Mask processing throughput (bytes/s).
    pub mask_bytes_per_sec: f64,
    /// Codec encode throughput (raw bytes/s). Varint/RLE packing is
    /// byte-serial per lane but embarrassingly parallel across messages;
    /// GPU implementations sustain tens of GB/s, well above InfiniBand
    /// wire rate — which is exactly why compressing can pay.
    pub compress_bytes_per_sec: f64,
    /// Codec decode throughput (raw bytes/s); decode is branchier than
    /// encode, so it is modeled slightly slower.
    pub decompress_bytes_per_sec: f64,
    /// Fixed overhead per kernel launch (s).
    pub kernel_launch_overhead: f64,
    /// Device memory (bytes); P100 = 16 GB.
    pub memory_bytes: u64,
}

impl DeviceModel {
    /// P100-class throughputs divided by `factor` (see
    /// [`CostModel::ray_scaled`]); launch overhead and memory unchanged.
    pub fn p100_scaled(factor: f64) -> Self {
        let base = Self::p100();
        Self {
            dynamic_visit_edges_per_sec: base.dynamic_visit_edges_per_sec / factor,
            merge_visit_edges_per_sec: base.merge_visit_edges_per_sec / factor,
            previsit_vertices_per_sec: base.previsit_vertices_per_sec / factor,
            binning_items_per_sec: base.binning_items_per_sec / factor,
            mask_bytes_per_sec: base.mask_bytes_per_sec / factor,
            compress_bytes_per_sec: base.compress_bytes_per_sec / factor,
            decompress_bytes_per_sec: base.decompress_bytes_per_sec / factor,
            ..base
        }
    }

    /// Visit and previsit throughputs multiplied by `factor` — the view a
    /// degraded kernel implementation (bit-serial mask probes, uncoalesced
    /// frontier access) gets of the same silicon. Binning, mask, and codec
    /// rates describe fixed-function paths such a variant does not touch,
    /// so they — and launch overhead and memory — are unchanged.
    pub fn derated(&self, factor: f64) -> Self {
        Self {
            dynamic_visit_edges_per_sec: self.dynamic_visit_edges_per_sec * factor,
            merge_visit_edges_per_sec: self.merge_visit_edges_per_sec * factor,
            previsit_vertices_per_sec: self.previsit_vertices_per_sec * factor,
            ..*self
        }
    }

    /// P100-class defaults.
    pub fn p100() -> Self {
        Self {
            dynamic_visit_edges_per_sec: 4.0e9,
            merge_visit_edges_per_sec: 6.0e9,
            previsit_vertices_per_sec: 10.0e9,
            binning_items_per_sec: 8.0e9,
            mask_bytes_per_sec: 200.0e9,
            compress_bytes_per_sec: 60.0e9,
            decompress_bytes_per_sec: 45.0e9,
            kernel_launch_overhead: 4.0e-6,
            memory_bytes: 16 << 30,
        }
    }

    /// Modeled time to run one kernel of `kind` over `workload` units.
    pub fn kernel_time(&self, kind: KernelKind, workload: u64) -> f64 {
        if workload == 0 {
            return 0.0;
        }
        let rate = match kind {
            KernelKind::MergeVisit => self.merge_visit_edges_per_sec,
            KernelKind::DynamicVisit => self.dynamic_visit_edges_per_sec,
            KernelKind::Previsit => self.previsit_vertices_per_sec,
            KernelKind::Binning => self.binning_items_per_sec,
            KernelKind::MaskOps => self.mask_bytes_per_sec,
            KernelKind::Compress => self.compress_bytes_per_sec,
            KernelKind::Decompress => self.decompress_bytes_per_sec,
        };
        self.kernel_launch_overhead + workload as f64 / rate
    }
}

/// Network model of the Ray fabric.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// Inter-node (InfiniBand) peak bandwidth, bytes/s.
    pub internode_bandwidth: f64,
    /// Inter-node per-message latency, s.
    pub internode_latency: f64,
    /// Intra-node (NVLink) peak bandwidth, bytes/s.
    pub intranode_bandwidth: f64,
    /// Intra-node per-message latency, s.
    pub intranode_latency: f64,
    /// CPU staging copy bandwidth (no NIC–GPU RDMA on Ray), bytes/s.
    pub staging_bandwidth: f64,
    /// Message size at which effective bandwidth reaches half of peak.
    pub ramp_bytes: f64,
    /// Strength of the large-message falloff (buffer/caching effects);
    /// together with `ramp_bytes` this puts the throughput optimum near
    /// 4 MB as measured in §VI-A1.
    pub large_message_falloff: f64,
    /// Reference size for the falloff term (bytes).
    pub falloff_reference_bytes: f64,
    /// Inefficiency of `MPI_Iallreduce` relative to the blocking flavor:
    /// the non-blocking reduction costs
    /// `base · (iallreduce_base_efficiency + nranks / iallreduce_rank_scale)`.
    /// On Ray the feature was new and unoptimized (§VI-B): it beat the
    /// blocking call below ~8 nodes and lost beyond, which these defaults
    /// reproduce.
    pub iallreduce_base_efficiency: f64,
    /// Divisor converting rank count into the `MPI_Iallreduce` cost factor.
    pub iallreduce_rank_scale: f64,
    /// Fixed synchronization overhead of blocking `MPI_Allreduce`.
    pub allreduce_sync_overhead: f64,
    /// Per-message wire floor (bytes): transport envelope, headers, and
    /// minimum cell/packet occupancy. Compressed transfers are charged
    /// `max(compressed_bytes, floor)` via [`Self::p2p_time_floored`], so
    /// a codec can never model a message as cheaper than the physics of
    /// putting *any* message on the wire.
    pub message_floor_bytes: f64,
}

impl NetworkModel {
    /// Ray bandwidths divided by `factor`, with the message-size ramp and
    /// falloff references shrunk by the same factor so that messages
    /// `factor`× smaller sit at the same relative point of the bandwidth
    /// curve (see [`CostModel::ray_scaled`]). Latencies unchanged.
    pub fn ray_scaled(factor: f64) -> Self {
        let base = Self::ray();
        Self {
            internode_bandwidth: base.internode_bandwidth / factor,
            intranode_bandwidth: base.intranode_bandwidth / factor,
            staging_bandwidth: base.staging_bandwidth / factor,
            ramp_bytes: base.ramp_bytes / factor,
            falloff_reference_bytes: base.falloff_reference_bytes / factor,
            message_floor_bytes: base.message_floor_bytes / factor,
            ..base
        }
    }

    /// Ray-like defaults.
    pub fn ray() -> Self {
        Self {
            internode_bandwidth: 12.5e9,
            internode_latency: 2.0e-6,
            intranode_bandwidth: 40.0e9,
            intranode_latency: 1.0e-6,
            staging_bandwidth: 40.0e9,
            ramp_bytes: 512.0 * 1024.0,
            large_message_falloff: 0.35,
            falloff_reference_bytes: 16.0 * 1024.0 * 1024.0,
            iallreduce_base_efficiency: 0.7,
            iallreduce_rank_scale: 24.0,
            allreduce_sync_overhead: 6.0e-6,
            message_floor_bytes: 64.0,
        }
    }

    /// Effective inter-node bandwidth at message size `bytes`.
    ///
    /// Matches the §VI-A1 measurements: small messages run at about half
    /// of peak ("the differences between message sizes are not that
    /// significant" under 2 MB — latency, not bandwidth, dominates there),
    /// throughput ramps toward peak around the ramp size and gently falls
    /// past several MB, putting the optimum near 4 MB.
    pub fn effective_internode_bandwidth(&self, bytes: u64) -> f64 {
        let s = bytes as f64;
        let ramp = (s + self.ramp_bytes / 2.0) / (s + self.ramp_bytes);
        let falloff = 1.0 + self.large_message_falloff * (s / self.falloff_reference_bytes);
        self.internode_bandwidth * ramp / falloff
    }

    /// The message size maximizing effective inter-node throughput — the
    /// §VI-A1 finding ("the optimal message size is about 4 MB"). Closed
    /// form from the ramp/falloff curve; senders chunk larger transfers at
    /// this size.
    pub fn optimal_message_size(&self) -> f64 {
        if self.large_message_falloff <= 0.0 {
            return f64::INFINITY;
        }
        let r = self.ramp_bytes;
        let a = self.large_message_falloff / self.falloff_reference_bytes;
        // Maximize (s + r/2) / ((s + r)(1 + a s)):
        // s* = (-r + sqrt(2r/a - r^2)) / 2.
        let disc = 2.0 * r / a - r * r;
        if disc <= 0.0 {
            return r;
        }
        ((disc.sqrt() - r) / 2.0).max(r / 4.0)
    }

    /// Modeled time for one point-to-point transfer of `bytes`.
    ///
    /// Inter-node transfers pay the staging copies through CPU memory on
    /// both ends (Ray has no NIC–GPU RDMA), and transfers larger than the
    /// optimal message size are chunked at it — the paper's implementation
    /// explicitly aggregates/splits to the measured ~4 MB optimum, so the
    /// single-message falloff never applies beyond one chunk.
    pub fn p2p_time(&self, bytes: u64, intranode: bool) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        if intranode {
            self.intranode_latency + bytes as f64 / self.intranode_bandwidth
        } else {
            let s_star = self.optimal_message_size();
            let (chunks, chunk_size) = if (bytes as f64) > s_star {
                ((bytes as f64 / s_star).ceil(), s_star as u64)
            } else {
                (1.0, bytes)
            };
            let wire = bytes as f64 / self.effective_internode_bandwidth(chunk_size);
            let staging = 2.0 * bytes as f64 / self.staging_bandwidth;
            chunks * self.internode_latency + wire + staging
        }
    }

    /// [`Self::p2p_time`] with the per-message wire floor applied:
    /// charges `max(bytes, message_floor_bytes)` for any nonzero message.
    ///
    /// Used by the *compressed* transfer paths only — a codec that shrinks
    /// a payload below the transport envelope still pays for the
    /// envelope, so compression can never model a transfer as cheaper
    /// than the physics allow. The uncompressed paths keep the unfloored
    /// [`Self::p2p_time`] so every baseline number is unchanged.
    pub fn p2p_time_floored(&self, bytes: u64, intranode: bool) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.p2p_time(bytes.max(self.message_floor_bytes.ceil() as u64), intranode)
    }

    /// [`Self::allreduce_time`] with the per-message wire floor applied
    /// to each tree round's payload (compressed collective path only).
    pub fn allreduce_time_floored(&self, bytes: u64, nranks: u32, blocking: bool) -> f64 {
        if nranks <= 1 {
            return 0.0;
        }
        let floored =
            if bytes == 0 { 0 } else { bytes.max(self.message_floor_bytes.ceil() as u64) };
        self.allreduce_time(floored, nranks, blocking)
    }

    /// Tree depth of a collective over `nranks` ranks.
    pub fn tree_depth(nranks: u32) -> u32 {
        32 - nranks.next_power_of_two().leading_zeros() - 1
    }

    /// Modeled time of a cross-rank allreduce of `bytes` (the global phase
    /// of the delegate mask reduction, §V-A): `log₂(prank)` tree rounds,
    /// plus the implementation-specific overhead of the chosen flavor.
    pub fn allreduce_time(&self, bytes: u64, nranks: u32, blocking: bool) -> f64 {
        if nranks <= 1 {
            return 0.0;
        }
        let rounds = Self::tree_depth(nranks) as f64;
        let per_round = self.p2p_time(bytes, false);
        // Reduce + broadcast phases ≈ 2 tree traversals.
        let base = 2.0 * rounds * per_round;
        if blocking {
            base + self.allreduce_sync_overhead
        } else {
            base * (self.iallreduce_base_efficiency + nranks as f64 / self.iallreduce_rank_scale)
        }
    }

    /// Modeled time of the local (intra-rank) reduce of per-GPU buffers to
    /// GPU0: GPU0's NVLink serializes `pgpu - 1` incoming buffers.
    pub fn local_reduce_time(&self, bytes: u64, pgpu: u32) -> f64 {
        if pgpu <= 1 || bytes == 0 {
            return 0.0;
        }
        (pgpu - 1) as f64 * self.p2p_time(bytes, true)
    }

    /// Modeled time of the local broadcast of the reduced buffer from GPU0
    /// back to its peers.
    pub fn local_broadcast_time(&self, bytes: u64, pgpu: u32) -> f64 {
        self.local_reduce_time(bytes, pgpu)
    }
}

/// Combined device + network model.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// The GPU device model.
    pub device: DeviceModel,
    /// The interconnect model.
    pub network: NetworkModel,
}

impl CostModel {
    /// The Ray machine: P100 GPUs on NVLink + EDR InfiniBand.
    pub fn ray() -> Self {
        Self { device: DeviceModel::p100(), network: NetworkModel::ray() }
    }

    /// The *workload-scaled* Ray machine for scaled-down reproductions.
    ///
    /// The paper runs a scale-26 RMAT graph per GPU; this reproduction runs
    /// graphs `factor`× smaller per GPU. At the paper's sizes the per-byte /
    /// per-edge terms dominate the fixed latencies; shrinking only the
    /// workload would instead make the µs-scale constants dominate and
    /// flatten every comparison. Dividing all throughputs (compute and
    /// bandwidth) by the same `factor` keeps every compute:communication
    /// ratio identical to the full-scale run — times come out in the
    /// paper's range, and shapes (who wins, where crossovers fall) are
    /// preserved. Multiply resulting TEPS by `factor` to get Ray-equivalent
    /// throughput.
    pub fn ray_scaled(factor: f64) -> Self {
        assert!(factor >= 1.0, "scale factor must be >= 1");
        Self { device: DeviceModel::p100_scaled(factor), network: NetworkModel::ray_scaled(factor) }
    }

    /// Inverse inter-node bandwidth `g` of the paper's analysis (s/byte).
    pub fn g(&self) -> f64 {
        1.0 / self.network.internode_bandwidth
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::ray()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_time_zero_workload_is_free() {
        let d = DeviceModel::p100();
        assert_eq!(d.kernel_time(KernelKind::DynamicVisit, 0), 0.0);
        assert!(d.kernel_time(KernelKind::DynamicVisit, 1) >= d.kernel_launch_overhead);
    }

    #[test]
    fn merge_visit_is_faster_per_edge() {
        let d = DeviceModel::p100();
        let heavy = 1 << 24;
        assert!(
            d.kernel_time(KernelKind::MergeVisit, heavy)
                < d.kernel_time(KernelKind::DynamicVisit, heavy)
        );
    }

    #[test]
    fn bandwidth_ramp_peaks_near_4mb() {
        let n = NetworkModel::ray();
        // Scan the sweep range of §VI-A1 and find the best message size.
        let sizes: Vec<u64> = (17..=24).map(|b| 1u64 << b).collect(); // 128 kB .. 16 MB
        let best = sizes
            .iter()
            .copied()
            .max_by(|&a, &b| {
                n.effective_internode_bandwidth(a).total_cmp(&n.effective_internode_bandwidth(b))
            })
            .unwrap();
        assert!(
            (2 * 1024 * 1024..=8 * 1024 * 1024).contains(&best),
            "optimum at {best} bytes, expected ≈4 MB"
        );
    }

    #[test]
    fn optimal_message_size_is_about_4mb() {
        let n = NetworkModel::ray();
        let s = n.optimal_message_size();
        assert!((2.0e6..=8.0e6).contains(&s), "closed-form optimum {s} should sit near 4 MB");
    }

    #[test]
    fn large_transfers_are_chunked_at_the_optimum() {
        let n = NetworkModel::ray();
        // A 1 GB transfer must run at roughly the optimal-chunk rate, not
        // the collapsed single-message rate.
        let big = 1u64 << 30;
        let t = n.p2p_time(big, false);
        let optimal_rate = n.effective_internode_bandwidth(n.optimal_message_size() as u64);
        let ideal = big as f64 / optimal_rate + 2.0 * big as f64 / n.staging_bandwidth;
        assert!(t < 1.5 * ideal, "chunking broken: {t} vs ideal {ideal}");
        // And time must stay superlinear-free: 2x the bytes ≈ 2x the time.
        let t2 = n.p2p_time(2 * big, false);
        assert!(t2 < 2.2 * t && t2 > 1.8 * t);
    }

    #[test]
    fn p2p_time_is_monotone_in_bytes() {
        let n = NetworkModel::ray();
        let mut prev = 0.0;
        for exp in 3..32 {
            let t = n.p2p_time(1u64 << exp, false);
            assert!(t >= prev, "non-monotone at 2^{exp}");
            prev = t;
        }
    }

    #[test]
    fn effective_bandwidth_is_monotone_through_the_small_message_regime() {
        // §VI-A1: below ~2 MB latency dominates and effective bandwidth
        // only climbs with message size. Compressed messages live in this
        // regime, so the ramp must not reward shrinking a message.
        let n = NetworkModel::ray();
        let mut prev = 0.0;
        for exp in 0..21 {
            let bw = n.effective_internode_bandwidth(1u64 << exp);
            assert!(bw > prev, "ramp must be strictly increasing at 2^{exp}");
            prev = bw;
        }
        // And it never exceeds the nominal peak.
        assert!(prev <= n.internode_bandwidth);
    }

    #[test]
    fn message_floor_keeps_tiny_transfers_honest() {
        let n = NetworkModel::ray();
        let floor = n.message_floor_bytes.ceil() as u64;
        // Below the floor, all messages cost the same as the floor itself.
        assert_eq!(n.p2p_time_floored(1, false), n.p2p_time(floor, false));
        assert_eq!(n.p2p_time_floored(floor - 1, true), n.p2p_time(floor, true));
        // At or above the floor, the floored and plain flavors agree.
        assert_eq!(n.p2p_time_floored(floor, false), n.p2p_time(floor, false));
        assert_eq!(n.p2p_time_floored(4 << 20, false), n.p2p_time(4 << 20, false));
        // Zero bytes (no message at all) stays free.
        assert_eq!(n.p2p_time_floored(0, false), 0.0);
        // The floor preserves monotonicity and positivity: no compressed
        // payload can produce a negative or sub-floor transfer time.
        let mut prev = 0.0;
        for bytes in 1..200u64 {
            let t = n.p2p_time_floored(bytes, false);
            assert!(t >= n.p2p_time(floor, false));
            assert!(t >= prev, "floored time must stay monotone at {bytes}");
            prev = t;
        }
    }

    #[test]
    fn floored_allreduce_matches_plain_above_the_floor() {
        let n = NetworkModel::ray();
        let floor = n.message_floor_bytes.ceil() as u64;
        assert_eq!(n.allreduce_time_floored(1, 8, true), n.allreduce_time(floor, 8, true));
        assert_eq!(n.allreduce_time_floored(1 << 20, 8, true), n.allreduce_time(1 << 20, 8, true));
        assert_eq!(n.allreduce_time_floored(1, 1, true), 0.0);
    }

    #[test]
    fn codec_kernels_are_cheaper_than_the_wire() {
        // Compression only pays if encode+decode run faster than the
        // bytes they save would have taken on InfiniBand.
        let d = DeviceModel::p100();
        let n = NetworkModel::ray();
        let bytes = 4u64 << 20;
        let codec = d.kernel_time(KernelKind::Compress, bytes)
            + d.kernel_time(KernelKind::Decompress, bytes);
        assert!(codec < n.p2p_time(bytes, false), "codec must beat the wire it saves");
        assert_eq!(d.kernel_time(KernelKind::Compress, 0), 0.0);
    }

    #[test]
    fn internode_slower_than_intranode() {
        let n = NetworkModel::ray();
        let bytes = 4 << 20;
        assert!(n.p2p_time(bytes, false) > n.p2p_time(bytes, true));
    }

    #[test]
    fn zero_bytes_is_free() {
        let n = NetworkModel::ray();
        assert_eq!(n.p2p_time(0, false), 0.0);
        assert_eq!(n.local_reduce_time(0, 4), 0.0);
    }

    #[test]
    fn tree_depth_is_log2() {
        assert_eq!(NetworkModel::tree_depth(1), 0);
        assert_eq!(NetworkModel::tree_depth(2), 1);
        assert_eq!(NetworkModel::tree_depth(8), 3);
        assert_eq!(NetworkModel::tree_depth(62), 6);
    }

    #[test]
    fn allreduce_grows_logarithmically() {
        let n = NetworkModel::ray();
        let bytes = 1 << 20;
        let t8 = n.allreduce_time(bytes, 8, true);
        let t64 = n.allreduce_time(bytes, 64, true);
        // log2(64)/log2(8) = 2: doubling, not 8x — the paper's key
        // scalability claim for delegate communication.
        assert!(t64 < 2.5 * t8, "t64 = {t64}, t8 = {t8}");
        assert!(t64 > 1.5 * t8);
    }

    #[test]
    fn iallreduce_beats_blocking_on_few_ranks_only() {
        let n = NetworkModel::ray();
        let bytes = 1 << 20;
        // §VI-B: "When running on fewer than 8 nodes, the communication
        // time of IR is less than that of BR"; beyond that the unoptimized
        // non-blocking implementation loses, and clearly so at high counts.
        assert!(n.allreduce_time(bytes, 4, false) < n.allreduce_time(bytes, 4, true));
        assert!(n.allreduce_time(bytes, 16, false) > n.allreduce_time(bytes, 16, true));
        assert!(n.allreduce_time(bytes, 64, false) > 2.0 * n.allreduce_time(bytes, 64, true));
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let n = NetworkModel::ray();
        assert_eq!(n.allreduce_time(1024, 1, true), 0.0);
        assert_eq!(n.local_reduce_time(1024, 1), 0.0);
    }

    #[test]
    fn g_matches_bandwidth() {
        let c = CostModel::ray();
        assert!((c.g() - 8.0e-11).abs() < 1e-12);
    }

    #[test]
    fn scaled_model_preserves_ratios() {
        let factor = 1024.0;
        let full = CostModel::ray();
        let scaled = CostModel::ray_scaled(factor);
        // A workload 1024x smaller on the scaled machine takes the same
        // time as the full workload on Ray (fixed overheads aside).
        let edges = 1u64 << 30;
        let t_full = full.device.kernel_time(KernelKind::DynamicVisit, edges);
        let t_scaled = scaled.device.kernel_time(KernelKind::DynamicVisit, edges / 1024);
        assert!((t_full - t_scaled).abs() / t_full < 1e-3);
        // Same for a transfer: message 1024x smaller, same relative ramp point.
        let bytes = 4u64 << 20;
        let w_full = full.network.p2p_time(bytes, false);
        let w_scaled = scaled.network.p2p_time(bytes / 1024, false);
        assert!((w_full - w_scaled).abs() / w_full < 1e-2);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn scaled_model_rejects_upscaling() {
        let _ = CostModel::ray_scaled(0.5);
    }
}
