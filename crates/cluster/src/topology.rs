//! Cluster topology: `prank` MPI ranks × `pgpu` GPUs per rank.
//!
//! The paper denotes hardware configurations as
//! `nodes × ranks-per-node × GPUs-per-rank` (e.g. `31×2×2` = 124 GPUs).
//! For everything the algorithms care about, only the totals matter:
//! `prank = nodes · ranks-per-node` and `pgpu`. Rank boundaries decide which
//! transfers ride NVLink (intra-rank/node) versus InfiniBand, and the
//! two-phase delegate reduction runs local-then-global across them.

/// Identity of one simulated GPU: which MPI rank owns it and its index
/// within the rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GpuId {
    /// Owning MPI rank.
    pub rank: u32,
    /// Index within the rank.
    pub gpu: u32,
}

/// A `prank × pgpu` device grid, plus an optional pool of hot-spare
/// devices that hold no partition until the membership layer promotes one
/// to replace a confirmed-dead primary.
///
/// Spares are deliberately *outside* the `p = prank · pgpu` grid: all
/// vertex-ownership arithmetic (`P(v)`, `G(v)`, local indices) is a
/// function of the primary grid only, so adding or draining spares never
/// changes the partition — which is what makes spare absorption a pure
/// data movement with bit-identical BFS results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    prank: u32,
    pgpu: u32,
    spares: u32,
}

impl Topology {
    /// Creates a topology with `prank` MPI ranks of `pgpu` GPUs each and
    /// no hot spares.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(prank: u32, pgpu: u32) -> Self {
        assert!(prank > 0 && pgpu > 0, "topology dimensions must be positive");
        Self { prank, pgpu, spares: 0 }
    }

    /// Adds `spares` hot-spare devices to the pool. Spares are not part
    /// of the primary grid: they own no vertices and carry no partition
    /// until promoted by the membership layer.
    pub fn with_spares(mut self, spares: u32) -> Self {
        self.spares = spares;
        self
    }

    /// Number of hot-spare devices.
    pub fn num_spares(&self) -> u32 {
        self.spares
    }

    /// The MPI rank a promoted spare slot is attached to (spares are
    /// distributed round-robin across ranks), which prices the one-time
    /// state ship when a spare absorbs a partition.
    pub fn spare_rank(&self, slot: usize) -> u32 {
        (slot as u32) % self.prank
    }

    /// Parses the paper's `nodes×rpn×gpr` notation into a topology
    /// (`prank = nodes · rpn`).
    pub fn from_paper_notation(nodes: u32, ranks_per_node: u32, gpus_per_rank: u32) -> Self {
        Self::new(nodes * ranks_per_node, gpus_per_rank)
    }

    /// Number of MPI ranks.
    pub fn num_ranks(&self) -> u32 {
        self.prank
    }

    /// GPUs per MPI rank.
    pub fn gpus_per_rank(&self) -> u32 {
        self.pgpu
    }

    /// Total GPU count `p = prank · pgpu`.
    pub fn num_gpus(&self) -> u32 {
        self.prank * self.pgpu
    }

    /// Flat index of a GPU in `0..num_gpus()`, grouped by rank.
    pub fn flat(&self, id: GpuId) -> usize {
        debug_assert!(id.rank < self.prank && id.gpu < self.pgpu);
        (id.rank * self.pgpu + id.gpu) as usize
    }

    /// Inverse of [`Topology::flat`].
    pub fn unflat(&self, index: usize) -> GpuId {
        debug_assert!(index < self.num_gpus() as usize);
        GpuId { rank: index as u32 / self.pgpu, gpu: index as u32 % self.pgpu }
    }

    /// Iterates over all GPU ids in flat order.
    pub fn gpus(&self) -> impl Iterator<Item = GpuId> + '_ {
        (0..self.num_gpus() as usize).map(move |i| self.unflat(i))
    }

    /// Whether two GPUs share an MPI rank (and thus the fast local fabric).
    pub fn same_rank(&self, a: GpuId, b: GpuId) -> bool {
        a.rank == b.rank
    }

    /// Owning MPI rank of global vertex `v`: `P(v) = v mod prank`
    /// (Algorithm 1).
    pub fn vertex_rank(&self, v: u64) -> u32 {
        (v % self.prank as u64) as u32
    }

    /// Owning GPU within the rank: `G(v) = (v / prank) mod pgpu`
    /// (Algorithm 1).
    pub fn vertex_gpu(&self, v: u64) -> u32 {
        ((v / self.prank as u64) % self.pgpu as u64) as u32
    }

    /// Owning GPU id of global vertex `v`.
    pub fn vertex_owner(&self, v: u64) -> GpuId {
        GpuId { rank: self.vertex_rank(v), gpu: self.vertex_gpu(v) }
    }

    /// Local index of `v` on its owning GPU: vertices owned by one GPU are
    /// `v = (k·pgpu + gpu)·prank + rank`, so the dense local index is
    /// `k = v / p`. This is what keeps local normal ids 32-bit (§III-B).
    pub fn local_index(&self, v: u64) -> u32 {
        (v / self.num_gpus() as u64) as u32
    }

    /// Reconstructs the global vertex id from its owner and local index.
    pub fn global_id(&self, owner: GpuId, local: u32) -> u64 {
        (local as u64 * self.pgpu as u64 + owner.gpu as u64) * self.prank as u64 + owner.rank as u64
    }

    /// Number of vertices a GPU owns out of a global vertex range `0..n`
    /// (the `n/p` bound of §III-B, exact per GPU).
    pub fn owned_count(&self, owner: GpuId, n: u64) -> u32 {
        // Count k with global_id(owner, k) < n.
        let p = self.num_gpus() as u64;
        let base = owner.gpu as u64 * self.prank as u64 + owner.rank as u64;
        if base >= n {
            0
        } else {
            ((n - base - 1) / p + 1) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let t = Topology::from_paper_notation(31, 2, 2);
        assert_eq!(t.num_ranks(), 62);
        assert_eq!(t.gpus_per_rank(), 2);
        assert_eq!(t.num_gpus(), 124);
    }

    #[test]
    fn flat_roundtrip() {
        let t = Topology::new(3, 4);
        for i in 0..12 {
            assert_eq!(t.flat(t.unflat(i)), i);
        }
        assert_eq!(t.gpus().count(), 12);
    }

    #[test]
    fn ownership_matches_algorithm_1() {
        let t = Topology::new(4, 2);
        // P(v) = v mod 4, G(v) = (v/4) mod 2.
        assert_eq!(t.vertex_owner(13), GpuId { rank: 1, gpu: 1 });
        assert_eq!(t.vertex_owner(5), GpuId { rank: 1, gpu: 1 });
        assert_eq!(t.vertex_owner(4), GpuId { rank: 0, gpu: 1 });
        assert_eq!(t.vertex_owner(3), GpuId { rank: 3, gpu: 0 });
    }

    #[test]
    fn global_local_roundtrip() {
        let t = Topology::new(3, 2);
        for v in 0..1000u64 {
            let owner = t.vertex_owner(v);
            let local = t.local_index(v);
            assert_eq!(t.global_id(owner, local), v);
        }
    }

    #[test]
    fn owned_count_partitions_n() {
        let t = Topology::new(3, 2);
        for n in [0u64, 1, 5, 6, 7, 100, 101] {
            let total: u64 = t.gpus().map(|g| t.owned_count(g, n) as u64).sum();
            assert_eq!(total, n, "n = {n}");
        }
    }

    #[test]
    fn owned_count_is_balanced() {
        let t = Topology::new(4, 4);
        let n = 1u64 << 16;
        let counts: Vec<u32> = t.gpus().map(|g| t.owned_count(g, n)).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn same_rank_detection() {
        let t = Topology::new(2, 2);
        assert!(t.same_rank(GpuId { rank: 0, gpu: 0 }, GpuId { rank: 0, gpu: 1 }));
        assert!(!t.same_rank(GpuId { rank: 0, gpu: 0 }, GpuId { rank: 1, gpu: 0 }));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = Topology::new(0, 2);
    }

    #[test]
    fn spares_do_not_perturb_the_grid() {
        let base = Topology::new(2, 2);
        let spared = Topology::new(2, 2).with_spares(3);
        assert_eq!(spared.num_spares(), 3);
        assert_eq!(spared.num_gpus(), base.num_gpus());
        for v in 0..200u64 {
            assert_eq!(spared.vertex_owner(v), base.vertex_owner(v));
            assert_eq!(spared.local_index(v), base.local_index(v));
        }
        assert_eq!(spared.spare_rank(0), 0);
        assert_eq!(spared.spare_rank(1), 1);
        assert_eq!(spared.spare_rank(2), 0, "round-robin across ranks");
    }
}
