//! Phase timing and the stream-overlap accounting of Figs. 3, 8 and 10.
//!
//! The paper breaks BFS runtime into four parts — *Computation*, *Local
//! Communication*, *Remote Normal Exchange*, and *Remote Delegate Reduce* —
//! and notes that "the sum of all parts in one column is more than the
//! elapsed time of BFS, because different parts may overlap" (§VI-B).
//! [`IterationTiming::elapsed`] encodes the overlap rule: with non-blocking
//! reduction the two remote phases proceed concurrently (the delegate
//! stream can start as soon as masks arrive, without waiting for normal
//! vertices), so the iteration pays `max` of the two; a blocking reduction
//! serializes them.

/// One of the paper's four runtime phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Local kernel execution (both streams).
    Computation,
    /// Intra-rank staging: binning, local all2all, local mask reduce.
    LocalComm,
    /// Point-to-point normal-vertex exchange over the network.
    RemoteNormal,
    /// Global delegate mask reduction across ranks.
    RemoteDelegate,
}

impl Phase {
    /// All phases, in the paper's reporting order.
    pub const ALL: [Phase; 4] =
        [Phase::Computation, Phase::LocalComm, Phase::RemoteNormal, Phase::RemoteDelegate];

    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Computation => "Computation",
            Phase::LocalComm => "Local Communication",
            Phase::RemoteNormal => "Remote Normal Exchange",
            Phase::RemoteDelegate => "Remote Delegate Reduce",
        }
    }
}

/// Modeled seconds spent in each phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    /// Seconds in [`Phase::Computation`].
    pub computation: f64,
    /// Seconds in [`Phase::LocalComm`].
    pub local_comm: f64,
    /// Seconds in [`Phase::RemoteNormal`].
    pub remote_normal: f64,
    /// Seconds in [`Phase::RemoteDelegate`].
    pub remote_delegate: f64,
}

impl PhaseTimes {
    /// Zero times.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Time of one phase.
    pub fn get(&self, phase: Phase) -> f64 {
        match phase {
            Phase::Computation => self.computation,
            Phase::LocalComm => self.local_comm,
            Phase::RemoteNormal => self.remote_normal,
            Phase::RemoteDelegate => self.remote_delegate,
        }
    }

    /// Mutable access to one phase.
    pub fn get_mut(&mut self, phase: Phase) -> &mut f64 {
        match phase {
            Phase::Computation => &mut self.computation,
            Phase::LocalComm => &mut self.local_comm,
            Phase::RemoteNormal => &mut self.remote_normal,
            Phase::RemoteDelegate => &mut self.remote_delegate,
        }
    }

    /// Adds `seconds` to a phase.
    pub fn add(&mut self, phase: Phase, seconds: f64) {
        *self.get_mut(phase) += seconds;
    }

    /// Sum of all phases — the "sum of parts" that exceeds elapsed time.
    pub fn sum(&self) -> f64 {
        self.computation + self.local_comm + self.remote_normal + self.remote_delegate
    }

    /// Element-wise sum.
    pub fn combine(&self, other: &Self) -> Self {
        Self {
            computation: self.computation + other.computation,
            local_comm: self.local_comm + other.local_comm,
            remote_normal: self.remote_normal + other.remote_normal,
            remote_delegate: self.remote_delegate + other.remote_delegate,
        }
    }

    /// Element-wise maximum — used to aggregate phases across GPUs of a
    /// superstep (the slowest GPU gates each phase).
    pub fn max(&self, other: &Self) -> Self {
        Self {
            computation: self.computation.max(other.computation),
            local_comm: self.local_comm.max(other.local_comm),
            remote_normal: self.remote_normal.max(other.remote_normal),
            remote_delegate: self.remote_delegate.max(other.remote_delegate),
        }
    }
}

/// The timing of one BFS iteration (superstep), cluster-wide.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IterationTiming {
    /// Per-phase seconds of the iteration.
    pub phases: PhaseTimes,
    /// Whether the delegate reduction was blocking (`MPI_Allreduce`) in
    /// this iteration; decides the overlap rule.
    pub blocking_reduce: bool,
    /// Whether the communication pipeline (encode → transfer → decode)
    /// ran concurrently with kernel execution this iteration: the whole
    /// pipeline hides behind compute instead of following it.
    pub overlap: bool,
}

impl IterationTiming {
    /// Elapsed modeled time of the iteration after overlap:
    /// computation and local staging are serial; the two remote phases
    /// overlap under non-blocking reduction and serialize under blocking.
    /// With pipelined compute/comm overlap the iteration instead pays
    /// `max(computation, local + remote)` — the communication pipeline
    /// runs on the copy engines while the visit kernels execute, so only
    /// the longer of the two sides gates the superstep.
    pub fn elapsed(&self) -> f64 {
        let p = &self.phases;
        let remote = if self.blocking_reduce {
            p.remote_normal + p.remote_delegate
        } else {
            p.remote_normal.max(p.remote_delegate)
        };
        if self.overlap {
            p.computation.max(p.local_comm + remote)
        } else {
            p.computation + p.local_comm + remote
        }
    }

    /// Sum of parts (no overlap) — what Figs. 8/10 stack.
    pub fn sum_of_parts(&self) -> f64 {
        self.phases.sum()
    }
}

/// The degraded critical-path bound of edge-balanced multi-survivor
/// spreading: a dead member's load split evenly across `survivors` live
/// members inflates the slowest lane by at most `(p+1)/p` (with `p`
/// survivors), versus `2×` when the whole partition lands on one buddy.
/// This is the factor the elastic membership tier is designed to hit.
pub fn degraded_bound(survivors: usize) -> f64 {
    assert!(survivors > 0, "need at least one survivor");
    (survivors as f64 + 1.0) / survivors as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PhaseTimes {
        PhaseTimes { computation: 4.0, local_comm: 1.0, remote_normal: 2.0, remote_delegate: 3.0 }
    }

    #[test]
    fn sum_and_get() {
        let p = sample();
        assert_eq!(p.sum(), 10.0);
        assert_eq!(p.get(Phase::RemoteDelegate), 3.0);
    }

    #[test]
    fn add_accumulates() {
        let mut p = PhaseTimes::zero();
        p.add(Phase::Computation, 1.5);
        p.add(Phase::Computation, 0.5);
        assert_eq!(p.computation, 2.0);
    }

    #[test]
    fn combine_and_max() {
        let a = sample();
        let b = PhaseTimes {
            computation: 1.0,
            local_comm: 5.0,
            remote_normal: 0.0,
            remote_delegate: 9.0,
        };
        let c = a.combine(&b);
        assert_eq!(c.computation, 5.0);
        assert_eq!(c.local_comm, 6.0);
        let m = a.max(&b);
        assert_eq!(m.computation, 4.0);
        assert_eq!(m.remote_delegate, 9.0);
    }

    #[test]
    fn overlap_takes_max_of_remote_phases() {
        let it = IterationTiming { phases: sample(), blocking_reduce: false, overlap: false };
        assert_eq!(it.elapsed(), 4.0 + 1.0 + 3.0);
        assert!(it.elapsed() < it.sum_of_parts());
    }

    #[test]
    fn blocking_serializes_remote_phases() {
        let it = IterationTiming { phases: sample(), blocking_reduce: true, overlap: false };
        assert_eq!(it.elapsed(), 4.0 + 1.0 + 2.0 + 3.0);
        assert_eq!(it.elapsed(), it.sum_of_parts());
    }

    #[test]
    fn pipelined_overlap_hides_the_shorter_side() {
        // Compute-bound: the whole comm pipeline hides behind compute.
        let it = IterationTiming { phases: sample(), blocking_reduce: false, overlap: true };
        assert_eq!(it.elapsed(), 4.0);
        // Comm-bound: compute hides behind the pipeline instead.
        let comm_heavy = PhaseTimes {
            computation: 1.0,
            local_comm: 2.0,
            remote_normal: 5.0,
            remote_delegate: 3.0,
        };
        let it = IterationTiming { phases: comm_heavy, blocking_reduce: false, overlap: true };
        assert_eq!(it.elapsed(), 2.0 + 5.0);
        // The blocking rule still serializes the remote phases inside the
        // pipeline side of the max.
        let it = IterationTiming { phases: comm_heavy, blocking_reduce: true, overlap: true };
        assert_eq!(it.elapsed(), 2.0 + 5.0 + 3.0);
    }

    #[test]
    fn overlap_never_exceeds_the_serial_charge() {
        for phases in [
            sample(),
            PhaseTimes {
                computation: 0.0,
                local_comm: 0.5,
                remote_normal: 2.0,
                remote_delegate: 0.1,
            },
            PhaseTimes {
                computation: 9.0,
                local_comm: 0.0,
                remote_normal: 0.0,
                remote_delegate: 0.0,
            },
        ] {
            for blocking in [false, true] {
                let off = IterationTiming { phases, blocking_reduce: blocking, overlap: false };
                let on = IterationTiming { phases, blocking_reduce: blocking, overlap: true };
                assert!(on.elapsed() <= off.elapsed());
                assert!(on.elapsed() >= phases.computation);
            }
        }
    }

    #[test]
    fn degraded_bound_beats_buddy_hosting() {
        assert_eq!(degraded_bound(1), 2.0, "one survivor degenerates to buddy hosting");
        assert_eq!(degraded_bound(15), 16.0 / 15.0);
        assert!(degraded_bound(15) < 2.0);
    }
}
