//! MPI-like collectives executed over real data, with modeled cost.
//!
//! The paper's delegate communication (§V-A) is a two-phase reduction of
//! the delegate bitmasks: GPUs of one MPI rank push their masks to GPU0
//! over NVLink and GPU0 reduces in parallel (local phase), then the GPU0
//! host threads run an `MPI_(I)Allreduce` across ranks (global phase), and
//! every GPU in the rank consumes the result. [`allreduce_or`] performs
//! exactly that dataflow on the simulated cluster and reports the modeled
//! time of both phases separately (they land in different phases of the
//! Fig. 8/10 breakdown).
//!
//! [`local_all2all_regroup`] implements the *Local All2all* optimization of
//! §V-B: regroup traffic inside each rank so that vertices bound for GPU `x`
//! of any rank are all held by the local GPU `x`, cutting the number of
//! cross-rank communication pairs from `p²` to `p²/pgpu`.

use crate::cost::{CostModel, KernelKind};
use crate::topology::{GpuId, Topology};
use gcbfs_compress::{decode_mask, CodecCounts, CompressionMode};
use gcbfs_trace::CollectiveHop;
use rayon::prelude::*;

/// Result of a two-phase bit-or allreduce.
#[derive(Clone, Debug)]
pub struct AllreduceOutcome {
    /// The OR of all input masks; every GPU consumes this.
    pub reduced: Vec<u64>,
    /// Modeled time of the intra-rank reduce + broadcast (NVLink).
    pub local_time: f64,
    /// Modeled time of the cross-rank allreduce (InfiniBand), including
    /// any codec work on the global phase's critical path.
    pub global_time: f64,
    /// Bytes moved per rank pair in the global phase as charged to the
    /// wire: the paper's `d/8` per tree edge uncompressed, or the largest
    /// encoded rank contribution (floored at the transport envelope)
    /// under a compressing mode — the tree round waits for its slowest
    /// edge.
    pub bytes_per_message: u64,
    /// The uncompressed `d/8` message size; equals
    /// [`Self::bytes_per_message`] when compression is off.
    pub raw_bytes_per_message: u64,
    /// Critical-path codec time of the global phase (one encode plus one
    /// decode of the full mask; ranks codec in parallel). Zero when
    /// compression is off. Already included in [`Self::global_time`].
    pub codec_seconds: f64,
    /// Which mask codec each rank's global-phase contribution used.
    pub codec_counts: CodecCounts,
}

impl AllreduceOutcome {
    /// Raw-minus-wire per-message savings (0 when compression is off).
    pub fn bytes_saved_per_message(&self) -> u64 {
        self.raw_bytes_per_message.saturating_sub(self.bytes_per_message)
    }
}

/// The per-hop wire picture of the global allreduce phase, for the
/// observability subsystem.
///
/// The cost model charges `2 · bytes_per_message · num_ranks` remote
/// bytes for the collective — a ring allreduce: a reduce pass of
/// `num_ranks` hops `r → (r+1) mod num_ranks` followed by a broadcast
/// pass of the same shape, each hop carrying one per-message payload.
/// This function materializes exactly those hops, so the sum of the
/// returned `wire_bytes` equals the bytes the driver charges for the
/// mask reduction, hop for hop. A single-rank cluster reduces locally
/// and produces no hops.
pub fn mask_reduce_hops(num_ranks: u32, outcome: &AllreduceOutcome) -> Vec<CollectiveHop> {
    if num_ranks <= 1 {
        return Vec::new();
    }
    let mut hops = Vec::with_capacity(2 * num_ranks as usize);
    for _pass in 0..2 {
        for r in 0..num_ranks {
            hops.push(CollectiveHop {
                src_rank: r,
                dst_rank: (r + 1) % num_ranks,
                raw_bytes: outcome.raw_bytes_per_message,
                wire_bytes: outcome.bytes_per_message,
            });
        }
    }
    hops
}

/// Two-phase bit-or allreduce of one `u64` mask word vector per GPU.
///
/// `blocking` selects `MPI_Allreduce` (true) vs `MPI_Iallreduce` (false)
/// for the global phase; the flavors reduce identically but cost
/// differently (§VI-B).
///
/// # Panics
/// Panics if mask lengths differ or the GPU count does not match the
/// topology.
pub fn allreduce_or(
    topology: Topology,
    cost: &CostModel,
    masks: &[Vec<u64>],
    blocking: bool,
) -> AllreduceOutcome {
    allreduce_or_compressed(topology, cost, masks, blocking, CompressionMode::Off, None)
}

/// [`allreduce_or`] with an optional compression mode on the global
/// (InfiniBand) phase — the §V-A `d/8`-byte messages are this simulator's
/// second remote-byte producer.
///
/// `prev_reduced` is the previous iteration's reduced mask, which every
/// rank already holds after consuming the last collective; the
/// differential [`gcbfs_compress::MaskCodec::SparseIndex`] codec encodes
/// only the bits newly set since then (the visited mask is monotone, so
/// the delta is tiny on most iterations). The *local* NVLink phase always
/// moves raw masks.
///
/// Under a compressing mode every rank's global-phase contribution is
/// really encoded and decoded, and the returned `reduced` is the OR of
/// the *decoded* masks — bit-exactness survives the roundtrip by
/// construction. Per-message wire cost is the largest encoded
/// contribution (a tree round waits for its slowest edge), floored at
/// the transport envelope.
///
/// # Panics
/// Panics if mask lengths differ, the GPU count does not match the
/// topology, or `prev_reduced` has a different width than the masks.
pub fn allreduce_or_compressed(
    topology: Topology,
    cost: &CostModel,
    masks: &[Vec<u64>],
    blocking: bool,
    mode: CompressionMode,
    prev_reduced: Option<&[u64]>,
) -> AllreduceOutcome {
    let p = topology.num_gpus() as usize;
    assert_eq!(masks.len(), p, "one mask per GPU required");
    let words = masks.first().map(Vec::len).unwrap_or(0);
    assert!(masks.iter().all(|m| m.len() == words), "mask lengths must agree");
    if let Some(prev) = prev_reduced {
        assert_eq!(prev.len(), words, "prev_reduced width must match the masks");
    }

    let pgpu = topology.gpus_per_rank() as usize;
    // Local phase: OR within each rank (conceptually: peers push to GPU0).
    let per_rank: Vec<Vec<u64>> = masks
        .par_chunks(pgpu)
        .map(|rank_masks| {
            let mut acc = rank_masks[0].clone();
            for m in &rank_masks[1..] {
                for (a, &b) in acc.iter_mut().zip(m) {
                    *a |= b;
                }
            }
            acc
        })
        .collect();

    let raw_bytes = (words * 8) as u64;
    let local_time = cost.network.local_reduce_time(raw_bytes, topology.gpus_per_rank())
        + cost.network.local_broadcast_time(raw_bytes, topology.gpus_per_rank());
    let nranks = topology.num_ranks();

    let compressing = mode.is_on() && nranks > 1 && words > 0;
    let mut codec_counts = CodecCounts::default();
    let mut codec_seconds = 0f64;
    let mut reduced = vec![0u64; words];
    let bytes_per_message;
    let mut global_time;
    if compressing {
        // Each rank encodes its contribution against the shared previous
        // reduction, the wire carries the encoded image, and the reduce
        // consumes what decodes on the other side.
        let mut max_wire = 0u64;
        for rank_mask in &per_rank {
            let codec = mode.mask_codec(prev_reduced, rank_mask).expect("mode.is_on()");
            let encoded = codec.encode(prev_reduced, rank_mask).expect("mask encode cannot fail");
            max_wire = max_wire.max(encoded.len() as u64);
            codec_counts.record_mask(codec);
            let (decoded, _) =
                decode_mask(&encoded, prev_reduced).expect("self-encoded mask must decode");
            debug_assert_eq!(&decoded, rank_mask, "mask roundtrip must be bit-exact");
            for (a, &b) in reduced.iter_mut().zip(&decoded) {
                *a |= b;
            }
        }
        bytes_per_message = max_wire;
        global_time = cost.network.allreduce_time_floored(max_wire, nranks, blocking);
        // One encode + one decode of the full mask sits on the critical
        // path; ranks codec their contributions in parallel.
        codec_seconds = cost.device.kernel_time(KernelKind::Compress, raw_bytes)
            + cost.device.kernel_time(KernelKind::Decompress, raw_bytes);
        global_time += codec_seconds;
    } else {
        for rank_mask in &per_rank {
            for (a, &b) in reduced.iter_mut().zip(rank_mask) {
                *a |= b;
            }
        }
        bytes_per_message = raw_bytes;
        global_time = cost.network.allreduce_time(raw_bytes, nranks, blocking);
    }

    AllreduceOutcome {
        reduced,
        local_time,
        global_time,
        bytes_per_message,
        raw_bytes_per_message: raw_bytes,
        codec_seconds,
        codec_counts,
    }
}

/// Generic two-phase element-wise allreduce: intra-rank reduce (NVLink, to
/// GPU0) then cross-rank tree reduce — the collective skeleton behind the
/// bit-or mask reduction and its §VI-D generalizations ("more bits of
/// state for delegates"): sum for PageRank scores, min for component
/// labels, and so on.
///
/// `op` must be associative and commutative for the result to be
/// independent of the grid shape.
///
/// # Panics
/// Panics if vector lengths differ or the GPU count does not match.
pub fn allreduce_with<T, F>(
    topology: Topology,
    cost: &CostModel,
    values: &[Vec<T>],
    blocking: bool,
    op: F,
) -> AllreduceValueOutcome<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    let p = topology.num_gpus() as usize;
    assert_eq!(values.len(), p, "one vector per GPU required");
    let len = values.first().map(Vec::len).unwrap_or(0);
    assert!(values.iter().all(|v| v.len() == len), "vector lengths must agree");

    let pgpu = topology.gpus_per_rank() as usize;
    let per_rank: Vec<Vec<T>> = values
        .par_chunks(pgpu)
        .map(|rank_values| {
            let mut acc = rank_values[0].clone();
            for v in &rank_values[1..] {
                for (a, &b) in acc.iter_mut().zip(v) {
                    *a = op(*a, b);
                }
            }
            acc
        })
        .collect();
    let mut iter = per_rank.into_iter();
    let mut reduced = iter.next().unwrap_or_default();
    for rank_vals in iter {
        for (a, b) in reduced.iter_mut().zip(rank_vals) {
            *a = op(*a, b);
        }
    }

    let bytes = (len * std::mem::size_of::<T>()) as u64;
    let local_time = cost.network.local_reduce_time(bytes, topology.gpus_per_rank())
        + cost.network.local_broadcast_time(bytes, topology.gpus_per_rank());
    let global_time = cost.network.allreduce_time(bytes, topology.num_ranks(), blocking);
    AllreduceValueOutcome { reduced, local_time, global_time, bytes_per_message: bytes }
}

/// Two-phase **sum** allreduce of one `f64` vector per GPU (PageRank's
/// delegate scores; 8 bytes per element instead of the mask's 1 bit).
pub fn allreduce_sum(
    topology: Topology,
    cost: &CostModel,
    values: &[Vec<f64>],
    blocking: bool,
) -> AllreduceValueOutcome<f64> {
    allreduce_with(topology, cost, values, blocking, |a, b| a + b)
}

/// Two-phase **min** allreduce of one `u64` vector per GPU (component
/// labels in label-propagation connected components).
pub fn allreduce_min(
    topology: Topology,
    cost: &CostModel,
    values: &[Vec<u64>],
    blocking: bool,
) -> AllreduceValueOutcome<u64> {
    allreduce_with(topology, cost, values, blocking, u64::min)
}

/// Result of a two-phase value allreduce.
#[derive(Clone, Debug)]
pub struct AllreduceValueOutcome<T> {
    /// The element-wise reduction of all inputs; every GPU consumes this.
    pub reduced: Vec<T>,
    /// Modeled time of the intra-rank phase.
    pub local_time: f64,
    /// Modeled time of the cross-rank phase.
    pub global_time: f64,
    /// Bytes per message in the global phase.
    pub bytes_per_message: u64,
}

/// Outcome of the local-all2all regrouping.
#[derive(Clone, Debug)]
pub struct RegroupOutcome<T> {
    /// Items per GPU after regrouping: GPU `(r, g)` now holds exactly the
    /// items (from anywhere in rank `r`) whose destination GPU slot is `g`.
    pub items: Vec<Vec<(GpuId, T)>>,
    /// Items that crossed a GPU boundary inside their rank.
    pub moved_items: u64,
    /// Exact per-peer transfer counts: `moved_counts[from][to]` is the
    /// number of items GPU `from` shipped to GPU `to` (flat indices; the
    /// diagonal — items kept in place — is always zero). Only same-rank
    /// entries can be non-zero, since regrouping never leaves a rank.
    pub moved_counts: Vec<Vec<u64>>,
}

/// The *Local All2all* optimization (§V-B): within each rank, exchange
/// items so that every item destined for GPU slot `g` (of any rank) is held
/// by the local GPU `g`. Afterwards cross-rank traffic only flows between
/// equal GPU slots.
pub fn local_all2all_regroup<T: Send>(
    topology: Topology,
    per_gpu_items: Vec<Vec<(GpuId, T)>>,
) -> RegroupOutcome<T> {
    let p = topology.num_gpus() as usize;
    assert_eq!(per_gpu_items.len(), p, "one item list per GPU required");
    let mut items: Vec<Vec<(GpuId, T)>> = (0..p).map(|_| Vec::new()).collect();
    let mut moved = 0u64;
    let mut moved_counts = vec![vec![0u64; p]; p];
    for (flat, list) in per_gpu_items.into_iter().enumerate() {
        let holder = topology.unflat(flat);
        for (dest, payload) in list {
            // The regrouped holder is the GPU in the same rank whose slot
            // matches the destination's slot.
            let new_holder = GpuId { rank: holder.rank, gpu: dest.gpu };
            let new_flat = topology.flat(new_holder);
            if new_holder != holder {
                moved += 1;
                moved_counts[flat][new_flat] += 1;
            }
            items[new_flat].push((dest, payload));
        }
    }
    RegroupOutcome { items, moved_items: moved, moved_counts }
}

/// Verifies the post-regroup invariant: every held item's destination slot
/// equals the holder's slot. Used by tests and debug assertions.
pub fn regroup_invariant_holds<T>(topology: Topology, items: &[Vec<(GpuId, T)>]) -> bool {
    items.iter().enumerate().all(|(flat, list)| {
        let holder = topology.unflat(flat);
        list.iter().all(|(dest, _)| dest.gpu == holder.gpu)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_ors_all_masks() {
        let topo = Topology::new(2, 2);
        let cost = CostModel::ray();
        let masks = vec![vec![0b0001u64], vec![0b0010], vec![0b0100], vec![0b1000]];
        let out = allreduce_or(topo, &cost, &masks, true);
        assert_eq!(out.reduced, vec![0b1111]);
        assert!(out.local_time > 0.0);
        assert!(out.global_time > 0.0);
        assert_eq!(out.bytes_per_message, 8);
    }

    #[test]
    fn allreduce_single_gpu_is_identity_and_free() {
        let topo = Topology::new(1, 1);
        let cost = CostModel::ray();
        let out = allreduce_or(topo, &cost, &[vec![42, 7]], false);
        assert_eq!(out.reduced, vec![42, 7]);
        assert_eq!(out.local_time, 0.0);
        assert_eq!(out.global_time, 0.0);
    }

    #[test]
    fn allreduce_multi_word() {
        let topo = Topology::new(2, 1);
        let cost = CostModel::ray();
        let out = allreduce_or(topo, &cost, &[vec![1, 0, u64::MAX], vec![2, 4, 0]], true);
        assert_eq!(out.reduced, vec![3, 4, u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "lengths must agree")]
    fn allreduce_rejects_ragged_masks() {
        let topo = Topology::new(2, 1);
        let cost = CostModel::ray();
        let _ = allreduce_or(topo, &cost, &[vec![1], vec![1, 2]], true);
    }

    #[test]
    fn allreduce_sum_adds_everything() {
        let topo = Topology::new(2, 2);
        let cost = CostModel::ray();
        let values = vec![vec![1.0, 0.5], vec![2.0, 0.0], vec![3.0, -1.0], vec![4.0, 0.25]];
        let out = allreduce_sum(topo, &cost, &values, true);
        assert_eq!(out.reduced, vec![10.0, -0.25]);
        assert_eq!(out.bytes_per_message, 16);
        assert!(out.global_time > 0.0);
    }

    #[test]
    fn allreduce_min_takes_minimum() {
        let topo = Topology::new(3, 1);
        let cost = CostModel::ray();
        let values = vec![vec![5u64, 9, 1], vec![3, 9, 2], vec![7, 8, 0]];
        let out = allreduce_min(topo, &cost, &values, true);
        assert_eq!(out.reduced, vec![3, 8, 0]);
        assert_eq!(out.bytes_per_message, 24);
    }

    #[test]
    fn allreduce_with_is_grid_shape_independent() {
        let cost = CostModel::ray();
        let values: Vec<Vec<u64>> =
            (0..8).map(|g| (0..5).map(|i| (g * 7 + i * 3) % 11).collect()).collect();
        let flat = allreduce_min(Topology::new(8, 1), &cost, &values, true).reduced;
        let square = allreduce_min(Topology::new(2, 4), &cost, &values, true).reduced;
        assert_eq!(flat, square);
    }

    #[test]
    fn allreduce_empty_vectors() {
        let topo = Topology::new(2, 1);
        let cost = CostModel::ray();
        let out = allreduce_sum(topo, &cost, &[vec![], vec![]], true);
        assert!(out.reduced.is_empty());
        assert_eq!(out.bytes_per_message, 0);
    }

    #[test]
    fn allreduce_sum_costs_8x_the_mask() {
        // §VI-D: PageRank's delegate state is 64x the BFS bit per delegate;
        // for the same element count the sum reduce moves 8x the bytes of
        // a u64-word mask holding 64 delegates each.
        let topo = Topology::new(4, 1);
        let cost = CostModel::ray();
        let masks = vec![vec![0u64; 128]; 4]; // 128 words = 8192 delegates
        let scores = vec![vec![0f64; 8192]; 4]; // same delegates as f64
        let or = allreduce_or(topo, &cost, &masks, true);
        let sum = allreduce_sum(topo, &cost, &scores, true);
        assert_eq!(sum.bytes_per_message, 64 * or.bytes_per_message);
        assert!(sum.global_time > or.global_time);
    }

    #[test]
    fn compressed_allreduce_reduces_identically() {
        let topo = Topology::new(4, 2);
        let cost = CostModel::ray();
        let masks: Vec<Vec<u64>> =
            (0..8).map(|g| (0..64).map(|w| ((g + w) % 7 == 0) as u64).collect()).collect();
        let reference = allreduce_or(topo, &cost, &masks, true);
        for mode in [
            CompressionMode::Adaptive,
            CompressionMode::Fixed(
                gcbfs_compress::FrontierCodec::Raw32,
                gcbfs_compress::MaskCodec::RleMask,
            ),
            CompressionMode::Fixed(
                gcbfs_compress::FrontierCodec::Raw32,
                gcbfs_compress::MaskCodec::SparseIndex,
            ),
        ] {
            let out = allreduce_or_compressed(topo, &cost, &masks, true, mode, None);
            assert_eq!(out.reduced, reference.reduced, "mode {mode} changed the reduction");
            assert_eq!(out.raw_bytes_per_message, reference.bytes_per_message);
            assert!(out.codec_counts.mask_total() as u32 == topo.num_ranks());
        }
    }

    #[test]
    fn sparse_masks_shrink_the_global_message() {
        let topo = Topology::new(8, 1);
        let cost = CostModel::ray();
        // 4096 delegates, a handful set: the RLE/sparse regime.
        let mut masks = vec![vec![0u64; 64]; 8];
        for (g, m) in masks.iter_mut().enumerate() {
            m[g * 7] = 1 << (g * 3);
        }
        let raw = allreduce_or(topo, &cost, &masks, true);
        let out =
            allreduce_or_compressed(topo, &cost, &masks, true, CompressionMode::Adaptive, None);
        assert!(
            out.bytes_per_message < raw.bytes_per_message,
            "compressed {} must beat raw {}",
            out.bytes_per_message,
            raw.bytes_per_message
        );
        assert!(out.bytes_saved_per_message() > 0);
        assert!(out.codec_seconds > 0.0);
        assert_eq!(out.reduced, raw.reduced);
    }

    #[test]
    fn differential_encoding_uses_prev_reduction() {
        let topo = Topology::new(4, 1);
        let cost = CostModel::ray();
        // A saturated-ish mask that barely changed since last iteration:
        // sparse-index against prev crushes it, plain RLE cannot.
        let prev: Vec<u64> = (0..256).map(|w| (w as u64).wrapping_mul(0x9e37_79b9)).collect();
        let mut masks = vec![prev.clone(); 4];
        masks[2][100] |= 1 << 40;
        let with_prev = allreduce_or_compressed(
            topo,
            &cost,
            &masks,
            true,
            CompressionMode::Adaptive,
            Some(&prev),
        );
        let without_prev =
            allreduce_or_compressed(topo, &cost, &masks, true, CompressionMode::Adaptive, None);
        assert!(with_prev.bytes_per_message < without_prev.bytes_per_message);
        assert!(with_prev.codec_counts.sparse_index > 0);
        assert_eq!(with_prev.reduced, without_prev.reduced);
    }

    #[test]
    fn off_mode_is_bitwise_the_baseline() {
        let topo = Topology::new(2, 2);
        let cost = CostModel::ray();
        let masks = vec![vec![0b0001u64], vec![0b0010], vec![0b0100], vec![0b1000]];
        let out =
            allreduce_or_compressed(topo, &cost, &masks, true, CompressionMode::Off, Some(&[0]));
        let base = allreduce_or(topo, &cost, &masks, true);
        assert_eq!(out.reduced, base.reduced);
        assert_eq!(out.global_time, base.global_time);
        assert_eq!(out.bytes_per_message, base.bytes_per_message);
        assert_eq!(out.codec_seconds, 0.0);
    }

    #[test]
    fn mask_hops_sum_to_charged_collective_bytes() {
        let topo = Topology::new(4, 2);
        let cost = CostModel::ray();
        let masks: Vec<Vec<u64>> = (0..8).map(|g| vec![1u64 << g; 16]).collect();
        let out = allreduce_or(topo, &cost, &masks, true);
        let hops = mask_reduce_hops(topo.num_ranks(), &out);
        // Ring allreduce: reduce pass + broadcast pass, one hop per rank each.
        assert_eq!(hops.len(), 2 * topo.num_ranks() as usize);
        let wire: u64 = hops.iter().map(|h| h.wire_bytes).sum();
        assert_eq!(wire, 2 * out.bytes_per_message * topo.num_ranks() as u64);
        let raw: u64 = hops.iter().map(|h| h.raw_bytes).sum();
        assert_eq!(raw, 2 * out.raw_bytes_per_message * topo.num_ranks() as u64);
        assert!(hops.iter().all(|h| h.src_rank != h.dst_rank && h.dst_rank < 4));
    }

    #[test]
    fn mask_hops_empty_on_single_rank() {
        let topo = Topology::new(1, 4);
        let cost = CostModel::ray();
        let masks = vec![vec![1u64]; 4];
        let out = allreduce_or(topo, &cost, &masks, true);
        assert!(mask_reduce_hops(1, &out).is_empty());
    }

    #[test]
    fn regroup_moves_items_to_matching_slot() {
        let topo = Topology::new(2, 2);
        // GPU (0,0) holds items for (1,1) and (0,0); GPU (1,1) for (0,0).
        let mut per_gpu: Vec<Vec<(GpuId, u32)>> = vec![Vec::new(); 4];
        per_gpu[0].push((GpuId { rank: 1, gpu: 1 }, 10));
        per_gpu[0].push((GpuId { rank: 0, gpu: 0 }, 11));
        per_gpu[3].push((GpuId { rank: 0, gpu: 0 }, 12));
        let out = local_all2all_regroup(topo, per_gpu);
        assert!(regroup_invariant_holds(topo, &out.items));
        // Item 10 moved (0,0) -> (0,1); item 12 moved (1,1) -> (1,0).
        assert_eq!(out.moved_items, 2);
        // Exact per-peer counts: one item each on those two edges, nothing
        // else, and a zero diagonal.
        assert_eq!(out.moved_counts[0][1], 1);
        assert_eq!(out.moved_counts[3][2], 1);
        let total: u64 = out.moved_counts.iter().flatten().sum();
        assert_eq!(total, out.moved_items);
        assert!((0..4).all(|g| out.moved_counts[g][g] == 0));
        assert_eq!(
            out.items[topo.flat(GpuId { rank: 0, gpu: 1 })],
            vec![(GpuId { rank: 1, gpu: 1 }, 10)]
        );
        assert_eq!(
            out.items[topo.flat(GpuId { rank: 1, gpu: 0 })],
            vec![(GpuId { rank: 0, gpu: 0 }, 12)]
        );
    }

    #[test]
    fn regroup_cuts_communication_pairs() {
        // After regrouping, distinct (holder, destination-GPU) cross-rank
        // pairs only connect equal slots: p^2/pgpu pairs, the paper's claim.
        let topo = Topology::new(3, 2);
        let mut per_gpu: Vec<Vec<(GpuId, u8)>> = vec![Vec::new(); 6];
        for holder in per_gpu.iter_mut() {
            for dest in topo.gpus() {
                holder.push((dest, 0));
            }
        }
        let out = local_all2all_regroup(topo, per_gpu);
        let mut pairs = std::collections::HashSet::new();
        for (flat, list) in out.items.iter().enumerate() {
            let holder = topo.unflat(flat);
            for (dest, _) in list {
                if dest.rank != holder.rank {
                    pairs.insert((flat, topo.flat(*dest)));
                }
            }
        }
        let p = topo.num_gpus() as usize;
        // After regrouping, cross-rank pairs connect equal slots only:
        // p * (prank - 1), far fewer than the p * (p - 1) unrestricted pairs.
        assert_eq!(pairs.len(), p * (topo.num_ranks() as usize - 1));
        assert!(pairs.len() < p * p - p, "regrouping must shrink the pair count");
    }

    #[test]
    fn regroup_empty_is_empty() {
        let topo = Topology::new(2, 2);
        let out: RegroupOutcome<u8> = local_all2all_regroup(topo, vec![Vec::new(); 4]);
        assert_eq!(out.moved_items, 0);
        assert!(out.items.iter().all(Vec::is_empty));
    }
}
