//! Deterministic BSP message fabric between simulated GPUs.
//!
//! The paper's implementation is bulk-synchronous: each BFS iteration runs
//! local kernels on every GPU, then exchanges data (`MPI_Isend/Irecv` for
//! normal vertices, `MPI_(I)Allreduce` for delegate masks), then starts the
//! next iteration. The fabric mirrors that: [`Fabric::step`] runs one
//! superstep — a user closure per GPU, executed in parallel with rayon —
//! and delivers all messages produced before the next superstep begins.
//!
//! Delivery is deterministic regardless of host thread count: inboxes are
//! ordered by sending GPU.

use crate::fault::{FaultError, FaultInjector, MessageFate};
use crate::topology::Topology;
use gcbfs_compress::{IntegrityError, SealedPayload};
use gcbfs_trace::{Channel, MessageEvent, MessageKind};
use rayon::prelude::*;

/// Why a superstep could not run or deliver. The panicking
/// [`Fabric::step`] wraps these as messages; the fallible
/// [`Fabric::try_step`] and [`Fabric::step_with_faults`] surface them
/// directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FabricError {
    /// `states.len()` does not match the device grid.
    StateCountMismatch {
        /// GPUs in the grid.
        expected: usize,
        /// States supplied.
        actual: usize,
    },
    /// A message was addressed outside the device grid.
    MisaddressedMessage {
        /// Flat index of the sending GPU.
        from: usize,
        /// The invalid destination.
        to: usize,
        /// GPUs in the grid.
        num_gpus: usize,
    },
    /// A fault was detected at the superstep boundary (fail-stop loss).
    Fault(FaultError),
    /// A sealed compressed payload failed its checksum at the consumption
    /// boundary ([`Fabric::step_sealed`]): the bytes were corrupted in
    /// transit. The caller's retry path re-encodes — encoding is a pure
    /// function of the input, so the retransmission carries the identical
    /// wire image.
    IntegrityFailure {
        /// Flat index of the sending GPU.
        from: usize,
        /// Flat index of the receiving GPU.
        to: usize,
        /// The checksum mismatch.
        error: IntegrityError,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::StateCountMismatch { expected, actual } => {
                write!(f, "one state per GPU required: got {actual} states for {expected} GPUs")
            }
            Self::MisaddressedMessage { from, to, num_gpus } => {
                write!(f, "message from GPU {from} addressed to GPU {to}, grid has {num_gpus}")
            }
            Self::Fault(e) => write!(f, "fault detected: {e}"),
            Self::IntegrityFailure { from, to, error } => {
                write!(f, "compressed payload from GPU {from} to GPU {to} corrupt: {error}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

impl From<FaultError> for FabricError {
    fn from(e: FaultError) -> Self {
        Self::Fault(e)
    }
}

/// Messages produced by one GPU during a superstep.
#[derive(Clone, Debug)]
pub struct Outbox<M> {
    messages: Vec<(usize, M)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Self { messages: Vec::new() }
    }
}

impl<M> Outbox<M> {
    /// Queues `payload` for delivery to the GPU with flat index `to` at the
    /// end of the superstep.
    pub fn send(&mut self, to: usize, payload: M) {
        self.messages.push((to, payload));
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True if nothing was queued.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

/// A BSP fabric over the GPUs of `topology`, carrying messages of type `M`.
pub struct Fabric<M> {
    topology: Topology,
    /// `inboxes[gpu]` = messages delivered at the last superstep boundary,
    /// as `(from, payload)`, sorted by `from`.
    inboxes: Vec<Vec<(usize, M)>>,
    /// Superstep counter (faults are scheduled against it).
    superstep: u64,
    /// Delayed messages as `(due_superstep, to, from, payload)`, waiting to
    /// be merged into an inbox once their due superstep is delivered.
    delayed: Vec<(u64, usize, usize, M)>,
    /// When true, every actual delivery is appended to `observed`.
    observe: bool,
    /// Typed delivery events recorded since the last drain (see
    /// [`Fabric::enable_observation`]).
    observed: Vec<MessageEvent>,
}

impl<M: Send> Fabric<M> {
    /// Creates an idle fabric with empty inboxes.
    pub fn new(topology: Topology) -> Self {
        let inboxes = (0..topology.num_gpus() as usize).map(|_| Vec::new()).collect();
        Self {
            topology,
            inboxes,
            superstep: 0,
            delayed: Vec::new(),
            observe: false,
            observed: Vec::new(),
        }
    }

    /// Turns on delivery observation: every message that actually lands
    /// in an inbox (including duplicates and late deliveries of delayed
    /// messages; never drops, which do not deliver) is recorded as a
    /// typed [`MessageEvent`]. The fabric has no cost model, so events
    /// are stamped in *superstep coordinates* (`ts` = the superstep
    /// index at delivery) and byte counts report the in-memory payload
    /// envelope (`size_of::<M>()`); callers that want modeled-time
    /// message accounting use the BFS driver's span sink instead.
    pub fn enable_observation(&mut self) {
        self.observe = true;
    }

    /// Takes the delivery events recorded since the last drain (empty
    /// unless [`Fabric::enable_observation`] was called). Events are in
    /// deterministic delivery order: delayed-then-due messages first,
    /// then outboxes by sending GPU.
    pub fn drain_observed(&mut self) -> Vec<MessageEvent> {
        std::mem::take(&mut self.observed)
    }

    /// Builds the observation event for one delivery.
    fn observe_delivery(&self, from: usize, to: usize) -> MessageEvent {
        let bytes = std::mem::size_of::<M>() as u64;
        let channel = if self.topology.unflat(from).rank == self.topology.unflat(to).rank {
            Channel::IntraRank
        } else {
            Channel::CrossRank
        };
        MessageEvent {
            iter: self.superstep.min(u32::MAX as u64) as u32,
            ts: self.superstep as f64,
            src: from as u32,
            dst: to as u32,
            channel,
            kind: MessageKind::Fabric,
            raw_bytes: bytes,
            wire_bytes: bytes,
        }
    }

    /// The device grid this fabric connects.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Runs one superstep: for every GPU (in parallel), calls
    /// `f(gpu, inbox, outbox)` where `inbox` is the messages delivered to
    /// that GPU at the previous boundary; then delivers all outboxes.
    /// Returns the per-GPU results of `f` in flat order.
    ///
    /// # Panics
    /// Panics if a message is addressed outside the device grid or the
    /// state count does not match the grid. Use [`Fabric::try_step`] for
    /// the typed-error equivalent.
    pub fn step<S, R, F>(&mut self, states: &mut [S], f: F) -> Vec<R>
    where
        S: Send,
        R: Send,
        F: Fn(usize, &mut S, Vec<(usize, M)>, &mut Outbox<M>) -> R + Sync,
    {
        match self.try_step(states, f) {
            Ok(r) => r,
            Err(e @ FabricError::StateCountMismatch { .. }) => {
                panic!("one state per GPU required: {e}")
            }
            Err(e @ FabricError::MisaddressedMessage { .. }) => {
                panic!("{e}")
            }
            Err(e) => panic!("superstep failed: {e}"),
        }
    }

    /// Fallible superstep: like [`Fabric::step`], but surfaces invalid
    /// input as [`FabricError`] instead of panicking. On
    /// [`FabricError::MisaddressedMessage`] the whole superstep's output
    /// is discarded (BSP semantics: the superstep never commits).
    pub fn try_step<S, R, F>(&mut self, states: &mut [S], f: F) -> Result<Vec<R>, FabricError>
    where
        S: Send,
        R: Send,
        F: Fn(usize, &mut S, Vec<(usize, M)>, &mut Outbox<M>) -> R + Sync,
    {
        self.run_superstep(states, f, None, None)
    }

    /// Fault-injected superstep: each queued message consults `injector`
    /// for its fate (deliver / drop / duplicate / delay by `k`
    /// supersteps), and the injector's heartbeat is checked at the
    /// delivery boundary — a scheduled fail-stop surfaces as
    /// [`FabricError::Fault`] *after* delivery, modeling detection at the
    /// end of the superstep. Requires `M: Clone` for duplication.
    pub fn step_with_faults<S, R, F>(
        &mut self,
        states: &mut [S],
        injector: &mut FaultInjector,
        f: F,
    ) -> Result<Vec<R>, FabricError>
    where
        S: Send,
        R: Send,
        M: Clone,
        F: Fn(usize, &mut S, Vec<(usize, M)>, &mut Outbox<M>) -> R + Sync,
    {
        self.run_superstep(states, f, Some(injector), Some(&|m: &M| m.clone()))
    }

    fn run_superstep<S, R, F>(
        &mut self,
        states: &mut [S],
        f: F,
        mut injector: Option<&mut FaultInjector>,
        dup: Option<&dyn Fn(&M) -> M>,
    ) -> Result<Vec<R>, FabricError>
    where
        S: Send,
        R: Send,
        F: Fn(usize, &mut S, Vec<(usize, M)>, &mut Outbox<M>) -> R + Sync,
    {
        let n = self.topology.num_gpus() as usize;
        if states.len() != n {
            return Err(FabricError::StateCountMismatch { expected: n, actual: states.len() });
        }
        let inboxes = std::mem::take(&mut self.inboxes);
        let (results, outboxes): (Vec<R>, Vec<Outbox<M>>) = states
            .par_iter_mut()
            .zip(inboxes)
            .enumerate()
            .map(|(gpu, (state, inbox))| {
                let mut outbox = Outbox::default();
                let r = f(gpu, state, inbox, &mut outbox);
                (r, outbox)
            })
            .unzip();
        if let Err(e) = self.deliver(outboxes, injector.as_deref_mut(), dup) {
            // The superstep never commits: restore empty inboxes so the
            // fabric stays usable after the typed error.
            self.inboxes = (0..n).map(|_| Vec::new()).collect();
            return Err(e);
        }
        self.superstep += 1;
        if let Some(inj) = injector {
            inj.heartbeat(self.superstep.min(u32::MAX as u64) as u32 - 1)
                .map_err(FabricError::Fault)?;
        }
        Ok(results)
    }

    /// Delivers outboxes into inboxes, ordered by sending GPU; applies
    /// per-message fates when an injector is active, where duplication
    /// requires cloning (guaranteed by the `step_with_faults` bound; the
    /// fault-free path never clones).
    fn deliver(
        &mut self,
        outboxes: Vec<Outbox<M>>,
        mut injector: Option<&mut FaultInjector>,
        dup: Option<&dyn Fn(&M) -> M>,
    ) -> Result<(), FabricError> {
        let n = self.topology.num_gpus() as usize;
        let step = self.superstep;
        let mut inboxes: Vec<Vec<(usize, M)>> = (0..n).map(|_| Vec::new()).collect();
        // Messages delayed by earlier supersteps that are now due.
        let mut still_delayed = Vec::new();
        let mut observed = Vec::new();
        for (due, to, from, payload) in self.delayed.drain(..) {
            if due <= step + 1 {
                if self.observe {
                    observed.push((from, to));
                }
                inboxes[to].push((from, payload));
            } else {
                still_delayed.push((due, to, from, payload));
            }
        }
        self.delayed = still_delayed;
        for (from, outbox) in outboxes.into_iter().enumerate() {
            for (idx, (to, payload)) in outbox.messages.into_iter().enumerate() {
                if to >= n {
                    return Err(FabricError::MisaddressedMessage { from, to, num_gpus: n });
                }
                let fate = match injector.as_deref_mut() {
                    Some(inj) => inj.message_fate(
                        step.min(u32::MAX as u64) as u32,
                        0,
                        (from * n + to) as u64,
                        idx as u64,
                    ),
                    None => MessageFate::Deliver,
                };
                match fate {
                    MessageFate::Deliver => {
                        if self.observe {
                            observed.push((from, to));
                        }
                        inboxes[to].push((from, payload));
                    }
                    MessageFate::Drop => {}
                    MessageFate::Duplicate => {
                        // `step_with_faults` (the only entry point with an
                        // injector) bounds `M: Clone` and passes `dup`; the
                        // fault-free path passes `None` and never sees a
                        // `Duplicate` fate.
                        let copy = dup.map(|d| d(&payload));
                        if self.observe {
                            observed.push((from, to));
                        }
                        inboxes[to].push((from, payload));
                        if let Some(copy) = copy {
                            if self.observe {
                                observed.push((from, to));
                            }
                            inboxes[to].push((from, copy));
                        }
                    }
                    MessageFate::Delay(k) => {
                        self.delayed.push((step + 1 + k as u64, to, from, payload));
                    }
                }
            }
        }
        // `from` arrives in increasing order already (outer loop), but a
        // stable sort makes the invariant explicit and future-proof (and
        // orders late-delivered delayed messages deterministically).
        for inbox in &mut inboxes {
            inbox.sort_by_key(|&(from, _)| from);
        }
        for (from, to) in observed {
            let ev = self.observe_delivery(from, to);
            self.observed.push(ev);
        }
        self.inboxes = inboxes;
        Ok(())
    }

    /// True if no messages are waiting anywhere — neither queued for the
    /// next superstep nor delayed in flight (quiescence check used for BFS
    /// termination).
    pub fn is_quiescent(&self) -> bool {
        self.inboxes.iter().all(Vec::is_empty) && self.delayed.is_empty()
    }

    /// Total queued messages across all inboxes (excluding delayed ones).
    pub fn pending_messages(&self) -> usize {
        self.inboxes.iter().map(Vec::len).sum()
    }

    /// Messages currently held up by injected delays.
    pub fn delayed_messages(&self) -> usize {
        self.delayed.len()
    }

    /// Supersteps completed so far.
    pub fn supersteps(&self) -> u64 {
        self.superstep
    }
}

impl Fabric<SealedPayload> {
    /// Superstep over a typed compressed-payload channel.
    ///
    /// Like [`Fabric::step_with_faults`] (pass `injector: None` for the
    /// fault-free flavor), but every sealed payload waiting in an inbox is
    /// checksum-verified *before* the closures consume it — a payload
    /// corrupted in transit surfaces as
    /// [`FabricError::IntegrityFailure`] instead of decoding into garbage
    /// ids. Compressed bytes are denser than raw ones (one flipped bit
    /// can shift every later varint), so the compressed channel gets the
    /// end-to-end check the raw channel does not need.
    ///
    /// On an integrity failure the superstep never runs: inboxes are kept
    /// so the caller can drop the poisoned message and retry —
    /// re-encoding is deterministic, so the retransmitted payload seals
    /// to the identical wire image.
    pub fn step_sealed<S, R, F>(
        &mut self,
        states: &mut [S],
        injector: Option<&mut FaultInjector>,
        f: F,
    ) -> Result<Vec<R>, FabricError>
    where
        S: Send,
        R: Send,
        F: Fn(usize, &mut S, Vec<(usize, SealedPayload)>, &mut Outbox<SealedPayload>) -> R + Sync,
    {
        for (to, inbox) in self.inboxes.iter().enumerate() {
            for (from, payload) in inbox {
                if let Err(error) = payload.open() {
                    return Err(FabricError::IntegrityFailure { from: *from, to, error });
                }
            }
        }
        self.run_superstep(states, f, injector, Some(&|m: &SealedPayload| m.clone()))
    }

    /// Chaos hook for tests and fault drills: flips one byte of the
    /// `nth` pending sealed message (counting across inboxes in flat
    /// order), breaking its seal. Returns `false` if there is no such
    /// message or it has an empty payload.
    pub fn corrupt_pending_payload(&mut self, nth: usize) -> bool {
        let mut i = 0;
        for inbox in &mut self.inboxes {
            for (_, payload) in inbox.iter_mut() {
                if i == nth {
                    return match payload.bytes_mut().first_mut() {
                        Some(b) => {
                            *b ^= 0x01;
                            true
                        }
                        None => false,
                    };
                }
                i += 1;
            }
        }
        false
    }

    /// Drops every pending sealed message whose seal no longer verifies,
    /// returning how many were discarded — the receiver-side half of the
    /// drop-and-retransmit recovery path.
    pub fn drop_corrupt_pending(&mut self) -> usize {
        let mut dropped = 0;
        for inbox in &mut self.inboxes {
            let before = inbox.len();
            inbox.retain(|(_, payload)| payload.is_intact());
            dropped += before - inbox.len();
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_next_superstep() {
        let topo = Topology::new(2, 2);
        let mut fabric: Fabric<u64> = Fabric::new(topo);
        let mut states = vec![0u64; 4];

        // Superstep 1: everyone sends its id to GPU 0.
        fabric.step(&mut states, |gpu, _s, inbox, out| {
            assert!(inbox.is_empty());
            out.send(0, gpu as u64 * 10);
        });
        assert_eq!(fabric.pending_messages(), 4);

        // Superstep 2: GPU 0 sums what it received.
        fabric.step(&mut states, |gpu, s, inbox, _out| {
            if gpu == 0 {
                assert_eq!(
                    inbox,
                    vec![(0, 0), (1, 10), (2, 20), (3, 30)],
                    "inbox must be ordered by sender"
                );
                *s = inbox.iter().map(|&(_, m)| m).sum();
            } else {
                assert!(inbox.is_empty());
            }
        });
        assert_eq!(states[0], 60);
        assert!(fabric.is_quiescent());
    }

    #[test]
    fn results_in_flat_order() {
        let topo = Topology::new(1, 3);
        let mut fabric: Fabric<()> = Fabric::new(topo);
        let mut states = vec![(); 3];
        let r = fabric.step(&mut states, |gpu, _, _, _| gpu * gpu);
        assert_eq!(r, vec![0, 1, 4]);
    }

    #[test]
    fn ring_pass_is_deterministic() {
        let topo = Topology::new(4, 1);
        let mut fabric: Fabric<u32> = Fabric::new(topo);
        let mut tokens = vec![1u32, 0, 0, 0];
        for _ in 0..8 {
            fabric.step(&mut tokens, |gpu, t, inbox, out| {
                for (_, v) in inbox {
                    *t += v;
                }
                if *t > 0 {
                    out.send((gpu + 1) % 4, *t);
                }
            });
        }
        // After 8 steps the token has circulated; totals are deterministic.
        let again = {
            let mut fabric: Fabric<u32> = Fabric::new(topo);
            let mut tokens = vec![1u32, 0, 0, 0];
            for _ in 0..8 {
                fabric.step(&mut tokens, |gpu, t, inbox, out| {
                    for (_, v) in inbox {
                        *t += v;
                    }
                    if *t > 0 {
                        out.send((gpu + 1) % 4, *t);
                    }
                });
            }
            tokens
        };
        assert_eq!(tokens, again);
    }

    #[test]
    #[should_panic(expected = "addressed to GPU")]
    fn out_of_range_destination_panics() {
        let topo = Topology::new(1, 2);
        let mut fabric: Fabric<()> = Fabric::new(topo);
        let mut states = vec![(), ()];
        fabric.step(&mut states, |_, _, _, out| out.send(5, ()));
    }

    #[test]
    #[should_panic(expected = "one state per GPU")]
    fn state_count_mismatch_panics() {
        let topo = Topology::new(1, 2);
        let mut fabric: Fabric<()> = Fabric::new(topo);
        let mut states = vec![()];
        fabric.step(&mut states, |_, _, _, _| ());
    }

    #[test]
    fn try_step_surfaces_typed_errors() {
        let topo = Topology::new(1, 2);
        let mut fabric: Fabric<()> = Fabric::new(topo);
        let mut short = vec![()];
        assert_eq!(
            fabric.try_step(&mut short, |_, _, _, _| ()),
            Err(FabricError::StateCountMismatch { expected: 2, actual: 1 })
        );
        let mut states = vec![(), ()];
        assert_eq!(
            fabric.try_step(&mut states, |_, _, _, out| out.send(5, ())),
            Err(FabricError::MisaddressedMessage { from: 0, to: 5, num_gpus: 2 })
        );
        // Errors are recoverable: a subsequent valid superstep works.
        assert!(fabric.try_step(&mut states, |gpu, _, _, out| out.send(1 - gpu, ())).is_ok());
        assert_eq!(fabric.pending_messages(), 2);
    }

    #[test]
    fn fabric_error_display_is_informative() {
        let e = FabricError::MisaddressedMessage { from: 1, to: 9, num_gpus: 4 };
        let s = e.to_string();
        assert!(s.contains("GPU 9") && s.contains("4"), "got: {s}");
        let f = FabricError::Fault(crate::fault::FaultError::GpuFailed { gpu: 3, iteration: 2 });
        assert!(f.to_string().contains("GPU 3"));
    }

    #[test]
    fn benign_injector_changes_nothing() {
        use crate::fault::{FaultInjector, FaultPlan};
        let topo = Topology::new(2, 2);
        let run = |inject: bool| {
            let mut fabric: Fabric<u64> = Fabric::new(topo);
            let mut states = vec![0u64; 4];
            let mut inj = FaultInjector::new(FaultPlan::new(1));
            for _ in 0..4 {
                let f =
                    |gpu: usize, s: &mut u64, inbox: Vec<(usize, u64)>, out: &mut Outbox<u64>| {
                        *s += inbox.iter().map(|&(_, v)| v).sum::<u64>();
                        out.send((gpu + 1) % 4, gpu as u64 + 1);
                    };
                if inject {
                    fabric.step_with_faults(&mut states, &mut inj, f).unwrap();
                } else {
                    fabric.step(&mut states, f);
                }
            }
            states
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn dropped_messages_never_arrive() {
        use crate::fault::{FaultInjector, FaultPlan};
        let topo = Topology::new(1, 2);
        let mut fabric: Fabric<u32> = Fabric::new(topo);
        let mut inj = FaultInjector::new(FaultPlan::new(11).with_message_faults(1.0, 0.0, 0.0));
        let mut states = vec![0u32; 2];
        fabric
            .step_with_faults(&mut states, &mut inj, |gpu, _, _, out| {
                out.send(1 - gpu, 7);
            })
            .unwrap();
        assert!(fabric.is_quiescent(), "all messages dropped");
        assert_eq!(inj.counters().drops, 2);
    }

    #[test]
    fn duplicated_messages_arrive_twice() {
        use crate::fault::{FaultInjector, FaultPlan};
        let topo = Topology::new(1, 2);
        let mut fabric: Fabric<u32> = Fabric::new(topo);
        let mut inj = FaultInjector::new(FaultPlan::new(11).with_message_faults(0.0, 1.0, 0.0));
        let mut states = vec![0u32; 2];
        fabric
            .step_with_faults(&mut states, &mut inj, |gpu, _, _, out| {
                if gpu == 0 {
                    out.send(1, 7);
                }
            })
            .unwrap();
        assert_eq!(fabric.pending_messages(), 2);
        fabric
            .step_with_faults(&mut states, &mut inj, |_, s, inbox, _| {
                *s += inbox.iter().map(|&(_, v)| v).sum::<u32>();
            })
            .unwrap();
        assert_eq!(states[1], 14, "duplicate delivered twice");
    }

    #[test]
    fn delayed_messages_arrive_late_but_arrive() {
        use crate::fault::{FaultInjector, FaultPlan};
        let topo = Topology::new(1, 2);
        let mut fabric: Fabric<u32> = Fabric::new(topo);
        let mut inj = FaultInjector::new(
            FaultPlan::new(11).with_message_faults(0.0, 0.0, 1.0).with_max_delay(1),
        );
        let mut states = vec![0u32; 2];
        fabric
            .step_with_faults(&mut states, &mut inj, |gpu, _, _, out| {
                if gpu == 0 {
                    out.send(1, 9);
                }
            })
            .unwrap();
        assert_eq!(fabric.pending_messages(), 0, "delayed past this boundary");
        assert_eq!(fabric.delayed_messages(), 1);
        assert!(!fabric.is_quiescent(), "a delayed message still counts as in flight");
        // Next superstep: the delayed message becomes deliverable.
        fabric.step_with_faults(&mut states, &mut inj, |_, _, _, _| ()).unwrap();
        assert_eq!(fabric.pending_messages(), 1);
        fabric
            .step_with_faults(&mut states, &mut inj, |_, s, inbox, _| {
                *s += inbox.iter().map(|&(_, v)| v).sum::<u32>();
            })
            .unwrap();
        assert_eq!(states[1], 9);
        assert!(fabric.is_quiescent());
    }

    #[test]
    fn observation_records_deliveries_with_channels() {
        let topo = Topology::new(2, 2);
        let mut fabric: Fabric<u64> = Fabric::new(topo);
        fabric.enable_observation();
        let mut states = vec![0u64; 4];
        fabric.step(&mut states, |gpu, _, _, out| {
            out.send((gpu + 1) % 4, gpu as u64);
        });
        let evs = fabric.drain_observed();
        assert_eq!(evs.len(), 4);
        assert!(evs.iter().all(|e| e.kind == MessageKind::Fabric && e.iter == 0));
        // In a 2-rank × 2-GPU grid, 0→1 and 2→3 stay on-rank; 1→2 and
        // 3→0 cross the rank boundary.
        let chan = |src: u32| evs.iter().find(|e| e.src == src).map(|e| e.channel).unwrap();
        assert_eq!(chan(0), Channel::IntraRank);
        assert_eq!(chan(1), Channel::CrossRank);
        assert_eq!(chan(2), Channel::IntraRank);
        assert_eq!(chan(3), Channel::CrossRank);
        // Drained: a second drain is empty until more traffic flows.
        assert!(fabric.drain_observed().is_empty());
    }

    #[test]
    fn observation_skips_drops_and_counts_duplicates() {
        use crate::fault::{FaultInjector, FaultPlan};
        let topo = Topology::new(1, 2);
        // All-drop injector: nothing delivers, nothing observed.
        let mut fabric: Fabric<u32> = Fabric::new(topo);
        fabric.enable_observation();
        let mut inj = FaultInjector::new(FaultPlan::new(11).with_message_faults(1.0, 0.0, 0.0));
        let mut states = vec![0u32; 2];
        fabric
            .step_with_faults(&mut states, &mut inj, |gpu, _, _, out| out.send(1 - gpu, 7))
            .unwrap();
        assert!(fabric.drain_observed().is_empty(), "drops never deliver");
        // All-duplicate injector: each send is observed twice.
        let mut fabric: Fabric<u32> = Fabric::new(topo);
        fabric.enable_observation();
        let mut inj = FaultInjector::new(FaultPlan::new(11).with_message_faults(0.0, 1.0, 0.0));
        fabric
            .step_with_faults(&mut states, &mut inj, |gpu, _, _, out| {
                if gpu == 0 {
                    out.send(1, 7)
                }
            })
            .unwrap();
        assert_eq!(fabric.drain_observed().len(), 2);
    }

    #[test]
    fn observation_off_by_default() {
        let topo = Topology::new(1, 2);
        let mut fabric: Fabric<u32> = Fabric::new(topo);
        let mut states = vec![0u32; 2];
        fabric.step(&mut states, |gpu, _, _, out| out.send(1 - gpu, 1));
        assert!(fabric.drain_observed().is_empty());
    }

    #[test]
    fn sealed_channel_roundtrips_compressed_payloads() {
        use gcbfs_compress::FrontierCodec;
        let topo = Topology::new(1, 2);
        let mut fabric: Fabric<SealedPayload> = Fabric::new(topo);
        let ids: Vec<u32> = (100..200).collect();
        let mut states: Vec<Vec<u32>> = vec![Vec::new(); 2];
        let encoded = FrontierCodec::Bitmap.encode(&ids).unwrap();
        fabric
            .step_sealed(&mut states, None, |gpu, _, _, out| {
                if gpu == 0 {
                    out.send(1, SealedPayload::seal(encoded.clone()));
                }
            })
            .unwrap();
        fabric
            .step_sealed(&mut states, None, |_, s, inbox, _| {
                for (_, payload) in inbox {
                    gcbfs_compress::decode_frontier_into(payload.open().unwrap(), s).unwrap();
                }
            })
            .unwrap();
        assert_eq!(states[1], ids);
    }

    #[test]
    fn corrupted_sealed_payload_is_caught_before_consumption() {
        let topo = Topology::new(1, 2);
        let mut fabric: Fabric<SealedPayload> = Fabric::new(topo);
        let mut states = vec![0u32; 2];
        let send = |gpu: usize,
                    _s: &mut u32,
                    _in: Vec<(usize, SealedPayload)>,
                    out: &mut Outbox<SealedPayload>| {
            if gpu == 0 {
                out.send(1, SealedPayload::seal(vec![1, 2, 3, 4]));
            }
        };
        fabric.step_sealed(&mut states, None, send).unwrap();
        assert!(fabric.corrupt_pending_payload(0), "one message must be pending");
        let err = fabric.step_sealed(&mut states, None, |_, _, _, _| ()).unwrap_err();
        assert!(matches!(err, FabricError::IntegrityFailure { from: 0, to: 1, .. }));
        assert!(err.to_string().contains("corrupt"), "got: {err}");
        // Recovery: drop the poisoned message, retransmit (deterministic
        // re-encode → identical payload), and the channel is healthy.
        assert_eq!(fabric.drop_corrupt_pending(), 1);
        fabric.step_sealed(&mut states, None, send).unwrap();
        let consumed = fabric.step_sealed(&mut states, None, |_, _, inbox, _| inbox.len()).unwrap();
        assert_eq!(consumed, vec![0, 1]);
    }

    #[test]
    fn fail_stop_surfaces_after_the_superstep() {
        use crate::fault::{FaultError, FaultInjector, FaultPlan};
        let topo = Topology::new(1, 2);
        let mut fabric: Fabric<u32> = Fabric::new(topo);
        let mut inj = FaultInjector::new(FaultPlan::new(0).with_fail_stop(1, 1));
        let mut states = vec![0u32; 2];
        assert!(fabric.step_with_faults(&mut states, &mut inj, |_, _, _, _| ()).is_ok());
        let err = fabric.step_with_faults(&mut states, &mut inj, |_, _, _, _| ()).unwrap_err();
        assert!(matches!(err, FabricError::Fault(FaultError::GpuFailed { gpu: 1, .. })));
        // One-shot: the fabric keeps working afterwards (degraded mode is
        // the caller's concern).
        assert!(fabric.step_with_faults(&mut states, &mut inj, |_, _, _, _| ()).is_ok());
        assert_eq!(fabric.supersteps(), 3);
    }
}
