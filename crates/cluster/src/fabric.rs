//! Deterministic BSP message fabric between simulated GPUs.
//!
//! The paper's implementation is bulk-synchronous: each BFS iteration runs
//! local kernels on every GPU, then exchanges data (`MPI_Isend/Irecv` for
//! normal vertices, `MPI_(I)Allreduce` for delegate masks), then starts the
//! next iteration. The fabric mirrors that: [`Fabric::step`] runs one
//! superstep — a user closure per GPU, executed in parallel with rayon —
//! and delivers all messages produced before the next superstep begins.
//!
//! Delivery is deterministic regardless of host thread count: inboxes are
//! ordered by sending GPU.

use crate::topology::Topology;
use rayon::prelude::*;

/// Messages produced by one GPU during a superstep.
#[derive(Clone, Debug)]
pub struct Outbox<M> {
    messages: Vec<(usize, M)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Self { messages: Vec::new() }
    }
}

impl<M> Outbox<M> {
    /// Queues `payload` for delivery to the GPU with flat index `to` at the
    /// end of the superstep.
    pub fn send(&mut self, to: usize, payload: M) {
        self.messages.push((to, payload));
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True if nothing was queued.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

/// A BSP fabric over the GPUs of `topology`, carrying messages of type `M`.
pub struct Fabric<M> {
    topology: Topology,
    /// `inboxes[gpu]` = messages delivered at the last superstep boundary,
    /// as `(from, payload)`, sorted by `from`.
    inboxes: Vec<Vec<(usize, M)>>,
}

impl<M: Send> Fabric<M> {
    /// Creates an idle fabric with empty inboxes.
    pub fn new(topology: Topology) -> Self {
        let inboxes = (0..topology.num_gpus() as usize).map(|_| Vec::new()).collect();
        Self { topology, inboxes }
    }

    /// The device grid this fabric connects.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Runs one superstep: for every GPU (in parallel), calls
    /// `f(gpu, inbox, outbox)` where `inbox` is the messages delivered to
    /// that GPU at the previous boundary; then delivers all outboxes.
    /// Returns the per-GPU results of `f` in flat order.
    ///
    /// # Panics
    /// Panics if a message is addressed outside the device grid.
    pub fn step<S, R, F>(&mut self, states: &mut [S], f: F) -> Vec<R>
    where
        S: Send,
        R: Send,
        F: Fn(usize, &mut S, Vec<(usize, M)>, &mut Outbox<M>) -> R + Sync,
    {
        assert_eq!(states.len(), self.inboxes.len(), "one state per GPU required");
        let inboxes = std::mem::take(&mut self.inboxes);
        let (results, outboxes): (Vec<R>, Vec<Outbox<M>>) = states
            .par_iter_mut()
            .zip(inboxes)
            .enumerate()
            .map(|(gpu, (state, inbox))| {
                let mut outbox = Outbox::default();
                let r = f(gpu, state, inbox, &mut outbox);
                (r, outbox)
            })
            .unzip();
        self.deliver(outboxes);
        results
    }

    /// Delivers outboxes into inboxes, ordered by sending GPU.
    fn deliver(&mut self, outboxes: Vec<Outbox<M>>) {
        let n = self.topology.num_gpus() as usize;
        let mut inboxes: Vec<Vec<(usize, M)>> = (0..n).map(|_| Vec::new()).collect();
        for (from, outbox) in outboxes.into_iter().enumerate() {
            for (to, payload) in outbox.messages {
                assert!(to < n, "message addressed to GPU {to}, grid has {n}");
                inboxes[to].push((from, payload));
            }
        }
        // `from` arrives in increasing order already (outer loop), but a
        // stable sort makes the invariant explicit and future-proof.
        for inbox in &mut inboxes {
            inbox.sort_by_key(|&(from, _)| from);
        }
        self.inboxes = inboxes;
    }

    /// True if no messages are waiting anywhere (quiescence check used for
    /// BFS termination).
    pub fn is_quiescent(&self) -> bool {
        self.inboxes.iter().all(Vec::is_empty)
    }

    /// Total queued messages across all inboxes.
    pub fn pending_messages(&self) -> usize {
        self.inboxes.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_next_superstep() {
        let topo = Topology::new(2, 2);
        let mut fabric: Fabric<u64> = Fabric::new(topo);
        let mut states = vec![0u64; 4];

        // Superstep 1: everyone sends its id to GPU 0.
        fabric.step(&mut states, |gpu, _s, inbox, out| {
            assert!(inbox.is_empty());
            out.send(0, gpu as u64 * 10);
        });
        assert_eq!(fabric.pending_messages(), 4);

        // Superstep 2: GPU 0 sums what it received.
        fabric.step(&mut states, |gpu, s, inbox, _out| {
            if gpu == 0 {
                assert_eq!(
                    inbox,
                    vec![(0, 0), (1, 10), (2, 20), (3, 30)],
                    "inbox must be ordered by sender"
                );
                *s = inbox.iter().map(|&(_, m)| m).sum();
            } else {
                assert!(inbox.is_empty());
            }
        });
        assert_eq!(states[0], 60);
        assert!(fabric.is_quiescent());
    }

    #[test]
    fn results_in_flat_order() {
        let topo = Topology::new(1, 3);
        let mut fabric: Fabric<()> = Fabric::new(topo);
        let mut states = vec![(); 3];
        let r = fabric.step(&mut states, |gpu, _, _, _| gpu * gpu);
        assert_eq!(r, vec![0, 1, 4]);
    }

    #[test]
    fn ring_pass_is_deterministic() {
        let topo = Topology::new(4, 1);
        let mut fabric: Fabric<u32> = Fabric::new(topo);
        let mut tokens = vec![1u32, 0, 0, 0];
        for _ in 0..8 {
            fabric.step(&mut tokens, |gpu, t, inbox, out| {
                for (_, v) in inbox {
                    *t += v;
                }
                if *t > 0 {
                    out.send((gpu + 1) % 4, *t);
                }
            });
        }
        // After 8 steps the token has circulated; totals are deterministic.
        let again = {
            let mut fabric: Fabric<u32> = Fabric::new(topo);
            let mut tokens = vec![1u32, 0, 0, 0];
            for _ in 0..8 {
                fabric.step(&mut tokens, |gpu, t, inbox, out| {
                    for (_, v) in inbox {
                        *t += v;
                    }
                    if *t > 0 {
                        out.send((gpu + 1) % 4, *t);
                    }
                });
            }
            tokens
        };
        assert_eq!(tokens, again);
    }

    #[test]
    #[should_panic(expected = "addressed to GPU")]
    fn out_of_range_destination_panics() {
        let topo = Topology::new(1, 2);
        let mut fabric: Fabric<()> = Fabric::new(topo);
        let mut states = vec![(), ()];
        fabric.step(&mut states, |_, _, _, out| out.send(5, ()));
    }

    #[test]
    #[should_panic(expected = "one state per GPU")]
    fn state_count_mismatch_panics() {
        let topo = Topology::new(1, 2);
        let mut fabric: Fabric<()> = Fabric::new(topo);
        let mut states = vec![()];
        fabric.step(&mut states, |_, _, _, _| ());
    }
}
