//! Time sources for the failure detector: modeled vs wall.
//!
//! The phi-accrual detector in [`membership`](crate::membership) reasons
//! about *inter-arrival intervals* in heartbeat-period units ("beats").
//! Under the simulator a beat is one superstep and arrivals are computed
//! from the iteration counter; under the proc backend a beat is a real
//! heartbeat period and arrivals are wall-clock instants. This module is
//! the seam that lets both feed the same detector code path: a [`Clock`]
//! yields "now" in beats, and the membership primitives
//! (`record_arrival` / `record_silence`) take beat-valued times instead
//! of assuming evaluation happens exactly at superstep boundaries.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone time source measured in heartbeat-period units.
pub trait Clock: Send + Sync {
    /// Current time in beats. Monotone non-decreasing.
    fn now(&self) -> f64;
}

/// The simulator's clock: time advances only when the driver says so
/// (superstep boundaries), making every detector decision a pure function
/// of the iteration counter — the determinism the golden tests rely on.
#[derive(Debug, Default)]
pub struct ModeledClock {
    /// Current modeled time, stored as `f64` bits for lock-free interior
    /// mutability (`Clock::now` takes `&self`).
    bits: AtomicU64,
}

impl ModeledClock {
    /// A modeled clock starting at beat 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances modeled time to `t` beats. Regressions are ignored — a
    /// rollback replays observations but never rewinds the clock, exactly
    /// like the replay guard in the detector itself.
    pub fn advance_to(&self, t: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        while f64::from_bits(cur) < t {
            match self.bits.compare_exchange_weak(
                cur,
                t.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }
}

impl Clock for ModeledClock {
    fn now(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// The proc backend's clock: wall time since an origin instant, scaled by
/// the heartbeat period so one beat on the wire is one unit here.
#[derive(Clone, Debug)]
pub struct WallClock {
    origin: Instant,
    period_secs: f64,
}

impl WallClock {
    /// A wall clock whose beat is `period_secs` of real time, starting now.
    pub fn new(period_secs: f64) -> Self {
        assert!(period_secs > 0.0, "heartbeat period must be positive");
        Self { origin: Instant::now(), period_secs }
    }

    /// The heartbeat period in seconds (one beat).
    pub fn period_secs(&self) -> f64 {
        self.period_secs
    }

    /// Wall seconds since the clock's origin.
    pub fn elapsed_secs(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

impl Clock for WallClock {
    fn now(&self) -> f64 {
        self.elapsed_secs() / self.period_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_clock_is_monotone() {
        let c = ModeledClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance_to(3.5);
        assert_eq!(c.now(), 3.5);
        c.advance_to(2.0); // rollback replay: no rewind
        assert_eq!(c.now(), 3.5);
        c.advance_to(4.0);
        assert_eq!(c.now(), 4.0);
    }

    #[test]
    fn wall_clock_scales_by_period() {
        let c = WallClock::new(0.001);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let beats = c.now();
        assert!(beats >= 4.0, "5ms at 1ms/beat must be >= 4 beats, got {beats}");
        assert_eq!(c.period_secs(), 0.001);
    }
}
