//! Elastic cluster membership: adaptive phi-accrual failure detection,
//! the member-state machine, and the hot-spare pool.
//!
//! PR 1's recovery tier used a blunt rule — one missed heartbeat means the
//! GPU is dead forever. Real clusters are noisier than that: a congested
//! NIC or a straggling device can delay heartbeats without the device
//! being lost, and declaring death too eagerly forces an expensive
//! rollback for a transient wobble. This module replaces the hard rule
//! with an *accrual* detector in the style of Hayashibara et al.'s
//! phi-accrual failure detector (the design used by Cassandra and Akka):
//!
//! * every superstep boundary each live GPU's heartbeat *arrival time* is
//!   sampled (deterministically jittered so suspicion timelines are
//!   reproducible across runs and thread counts);
//! * a sliding window of inter-arrival intervals per GPU feeds a normal
//!   model; the suspicion level is
//!   `phi(t) = -log10 P(interval > t)` under that model;
//! * `phi >= suspect_phi` marks the GPU **Suspected** — the driver keeps
//!   routing to it and merely charges probe/delay time;
//! * `phi >= confirm_phi` *and* at least [`MembershipConfig::confirm_misses`]
//!   consecutive silent boundaries marks it **ConfirmedDead** — only then
//!   does the recovery machinery (spare absorption or multi-survivor
//!   spreading, see `gcbfs-core`) engage;
//! * an arrival from a Dead member is a **Rejoin**: the detector history
//!   is reset and the driver re-syncs the member from the current
//!   checkpoint.
//!
//! The state machine is `Alive → Suspected → (Cleared → Alive | Dead)` and
//! `Dead → Rejoined → Alive`. All transitions are surfaced as
//! [`MembershipEvent`]s so the driver can charge modeled time and emit
//! trace spans without re-deriving the decision logic.
//!
//! The hot-spare pool is also tracked here: [`Topology::num_spares`]
//! standby devices that hold no partition until a confirmed death promotes
//! one (`take_spare`); a rejoin of the replaced member releases the slot
//! back (`release_spare`).
//!
//! [`Topology::num_spares`]: crate::topology::Topology::num_spares

use crate::fault::{coordinate_hash, unit_f64};

/// Tuning knobs of the accrual detector. All times are in *superstep
/// units* (the heartbeat piggybacks on the per-iteration termination
/// allreduce, so the natural beat period is 1.0).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MembershipConfig {
    /// Suspicion threshold: `phi >= suspect_phi` marks a member Suspected.
    pub suspect_phi: f64,
    /// Confirmation threshold: `phi >= confirm_phi` (with
    /// [`Self::confirm_misses`] consecutive silent boundaries) marks it Dead.
    pub confirm_phi: f64,
    /// Minimum consecutive missed heartbeats before death can be
    /// confirmed, regardless of phi. Guards against declaring death from
    /// a single lost control message.
    pub confirm_misses: u32,
    /// Sliding-window length of inter-arrival samples per member.
    pub window: usize,
    /// Mean one-way heartbeat latency in superstep units.
    pub base_latency: f64,
    /// Relative jitter amplitude on the heartbeat latency (`0.1` = ±10%).
    pub jitter: f64,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        Self {
            suspect_phi: 0.5,
            confirm_phi: 8.0,
            confirm_misses: 2,
            window: 16,
            base_latency: 0.05,
            jitter: 0.1,
            seed: 0x6d65_6d62, // "memb"
        }
    }
}

impl MembershipConfig {
    /// Sets the suspicion and confirmation thresholds.
    pub fn with_thresholds(mut self, suspect_phi: f64, confirm_phi: f64) -> Self {
        assert!(suspect_phi > 0.0 && confirm_phi >= suspect_phi, "thresholds must be ordered");
        self.suspect_phi = suspect_phi;
        self.confirm_phi = confirm_phi;
        self
    }

    /// Sets the minimum consecutive misses before death is confirmable.
    pub fn with_confirm_misses(mut self, misses: u32) -> Self {
        self.confirm_misses = misses.max(1);
        self
    }

    /// Sets the jitter-stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A profile tuned for *wall-clock* heartbeats (the proc backend):
    /// OS scheduling can stretch a beat by several periods without the
    /// worker being dead, so suspicion needs more evidence and more
    /// consecutive misses than the tightly modeled sim profile.
    pub fn wall_defaults() -> Self {
        Self {
            suspect_phi: 3.0,
            confirm_phi: 10.0,
            confirm_misses: 8,
            window: 32,
            ..Self::default()
        }
    }
}

/// What the control channel observed for one member at one superstep
/// boundary. Produced by the ground-truth side (the fault injector),
/// consumed by the detector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HeartbeatStatus {
    /// The heartbeat arrived. `slowdown >= 1` scales its latency (a
    /// straggling device or degraded NIC path delays but does not lose
    /// the beat).
    Arrived {
        /// Latency multiplier for this beat (`1.0` = healthy).
        slowdown: f64,
    },
    /// No heartbeat arrived within the boundary window.
    Missing,
}

/// The lifecycle state of one member.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberState {
    /// Healthy: routing and ownership unchanged.
    Alive,
    /// Suspicion crossed `suspect_phi` but death is not confirmed; the
    /// driver keeps routing to it and charges probe time.
    Suspected,
    /// Death confirmed; its partition has been (or is being) re-homed.
    Dead,
}

/// A state-machine transition surfaced to the driver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MembershipEvent {
    /// `Alive → Suspected`: suspicion crossed the threshold.
    Suspected {
        /// Flat index of the member.
        gpu: usize,
        /// Iteration of the transition.
        iteration: u32,
        /// Suspicion level at the transition.
        phi: f64,
    },
    /// `Suspected → Alive`: suspicion retracted (heartbeats recovered).
    Cleared {
        /// Flat index of the member.
        gpu: usize,
        /// Iteration of the transition.
        iteration: u32,
    },
    /// `Suspected → Dead`: death confirmed; recovery must engage.
    ConfirmedDead {
        /// Flat index of the member.
        gpu: usize,
        /// Iteration of the transition.
        iteration: u32,
    },
    /// `Dead → Alive`: a presumed-dead member resumed heartbeating and
    /// must be re-synced from the current checkpoint.
    Rejoined {
        /// Flat index of the member.
        gpu: usize,
        /// Iteration of the transition.
        iteration: u32,
    },
}

impl MembershipEvent {
    /// Flat index of the member the event concerns.
    pub fn gpu(&self) -> usize {
        match *self {
            Self::Suspected { gpu, .. }
            | Self::Cleared { gpu, .. }
            | Self::ConfirmedDead { gpu, .. }
            | Self::Rejoined { gpu, .. } => gpu,
        }
    }
}

/// Per-member detector state plus the hot-spare pool.
#[derive(Clone, Debug)]
pub struct Membership {
    config: MembershipConfig,
    states: Vec<MemberState>,
    /// Last accepted heartbeat arrival time, in superstep units.
    last_arrival: Vec<f64>,
    /// Sliding window of inter-arrival intervals per member.
    intervals: Vec<Vec<f64>>,
    /// Consecutive silent boundaries per member.
    miss_count: Vec<u32>,
    /// Most recent suspicion level per member.
    phi: Vec<f64>,
    /// Free hot-spare slots, kept sorted ascending.
    spares_free: Vec<usize>,
    spares_total: usize,
}

impl Membership {
    /// Creates a membership view over `num_gpus` primary members and
    /// `num_spares` standby devices.
    pub fn new(num_gpus: usize, num_spares: usize, config: MembershipConfig) -> Self {
        Self {
            config,
            states: vec![MemberState::Alive; num_gpus],
            // As if a beat arrived one period before iteration 0.
            last_arrival: vec![config.base_latency - 1.0; num_gpus],
            intervals: vec![Vec::new(); num_gpus],
            miss_count: vec![0; num_gpus],
            phi: vec![0.0; num_gpus],
            spares_free: (0..num_spares).collect(),
            spares_total: num_spares,
        }
    }

    /// The detector configuration.
    pub fn config(&self) -> MembershipConfig {
        self.config
    }

    /// Current state of member `gpu`.
    pub fn state(&self, gpu: usize) -> MemberState {
        self.states[gpu]
    }

    /// Most recent suspicion level of member `gpu`.
    pub fn phi(&self, gpu: usize) -> f64 {
        self.phi[gpu]
    }

    /// True if member `gpu` is confirmed dead.
    pub fn is_dead(&self, gpu: usize) -> bool {
        self.states[gpu] == MemberState::Dead
    }

    /// Per-member alive flags (`true` unless confirmed dead).
    pub fn alive_mask(&self) -> Vec<bool> {
        self.states.iter().map(|s| *s != MemberState::Dead).collect()
    }

    /// Number of currently Suspected members.
    pub fn suspected_count(&self) -> usize {
        self.states.iter().filter(|s| **s == MemberState::Suspected).count()
    }

    /// Number of confirmed-dead members.
    pub fn dead_count(&self) -> usize {
        self.states.iter().filter(|s| **s == MemberState::Dead).count()
    }

    /// Total hot-spare slots in the pool (free or promoted).
    pub fn total_spares(&self) -> usize {
        self.spares_total
    }

    /// Hot-spare slots currently free.
    pub fn available_spares(&self) -> usize {
        self.spares_free.len()
    }

    /// Promotes the lowest free spare slot, if any.
    pub fn take_spare(&mut self) -> Option<usize> {
        if self.spares_free.is_empty() {
            None
        } else {
            Some(self.spares_free.remove(0))
        }
    }

    /// Returns a promoted spare slot to the pool (e.g. after the member it
    /// replaced rejoined).
    pub fn release_spare(&mut self, slot: usize) {
        debug_assert!(slot < self.spares_total, "unknown spare slot {slot}");
        debug_assert!(!self.spares_free.contains(&slot), "spare slot {slot} double-released");
        let at = self.spares_free.partition_point(|&s| s < slot);
        self.spares_free.insert(at, slot);
    }

    /// Feeds one superstep boundary's heartbeat observations into the
    /// detector and returns the state transitions it caused, in member
    /// order.
    ///
    /// This is the *modeled-clock* wrapper over the timing-agnostic
    /// primitives [`Self::record_arrival`] and [`Self::record_silence`]:
    /// an arrival lands at the deterministically jittered modeled instant,
    /// and a silent member is evaluated at the boundary's end
    /// (`iteration + 1` beats). The proc backend drives the same
    /// primitives from a wall [`Clock`](crate::clock::Clock) instead.
    ///
    /// Deterministic: arrival jitter is a pure function of
    /// `(seed, iteration, gpu)`, and replayed boundaries (same or earlier
    /// `iteration` after a rollback) never re-record intervals, so a
    /// rollback-and-replay reproduces the same membership trajectory
    /// without double-counting.
    pub fn observe(
        &mut self,
        iteration: u32,
        statuses: &[HeartbeatStatus],
    ) -> Vec<MembershipEvent> {
        assert_eq!(statuses.len(), self.states.len(), "one status per member");
        let mut events = Vec::new();
        for (gpu, status) in statuses.iter().enumerate() {
            let event = match *status {
                HeartbeatStatus::Arrived { slowdown } => {
                    let u =
                        unit_f64(coordinate_hash(self.config.seed, iteration, 0, gpu as u64, 0));
                    let latency = self.config.base_latency
                        * (1.0 + self.config.jitter * (2.0 * u - 1.0))
                        * slowdown.max(1.0);
                    self.record_arrival(gpu, iteration as f64 + latency, iteration)
                }
                // We waited the whole boundary window past the expected
                // beat: measure elapsed silence to the window's end.
                HeartbeatStatus::Missing => {
                    self.record_silence(gpu, (iteration + 1) as f64, iteration)
                }
            };
            events.extend(event);
        }
        events
    }

    /// Records a heartbeat arrival at `arrival` beats on member `gpu`,
    /// returning the state transition it caused, if any. `iteration` only
    /// labels the emitted event.
    ///
    /// Timing-agnostic core of the detector: the sim feeds modeled
    /// arrivals (via [`Self::observe`]), the proc backend feeds wall-clock
    /// arrivals as heartbeat frames land. An arrival not after the last
    /// accepted one (a replayed boundary after rollback) leaves the window
    /// statistics untouched; an arrival on a Dead member resets its
    /// history and rejoins it.
    pub fn record_arrival(
        &mut self,
        gpu: usize,
        arrival: f64,
        iteration: u32,
    ) -> Option<MembershipEvent> {
        let rejoining = self.states[gpu] == MemberState::Dead;
        if rejoining {
            // Fresh start: stale pre-death statistics would poison the
            // window.
            self.intervals[gpu].clear();
            self.last_arrival[gpu] = arrival;
            self.phi[gpu] = 0.0;
        } else if arrival > self.last_arrival[gpu] {
            let interval = arrival - self.last_arrival[gpu];
            let win = &mut self.intervals[gpu];
            if win.len() == self.config.window {
                win.remove(0);
            }
            win.push(interval);
            self.last_arrival[gpu] = arrival;
            self.phi[gpu] = self.phi_of(gpu, interval);
        }
        // else: replayed boundary after rollback — keep stats.
        self.miss_count[gpu] = 0;
        match self.states[gpu] {
            MemberState::Dead => {
                self.states[gpu] = MemberState::Alive;
                Some(MembershipEvent::Rejoined { gpu, iteration })
            }
            MemberState::Suspected => {
                if self.phi[gpu] < self.config.suspect_phi {
                    self.states[gpu] = MemberState::Alive;
                    Some(MembershipEvent::Cleared { gpu, iteration })
                } else {
                    None
                }
            }
            MemberState::Alive => {
                if self.phi[gpu] >= self.config.suspect_phi {
                    self.states[gpu] = MemberState::Suspected;
                    Some(MembershipEvent::Suspected { gpu, iteration, phi: self.phi[gpu] })
                } else {
                    None
                }
            }
        }
    }

    /// Records one silent observation window on member `gpu`, evaluating
    /// suspicion at `now` beats, and returns the transition it caused.
    ///
    /// `now` is an *arbitrary* evaluation instant — this is the fix for
    /// the detector's former latent assumption that silence is only ever
    /// measured at superstep boundaries (`iteration + 1`). Under the sim
    /// that is still the instant [`Self::observe`] passes; under the proc
    /// backend the coordinator evaluates whenever its heartbeat ticker
    /// fires, which is aligned with nothing.
    pub fn record_silence(
        &mut self,
        gpu: usize,
        now: f64,
        iteration: u32,
    ) -> Option<MembershipEvent> {
        if self.states[gpu] == MemberState::Dead {
            return None; // already confirmed; nothing new to learn
        }
        self.miss_count[gpu] = self.miss_count[gpu].saturating_add(1);
        let elapsed = (now - self.last_arrival[gpu]).max(0.0);
        let phi = self.phi_of(gpu, elapsed);
        self.phi[gpu] = phi;
        if phi >= self.config.confirm_phi && self.miss_count[gpu] >= self.config.confirm_misses {
            self.states[gpu] = MemberState::Dead;
            Some(MembershipEvent::ConfirmedDead { gpu, iteration })
        } else if phi >= self.config.suspect_phi && self.states[gpu] == MemberState::Alive {
            self.states[gpu] = MemberState::Suspected;
            Some(MembershipEvent::Suspected { gpu, iteration, phi })
        } else {
            None
        }
    }

    /// Suspicion level for an observed interval/silence of `elapsed`
    /// superstep units on member `gpu`'s window statistics.
    fn phi_of(&self, gpu: usize, elapsed: f64) -> f64 {
        let win = &self.intervals[gpu];
        let (mu, sigma) = if win.len() >= 3 {
            let mu = win.iter().sum::<f64>() / win.len() as f64;
            let var = win.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / win.len() as f64;
            (mu, var.sqrt())
        } else {
            // Bootstrap prior: one beat per superstep, loose spread.
            (1.0, 0.1)
        };
        // Floor sigma so a run of perfectly regular beats cannot make the
        // detector hair-triggered on the next micro-jitter.
        let sigma = sigma.max(0.1);
        let z = (elapsed - mu) / sigma;
        let tail = 0.5 * erfc(z / std::f64::consts::SQRT_2);
        if tail < 1e-300 {
            300.0
        } else {
            -tail.log10()
        }
    }
}

/// Complementary error function via the Abramowitz–Stegun 7.1.26
/// polynomial (|error| < 1.5e-7 — far below any threshold here).
fn erfc(x: f64) -> f64 {
    let ax = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * ax);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erfc_pos = poly * (-ax * ax).exp();
    if x >= 0.0 {
        erfc_pos
    } else {
        2.0 - erfc_pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_healthy(n: usize) -> Vec<HeartbeatStatus> {
        vec![HeartbeatStatus::Arrived { slowdown: 1.0 }; n]
    }

    #[test]
    fn erfc_sanity() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157_299).abs() < 1e-4);
        assert!((erfc(-1.0) - 1.842_700).abs() < 1e-4);
        assert!(erfc(6.0) < 1e-15);
    }

    #[test]
    fn benign_jitter_never_suspects() {
        let mut m = Membership::new(4, 0, MembershipConfig::default());
        for iter in 0..200 {
            let events = m.observe(iter, &all_healthy(4));
            assert!(events.is_empty(), "iter {iter}: {events:?}");
        }
        for gpu in 0..4 {
            assert_eq!(m.state(gpu), MemberState::Alive);
            assert!(m.phi(gpu) < 0.5, "phi {} too high", m.phi(gpu));
        }
    }

    #[test]
    fn straggler_is_suspected_then_cleared() {
        let mut m = Membership::new(2, 0, MembershipConfig::default());
        for iter in 0..8 {
            assert!(m.observe(iter, &all_healthy(2)).is_empty());
        }
        // GPU 1 starts straggling hard: the first late beat stretches its
        // inter-arrival interval and raises suspicion.
        let straggle = [
            HeartbeatStatus::Arrived { slowdown: 1.0 },
            HeartbeatStatus::Arrived { slowdown: 8.0 },
        ];
        let e8 = m.observe(8, &straggle);
        assert!(
            matches!(e8.as_slice(), [MembershipEvent::Suspected { gpu: 1, iteration: 8, .. }]),
            "straggler must raise suspicion, got {e8:?}"
        );
        assert_eq!(m.state(1), MemberState::Suspected);
        // Suspicion retracts once the beat rhythm steadies (a *constant*
        // lag has normal inter-arrival intervals — only the onset spikes),
        // and the member never dies.
        let mut cleared = false;
        for iter in 9..40 {
            let st = if iter < 12 { straggle } else { all_healthy(2).try_into().unwrap() };
            for e in m.observe(iter, &st) {
                match e {
                    MembershipEvent::Cleared { gpu, .. } => {
                        assert_eq!(gpu, 1);
                        cleared = true;
                    }
                    other => panic!("unexpected event {other:?}"),
                }
            }
        }
        assert!(cleared, "suspicion must clear");
        assert_eq!(m.state(1), MemberState::Alive);
    }

    #[test]
    fn silence_confirms_death_on_second_miss() {
        let mut m = Membership::new(3, 0, MembershipConfig::default());
        for iter in 0..5 {
            assert!(m.observe(iter, &all_healthy(3)).is_empty());
        }
        let st = |dead: bool| {
            vec![
                HeartbeatStatus::Arrived { slowdown: 1.0 },
                if dead {
                    HeartbeatStatus::Missing
                } else {
                    HeartbeatStatus::Arrived { slowdown: 1.0 }
                },
                HeartbeatStatus::Arrived { slowdown: 1.0 },
            ]
        };
        // First miss: suspected, not dead (confirm_misses = 2).
        let e5 = m.observe(5, &st(true));
        assert!(
            matches!(e5.as_slice(), [MembershipEvent::Suspected { gpu: 1, iteration: 5, .. }]),
            "{e5:?}"
        );
        assert_eq!(m.state(1), MemberState::Suspected);
        // Second consecutive miss: confirmed dead.
        let e6 = m.observe(6, &st(true));
        assert_eq!(e6, vec![MembershipEvent::ConfirmedDead { gpu: 1, iteration: 6 }]);
        assert!(m.is_dead(1));
        assert_eq!(m.alive_mask(), vec![true, false, true]);
        // Further silence is not news.
        assert!(m.observe(7, &st(true)).is_empty());
    }

    #[test]
    fn never_arrived_member_still_confirms() {
        let mut m = Membership::new(2, 0, MembershipConfig::default());
        let st = [HeartbeatStatus::Arrived { slowdown: 1.0 }, HeartbeatStatus::Missing];
        let e0 = m.observe(0, &st);
        assert!(matches!(e0.as_slice(), [MembershipEvent::Suspected { gpu: 1, .. }]), "{e0:?}");
        let e1 = m.observe(1, &st);
        assert_eq!(e1, vec![MembershipEvent::ConfirmedDead { gpu: 1, iteration: 1 }]);
    }

    #[test]
    fn rejoin_resets_history_and_can_die_again() {
        let mut m = Membership::new(2, 0, MembershipConfig::default());
        for iter in 0..4 {
            m.observe(iter, &all_healthy(2));
        }
        let dead = [HeartbeatStatus::Arrived { slowdown: 1.0 }, HeartbeatStatus::Missing];
        m.observe(4, &dead);
        m.observe(5, &dead);
        assert!(m.is_dead(1));
        // Long silence, then it comes back.
        for iter in 6..10 {
            assert!(m.observe(iter, &dead).is_empty());
        }
        let e = m.observe(10, &all_healthy(2));
        assert_eq!(e, vec![MembershipEvent::Rejoined { gpu: 1, iteration: 10 }]);
        assert_eq!(m.state(1), MemberState::Alive);
        assert_eq!(m.phi(1), 0.0, "history reset on rejoin");
        // Healthy beats after rejoin raise no alarms.
        for iter in 11..20 {
            assert!(m.observe(iter, &all_healthy(2)).is_empty(), "iter {iter}");
        }
        // And it can be lost again.
        let e = m.observe(20, &dead);
        assert!(matches!(e.as_slice(), [MembershipEvent::Suspected { gpu: 1, .. }]));
        let e = m.observe(21, &dead);
        assert_eq!(e, vec![MembershipEvent::ConfirmedDead { gpu: 1, iteration: 21 }]);
    }

    #[test]
    fn replayed_boundaries_do_not_double_count() {
        let mut a = Membership::new(2, 0, MembershipConfig::default());
        let mut b = Membership::new(2, 0, MembershipConfig::default());
        for iter in 0..6 {
            a.observe(iter, &all_healthy(2));
            b.observe(iter, &all_healthy(2));
        }
        // `a` replays iterations 3..6 (rollback); `b` does not.
        for iter in 3..6 {
            let events = a.observe(iter, &all_healthy(2));
            assert!(events.is_empty());
        }
        for gpu in 0..2 {
            assert_eq!(a.phi(gpu), b.phi(gpu), "replay must not perturb the detector");
            assert_eq!(a.intervals[gpu], b.intervals[gpu]);
        }
    }

    #[test]
    fn observation_is_deterministic() {
        let run = || {
            let mut m = Membership::new(4, 1, MembershipConfig::default());
            let mut log = Vec::new();
            for iter in 0..30 {
                let st: Vec<_> = (0..4)
                    .map(|g| {
                        if g == 2 && (10..20).contains(&iter) {
                            HeartbeatStatus::Missing
                        } else {
                            HeartbeatStatus::Arrived { slowdown: 1.0 }
                        }
                    })
                    .collect();
                log.extend(m.observe(iter, &st));
            }
            log
        };
        assert_eq!(run(), run());
    }

    /// The primitives accept evaluation instants that are *not* superstep
    /// boundaries — the wall-clock path. Unaligned silence evaluations
    /// must accrue suspicion monotonically and still confirm death, and
    /// unaligned arrivals must feed the window like boundary arrivals do.
    #[test]
    fn unaligned_wall_times_drive_the_same_detector() {
        let mut m = Membership::new(2, 0, MembershipConfig::default());
        // Irregular but healthy beats near 1.0 apart, never on a boundary.
        let mut t = 0.07;
        for k in 0..12u32 {
            for gpu in 0..2 {
                assert!(m.record_arrival(gpu, t, k).is_none(), "beat at {t}");
            }
            t += if k % 3 == 0 { 0.93 } else { 1.04 };
        }
        // GPU 1 goes silent; evaluate at arbitrary fractional instants.
        let mut phi_prev = 0.0;
        let mut confirmed = false;
        for (k, dt) in [0.41, 0.77, 1.13, 1.61, 2.3, 3.1, 4.9].iter().enumerate() {
            let now = t + dt;
            if let Some(e) = m.record_silence(1, now, 12 + k as u32) {
                match e {
                    MembershipEvent::Suspected { gpu: 1, .. } => {}
                    MembershipEvent::ConfirmedDead { gpu: 1, .. } => confirmed = true,
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert!(m.phi(1) >= phi_prev, "phi must accrue with silence");
            phi_prev = m.phi(1);
            if confirmed {
                break;
            }
        }
        assert!(confirmed, "unaligned silence must still confirm death");
        assert_eq!(m.state(0), MemberState::Alive, "healthy member unaffected");
    }

    /// `observe` is now a wrapper over the primitives; this pins the
    /// equivalence so the refactor cannot drift: hand-driving the
    /// primitives with the boundary-aligned instants `observe` uses
    /// produces the identical trajectory.
    #[test]
    fn observe_equals_hand_driven_primitives() {
        let cfg = MembershipConfig::default();
        let mut via_observe = Membership::new(2, 0, cfg);
        let mut via_primitives = Membership::new(2, 0, cfg);
        let mut log_a = Vec::new();
        let mut log_b = Vec::new();
        for iter in 0..25u32 {
            let miss = (8..11).contains(&iter);
            let statuses = [
                HeartbeatStatus::Arrived { slowdown: 1.0 },
                if miss {
                    HeartbeatStatus::Missing
                } else {
                    HeartbeatStatus::Arrived { slowdown: 1.0 }
                },
            ];
            log_a.extend(via_observe.observe(iter, &statuses));
            for (gpu, status) in statuses.iter().enumerate() {
                let event = match *status {
                    HeartbeatStatus::Arrived { slowdown } => {
                        let u = unit_f64(coordinate_hash(cfg.seed, iter, 0, gpu as u64, 0));
                        let latency =
                            cfg.base_latency * (1.0 + cfg.jitter * (2.0 * u - 1.0)) * slowdown;
                        via_primitives.record_arrival(gpu, iter as f64 + latency, iter)
                    }
                    HeartbeatStatus::Missing => {
                        via_primitives.record_silence(gpu, (iter + 1) as f64, iter)
                    }
                };
                log_b.extend(event);
            }
        }
        assert_eq!(log_a, log_b);
        for gpu in 0..2 {
            assert_eq!(via_observe.phi(gpu), via_primitives.phi(gpu));
            assert_eq!(via_observe.state(gpu), via_primitives.state(gpu));
        }
    }

    #[test]
    fn spare_pool_is_deterministic() {
        let mut m = Membership::new(4, 2, MembershipConfig::default());
        assert_eq!(m.total_spares(), 2);
        assert_eq!(m.available_spares(), 2);
        assert_eq!(m.take_spare(), Some(0));
        assert_eq!(m.take_spare(), Some(1));
        assert_eq!(m.take_spare(), None);
        m.release_spare(1);
        m.release_spare(0);
        assert_eq!(m.take_spare(), Some(0), "lowest slot first after release");
    }
}
