//! Deterministic fault injection for the simulated cluster (the "chaos
//! fabric").
//!
//! Distributed BFS at the paper's scale (hundreds of GPUs, thousands of
//! supersteps across a Graph500 sweep) runs long enough that fail-stop
//! device losses, flaky links, and congested NICs are operational
//! realities. This module provides a *seeded, reproducible* fault model so
//! the recovery machinery in `gcbfs-core` can be tested exhaustively:
//!
//! * [`FaultPlan`] — a declarative, serializable-in-spirit schedule of
//!   faults: per-message drop/duplication/delay probabilities, scheduled
//!   fail-stop GPU losses, delegate-mask word corruptions, and NIC
//!   bandwidth degradation windows. The same plan + seed always produces
//!   the same fault sequence, independent of host thread count.
//! * [`FaultInjector`] — the stateful interpreter of a plan. One-shot
//!   events (fail-stops, corruptions) remember that they fired, so a
//!   rollback-and-replay after recovery does not re-trigger them: recovery
//!   always terminates.
//! * [`FaultError`] — the typed detection results surfaced at superstep
//!   boundaries: heartbeat loss (fail-stop), per-peer ack count mismatch
//!   (dropped/duplicated/delayed messages), and mask checksum mismatch
//!   (corruption in the reduction).
//!
//! Detection model: the BSP driver already runs a tiny per-iteration
//! blocking allreduce (the termination flag). The fault model treats that
//! collective as the *control channel*: heartbeats and per-peer ack counts
//! piggyback on it, so detection happens at superstep granularity and is
//! charged no extra modeled time beyond retries and rollbacks themselves.

use crate::membership::HeartbeatStatus;
use crate::topology::Topology;

/// A typed fault detected at a superstep boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultError {
    /// A GPU missed its heartbeat: fail-stop loss detected.
    GpuFailed {
        /// Flat index of the failed GPU.
        gpu: usize,
        /// Iteration at which the loss was detected.
        iteration: u32,
    },
    /// Per-peer ack counts of the normal-vertex exchange disagree with the
    /// received updates (drop, duplication, or delay in flight).
    ExchangeMismatch {
        /// Iteration of the mismatching exchange.
        iteration: u32,
        /// Retry attempts already consumed when the error was surfaced.
        attempts: u32,
    },
    /// A delegate-mask message failed its checksum in the reduction.
    MaskChecksumMismatch {
        /// Iteration of the corrupted reduction.
        iteration: u32,
        /// Flat index of the GPU whose mask words were corrupted.
        gpu: usize,
    },
    /// A checkpoint snapshot failed its integrity seal when a rollback
    /// tried to restore it: recovery cannot proceed from poisoned state.
    CheckpointCorrupt {
        /// Iteration at which the rollback was attempted.
        iteration: u32,
        /// Flat index of the GPU whose snapshot failed verification.
        gpu: usize,
    },
    /// An online verification check caught silent data corruption but
    /// recovery is disabled, so the run cannot continue.
    SdcDetected {
        /// Iteration at which the check fired.
        iteration: u32,
        /// Name of the violated check (e.g. `"frontier-conservation"`).
        check: &'static str,
    },
    /// Silent data corruption persisted through every escalation stage
    /// (re-execution and rollback budgets exhausted): the fault is not
    /// transient and the run must abort rather than emit a wrong tree.
    SdcUnrecoverable {
        /// Iteration at which the final detection fired.
        iteration: u32,
        /// Name of the violated check (e.g. `"shadow-digest"`).
        check: &'static str,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::GpuFailed { gpu, iteration } => {
                write!(f, "GPU {gpu} failed (heartbeat lost at iteration {iteration})")
            }
            Self::ExchangeMismatch { iteration, attempts } => write!(
                f,
                "normal exchange ack mismatch at iteration {iteration} after {attempts} attempts"
            ),
            Self::MaskChecksumMismatch { iteration, gpu } => {
                write!(f, "delegate mask checksum mismatch from GPU {gpu} at iteration {iteration}")
            }
            Self::CheckpointCorrupt { iteration, gpu } => write!(
                f,
                "checkpoint snapshot of GPU {gpu} failed its integrity seal \
                 during rollback at iteration {iteration}"
            ),
            Self::SdcDetected { iteration, check } => write!(
                f,
                "silent data corruption detected by the {check} check at \
                 iteration {iteration} (recovery disabled)"
            ),
            Self::SdcUnrecoverable { iteration, check } => write!(
                f,
                "silent data corruption detected by the {check} check at \
                 iteration {iteration} persisted through re-execution and rollback"
            ),
        }
    }
}

impl std::error::Error for FaultError {}

/// A scheduled fail-stop loss of one GPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailStop {
    /// Flat index of the GPU that dies.
    pub gpu: usize,
    /// The superstep boundary at which its heartbeat goes missing.
    pub iteration: u32,
}

/// A scheduled corruption of one delegate-mask word in transit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MaskCorruption {
    /// Flat index of the GPU whose outbound mask is corrupted.
    pub gpu: usize,
    /// First mask reduction at or after this iteration is hit.
    pub iteration: u32,
    /// Word index to corrupt (taken modulo the mask length).
    pub word: usize,
    /// Bits to flip (must be non-zero to have an effect).
    pub xor: u64,
}

/// A scheduled *rejoin* of a previously failed GPU: from `iteration` on,
/// its heartbeats resume (the device was rebooted, or the partition was
/// only transiently unreachable) and the membership layer can re-admit it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rejoin {
    /// Flat index of the GPU that comes back.
    pub gpu: usize,
    /// First superstep boundary at which its heartbeat reappears.
    pub iteration: u32,
}

/// A window during which one GPU straggles: its heartbeats still arrive
/// but late (latency multiplied by `slowdown`). Exercises the *suspected*
/// branch of the membership state machine without ever losing the device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Straggler {
    /// Flat index of the straggling GPU.
    pub gpu: usize,
    /// First affected iteration (inclusive).
    pub from_iteration: u32,
    /// First unaffected iteration (exclusive).
    pub until_iteration: u32,
    /// Heartbeat-latency multiplier (`>= 1`).
    pub slowdown: f64,
}

/// A scheduled corruption of checkpointed state at rest: the snapshot
/// covering `iteration` has one delegate-mask word of `gpu` flipped.
/// Detection is the checkpoint's integrity seal, not a channel checksum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointCorruption {
    /// Flat index of the GPU whose snapshotted mask is corrupted.
    pub gpu: usize,
    /// First checkpoint captured at or after this iteration is hit.
    pub iteration: u32,
    /// Word index to corrupt (taken modulo the mask length).
    pub word: usize,
    /// Bits to flip (must be non-zero to have an effect).
    pub xor: u64,
}

/// A window of degraded NIC bandwidth (congestion, link retraining).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NicDegradation {
    /// First affected iteration (inclusive).
    pub from_iteration: u32,
    /// First unaffected iteration (exclusive).
    pub until_iteration: u32,
    /// Slowdown factor applied to remote transfer times (`>= 1`).
    pub factor: f64,
}

/// The fate the injector assigns to one in-flight message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageFate {
    /// Delivered normally.
    Deliver,
    /// Silently dropped.
    Drop,
    /// Delivered twice.
    Duplicate,
    /// Delivered `1..=n` supersteps late.
    Delay(u32),
}

/// Where a compute-SDC event lands. Unlike the wire corruptions above,
/// these strike *inside* a device: the bytes were never on a sealed
/// channel, so no transport checksum can catch them — only the online
/// verification layer (`gcbfs-core::verify`) can.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SdcSite {
    /// A settled depth in the GPU's `depths_local` array right after the
    /// visit kernels ran (a flipped bit in a kernel output buffer).
    KernelDepth,
    /// A word of the *reduced* delegate mask, after the allreduce combined
    /// all contributions — models the reduction itself computing a wrong
    /// word, which the per-message transport seals cannot see.
    ReducedMask,
    /// An entry silently dropped from a GPU's freshly produced next
    /// frontier (the depth was already written, the work item vanished).
    FrontierDrop,
    /// A word of a restored `depths_local` buffer flipped during the
    /// rollback copy, *after* the snapshot's integrity seal verified.
    RestoreBuffer,
}

/// How the corrupted word is perturbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SdcMode {
    /// XOR the target with `bits` (transient upset; a re-execution from
    /// clean inputs produces the correct value).
    Flip,
    /// Overwrite the target with `bits` (stuck-at fault).
    Stuck,
}

/// A scheduled silent-data-corruption event inside one GPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SdcEvent {
    /// Flat index of the struck GPU.
    pub gpu: usize,
    /// First superstep at or after which the event fires.
    pub iteration: u32,
    /// Which buffer the corruption lands in.
    pub site: SdcSite,
    /// Flip vs stuck-at.
    pub mode: SdcMode,
    /// Element index into the target buffer (taken modulo its length).
    pub index: u64,
    /// The corrupting bits (non-zero; for depth buffers only the low 32
    /// bits matter and must be non-zero).
    pub bits: u64,
    /// How many times the event fires before disarming. `1` models a
    /// transient upset (a re-execution succeeds); a large value models a
    /// stuck fault that defeats re-execution and forces escalation.
    pub persistence: u32,
}

impl SdcEvent {
    /// A transient single-shot flip at `site`.
    pub fn flip(gpu: usize, iteration: u32, site: SdcSite, index: u64, bits: u64) -> Self {
        Self { gpu, iteration, site, mode: SdcMode::Flip, index, bits, persistence: 1 }
    }

    /// A stuck-at fault that refires on every touch (defeats re-execution
    /// and checkpoint rollback alike).
    pub fn stuck(gpu: usize, iteration: u32, site: SdcSite, index: u64, bits: u64) -> Self {
        Self { gpu, iteration, site, mode: SdcMode::Stuck, index, bits, persistence: u32::MAX }
    }

    /// Overrides how many times the event fires before disarming.
    pub fn with_persistence(mut self, fires: u32) -> Self {
        self.persistence = fires.max(1);
        self
    }
}

/// A deterministic, seeded schedule of faults for one run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-message fault stream.
    pub seed: u64,
    /// Probability an in-flight normal-vertex update is dropped.
    pub drop_prob: f64,
    /// Probability an update is duplicated.
    pub duplicate_prob: f64,
    /// Probability an update is delayed to a later superstep.
    pub delay_prob: f64,
    /// Maximum delay in supersteps (delays are uniform in `1..=max_delay`).
    pub max_delay: u32,
    /// Scheduled fail-stop GPU losses.
    pub fail_stops: Vec<FailStop>,
    /// Scheduled rejoins of previously failed GPUs.
    pub rejoins: Vec<Rejoin>,
    /// Scheduled straggler windows (late heartbeats, device alive).
    pub stragglers: Vec<Straggler>,
    /// Scheduled delegate-mask corruptions.
    pub mask_corruptions: Vec<MaskCorruption>,
    /// Scheduled at-rest checkpoint corruptions.
    pub checkpoint_corruptions: Vec<CheckpointCorruption>,
    /// NIC bandwidth degradation windows.
    pub nic_degradations: Vec<NicDegradation>,
    /// Scheduled in-device silent-data-corruption events.
    pub sdc_events: Vec<SdcEvent>,
}

impl FaultPlan {
    /// A benign plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 1,
            fail_stops: Vec::new(),
            rejoins: Vec::new(),
            stragglers: Vec::new(),
            mask_corruptions: Vec::new(),
            checkpoint_corruptions: Vec::new(),
            nic_degradations: Vec::new(),
            sdc_events: Vec::new(),
        }
    }

    /// Sets per-message drop/duplicate/delay probabilities.
    pub fn with_message_faults(mut self, drop: f64, duplicate: f64, delay: f64) -> Self {
        assert!((0.0..=1.0).contains(&drop), "drop_prob must be a probability");
        assert!((0.0..=1.0).contains(&duplicate), "duplicate_prob must be a probability");
        assert!((0.0..=1.0).contains(&delay), "delay_prob must be a probability");
        self.drop_prob = drop;
        self.duplicate_prob = duplicate;
        self.delay_prob = delay;
        self
    }

    /// Sets the maximum message delay in supersteps.
    pub fn with_max_delay(mut self, supersteps: u32) -> Self {
        self.max_delay = supersteps.max(1);
        self
    }

    /// Schedules a fail-stop loss of `gpu` at `iteration`.
    pub fn with_fail_stop(mut self, gpu: usize, iteration: u32) -> Self {
        self.fail_stops.push(FailStop { gpu, iteration });
        self
    }

    /// Schedules a rejoin of a previously failed `gpu` at `iteration`.
    pub fn with_rejoin(mut self, gpu: usize, iteration: u32) -> Self {
        self.rejoins.push(Rejoin { gpu, iteration });
        self
    }

    /// Adds a straggler window on `gpu` (`slowdown >= 1` multiplies its
    /// heartbeat latency; the device stays alive).
    pub fn with_straggler(mut self, gpu: usize, from: u32, until: u32, slowdown: f64) -> Self {
        assert!(slowdown >= 1.0, "straggler slowdown must be >= 1");
        self.stragglers.push(Straggler {
            gpu,
            from_iteration: from,
            until_iteration: until,
            slowdown,
        });
        self
    }

    /// Schedules an at-rest checkpoint corruption.
    pub fn with_checkpoint_corruption(
        mut self,
        gpu: usize,
        iteration: u32,
        word: usize,
        xor: u64,
    ) -> Self {
        self.checkpoint_corruptions.push(CheckpointCorruption { gpu, iteration, word, xor });
        self
    }

    /// Schedules a delegate-mask word corruption.
    pub fn with_mask_corruption(
        mut self,
        gpu: usize,
        iteration: u32,
        word: usize,
        xor: u64,
    ) -> Self {
        self.mask_corruptions.push(MaskCorruption { gpu, iteration, word, xor });
        self
    }

    /// Schedules an in-device silent-data-corruption event.
    pub fn with_sdc_event(mut self, event: SdcEvent) -> Self {
        assert!(event.bits != 0, "an SDC event must perturb at least one bit");
        if matches!(event.site, SdcSite::KernelDepth | SdcSite::RestoreBuffer) {
            assert!(
                event.bits & 0xffff_ffff != 0,
                "depth buffers are 32-bit: the low word of `bits` must be non-zero"
            );
        }
        assert!(event.persistence >= 1, "an SDC event fires at least once");
        self.sdc_events.push(event);
        self
    }

    /// Adds a NIC degradation window.
    pub fn with_nic_degradation(mut self, from: u32, until: u32, factor: f64) -> Self {
        assert!(factor >= 1.0, "degradation factor must be >= 1");
        self.nic_degradations.push(NicDegradation {
            from_iteration: from,
            until_iteration: until,
            factor,
        });
        self
    }

    /// True if the plan can never perturb anything.
    pub fn is_benign(&self) -> bool {
        self.drop_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.delay_prob == 0.0
            && self.fail_stops.is_empty()
            && self.rejoins.is_empty()
            && self.stragglers.is_empty()
            && self.mask_corruptions.is_empty()
            && self.checkpoint_corruptions.is_empty()
            && self.nic_degradations.is_empty()
            && self.sdc_events.is_empty()
    }

    /// Generates a random-but-deterministic plan for property tests: mixes
    /// message-level faults, possibly one fail-stop, a couple of mask
    /// corruptions, and a degradation window, all derived from `seed`.
    ///
    /// `num_gpus` bounds fault targets; `horizon` bounds fault iterations
    /// (schedule faults within the first `horizon` supersteps).
    pub fn random(seed: u64, num_gpus: usize, horizon: u32) -> Self {
        let mut s = seed;
        let mut next = || splitmix64(&mut s);
        let unit = |x: u64| (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let horizon = horizon.max(1);
        let mut plan = Self::new(next())
            .with_message_faults(unit(next()) * 0.4, unit(next()) * 0.3, unit(next()) * 0.3)
            .with_max_delay(1 + (next() % 3) as u32);
        if num_gpus > 1 && next() % 2 == 0 {
            plan = plan.with_fail_stop(
                (next() % num_gpus as u64) as usize,
                (next() % horizon as u64) as u32,
            );
        }
        for _ in 0..(next() % 3) {
            plan = plan.with_mask_corruption(
                (next() % num_gpus as u64) as usize,
                (next() % horizon as u64) as u32,
                (next() % 64) as usize,
                next() | 1, // non-zero
            );
        }
        if next() % 2 == 0 {
            let from = (next() % horizon as u64) as u32;
            plan = plan.with_nic_degradation(
                from,
                from + 1 + (next() % 4) as u32,
                1.0 + unit(next()) * 3.0,
            );
        }
        plan
    }

    /// Generates a random-but-deterministic *elastic* plan for property
    /// tests: multi-fail-stop schedules across the device grid, optional
    /// rejoins of the lost devices, straggler windows, and occasional
    /// checkpoint corruption — the full membership lifecycle. The caller
    /// is responsible for checking survivability against a topology with
    /// `spares` standby slots (see [`plan_is_survivable`]).
    pub fn random_elastic(seed: u64, num_gpus: usize, horizon: u32) -> Self {
        let mut s = seed ^ 0x5e1a_571c_e1a5_71c5; // salt: distinct stream from `random`
        let mut next = || splitmix64(&mut s);
        let unit = |x: u64| (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let horizon = horizon.max(4);
        let mut plan = Self::new(next())
            .with_message_faults(unit(next()) * 0.2, unit(next()) * 0.2, unit(next()) * 0.2)
            .with_max_delay(1 + (next() % 2) as u32);
        // 0..=3 fail-stops on distinct GPUs, each optionally rejoining.
        let max_fails = (num_gpus.saturating_sub(1)).min(3) as u64;
        let fails = if max_fails == 0 { 0 } else { next() % (max_fails + 1) };
        let mut victims: Vec<usize> = Vec::new();
        for _ in 0..fails {
            let gpu = (next() % num_gpus as u64) as usize;
            if victims.contains(&gpu) {
                continue;
            }
            victims.push(gpu);
            let fail_at = (next() % (horizon as u64 - 2)) as u32;
            plan = plan.with_fail_stop(gpu, fail_at);
            if next() % 2 == 0 {
                // Rejoin strictly after death can be confirmed (+2 beats).
                let back = fail_at + 2 + (next() % 4) as u32;
                plan = plan.with_rejoin(gpu, back);
            }
        }
        if next() % 2 == 0 {
            let gpu = (next() % num_gpus as u64) as usize;
            let from = (next() % horizon as u64) as u32;
            plan = plan.with_straggler(
                gpu,
                from,
                from + 1 + (next() % 3) as u32,
                2.0 + unit(next()) * 8.0,
            );
        }
        if next() % 4 == 0 {
            plan = plan.with_checkpoint_corruption(
                (next() % num_gpus as u64) as usize,
                (next() % horizon as u64) as u32,
                (next() % 64) as usize,
                next() | 1,
            );
        }
        plan
    }

    /// Generates a random-but-deterministic *compute-SDC* plan for
    /// property tests: 1–3 transient single-bit flips spread over the
    /// kernel-output / mask-reduction / frontier sites and the first
    /// `horizon` supersteps. Every event is single-bit, so an online
    /// verifier running at `Full` tier must either detect it or the flip
    /// provably landed on state the run never read (see the proptest
    /// suite in `tests/sdc.rs`).
    pub fn random_sdc(seed: u64, num_gpus: usize, horizon: u32) -> Self {
        let mut s = seed ^ 0x5dc0_5dc0_5dc0_5dc0; // salt: distinct stream
        let mut next = || splitmix64(&mut s);
        let horizon = horizon.max(1);
        let mut plan = Self::new(next());
        let events = 1 + next() % 3;
        for _ in 0..events {
            let gpu = (next() % num_gpus.max(1) as u64) as usize;
            let iteration = (next() % horizon as u64) as u32;
            let index = next();
            let (site, bits) = match next() % 3 {
                0 => (SdcSite::KernelDepth, 1u64 << (next() % 32)),
                1 => (SdcSite::ReducedMask, 1u64 << (next() % 64)),
                _ => (SdcSite::FrontierDrop, 1u64),
            };
            plan = plan.with_sdc_event(SdcEvent::flip(gpu, iteration, site, index, bits));
        }
        plan
    }
}

/// Per-category counters of faults actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Messages dropped.
    pub drops: u64,
    /// Messages duplicated.
    pub duplicates: u64,
    /// Messages delayed.
    pub delays: u64,
    /// Mask words corrupted.
    pub corruptions: u64,
    /// Fail-stop losses fired.
    pub fail_stops: u64,
    /// Rejoins of previously failed GPUs.
    pub rejoins: u64,
    /// Checkpoint-at-rest corruptions applied.
    pub checkpoint_corruptions: u64,
    /// In-device silent-data-corruption events fired.
    pub sdc_injected: u64,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes a message coordinate into 64 uniform bits, independent of any
/// other coordinate — the basis of thread-count-independent fault streams
/// (and of the membership detector's reproducible heartbeat jitter).
///
/// Public because the proc backend's [`JitteredBackoff`] derives its
/// retry jitter from the same stream family, keeping socket retry
/// schedules reproducible from a seed.
#[inline]
pub fn coordinate_hash(seed: u64, iteration: u32, attempt: u32, channel: u64, index: u64) -> u64 {
    let mut s = seed
        ^ (iteration as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (attempt as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ channel.wrapping_mul(0x94d0_49bb_1331_11eb)
        ^ index.wrapping_mul(0x2545_f491_4f6c_dd1d);
    splitmix64(&mut s)
}

/// Maps 64 uniform bits onto `[0, 1)` (53-bit mantissa precision).
#[inline]
pub fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Seeded-jitter bounded exponential backoff for retryable transport
/// operations (socket connects, framed sends that hit a deadline).
///
/// The schedule is a pure function of `(seed, channel, attempt)`:
/// deterministic under the sim backend (the acceptance gates replay it
/// bit-for-bit) and de-synchronized across channels under the proc
/// backend (two workers retrying the same coordinator never stampede in
/// lockstep). Delay for attempt `k` is
///
/// ```text
/// min(base * 2^k, cap) * (1 - jitter * u)    u ~ U[0, 1)
/// ```
///
/// and `None` once `k >= max_attempts` — the caller must surface its
/// typed error instead of retrying forever.
#[derive(Clone, Copy, Debug)]
pub struct JitteredBackoff {
    seed: u64,
    channel: u64,
    /// First-attempt delay in seconds.
    pub base_secs: f64,
    /// Ceiling on any single delay in seconds.
    pub cap_secs: f64,
    /// Relative jitter amplitude (`0.5` = delays shrink by up to 50%).
    pub jitter: f64,
    /// Attempts allowed before the operation's typed error is final.
    pub max_attempts: u32,
}

impl JitteredBackoff {
    /// A backoff schedule for one logical channel (e.g. one worker's
    /// socket) under `seed`.
    pub fn new(seed: u64, channel: u64) -> Self {
        Self { seed, channel, base_secs: 0.01, cap_secs: 1.0, jitter: 0.5, max_attempts: 5 }
    }

    /// The channel this schedule was derived for.
    pub fn channel(&self) -> u64 {
        self.channel
    }

    /// Overrides the delay envelope.
    pub fn with_envelope(mut self, base_secs: f64, cap_secs: f64, max_attempts: u32) -> Self {
        assert!(base_secs > 0.0 && cap_secs >= base_secs, "envelope must be ordered");
        self.base_secs = base_secs;
        self.cap_secs = cap_secs;
        self.max_attempts = max_attempts;
        self
    }

    /// Delay before retry number `attempt` (0-based), or `None` when the
    /// attempt budget is exhausted and the caller must fail with its
    /// typed error.
    pub fn delay_secs(&self, attempt: u32) -> Option<f64> {
        if attempt >= self.max_attempts {
            return None;
        }
        let ceiling = (self.base_secs * 2f64.powi(attempt.min(16) as i32)).min(self.cap_secs);
        let u = unit_f64(coordinate_hash(self.seed, 0, attempt, self.channel, 0));
        Some(ceiling * (1.0 - self.jitter * u))
    }
}

/// The stateful interpreter of a [`FaultPlan`].
///
/// Message fates are pure functions of `(seed, iteration, attempt,
/// channel, index)`, so retries (a different `attempt`) resample
/// independently and replays after rollback (same coordinates) reproduce
/// identical faults. Scheduled one-shot events (fail-stops, corruptions)
/// are remembered once fired and never fire again — rollback-and-replay
/// recovery therefore always terminates.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    fired_fail_stops: Vec<bool>,
    fired_rejoins: Vec<bool>,
    fired_corruptions: Vec<bool>,
    fired_checkpoint_corruptions: Vec<bool>,
    /// Per-event fire counts for SDC events (an event disarms once its
    /// count reaches its `persistence`).
    sdc_fire_counts: Vec<u32>,
    /// Ground-truth liveness: `Some(iter)` if the GPU went silent at
    /// `iter` and has not rejoined. Grown lazily by `heartbeat_arrivals`.
    silent_since: Vec<Option<u32>>,
    counters: FaultCounters,
}

impl FaultInjector {
    /// Creates an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let fired_fail_stops = vec![false; plan.fail_stops.len()];
        let fired_rejoins = vec![false; plan.rejoins.len()];
        let fired_corruptions = vec![false; plan.mask_corruptions.len()];
        let fired_checkpoint_corruptions = vec![false; plan.checkpoint_corruptions.len()];
        let sdc_fire_counts = vec![0; plan.sdc_events.len()];
        Self {
            plan,
            fired_fail_stops,
            fired_rejoins,
            fired_corruptions,
            fired_checkpoint_corruptions,
            sdc_fire_counts,
            silent_since: Vec::new(),
            counters: FaultCounters::default(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters of faults injected so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Heartbeat check at a superstep boundary: the first scheduled,
    /// not-yet-fired fail-stop with `iteration <= current` fires and is
    /// surfaced as [`FaultError::GpuFailed`]. Subsequent heartbeats (e.g.
    /// after rollback) pass.
    pub fn heartbeat(&mut self, iteration: u32) -> Result<(), FaultError> {
        for (i, fs) in self.plan.fail_stops.iter().enumerate() {
            if !self.fired_fail_stops[i] && fs.iteration <= iteration {
                self.fired_fail_stops[i] = true;
                self.counters.fail_stops += 1;
                return Err(FaultError::GpuFailed { gpu: fs.gpu, iteration });
            }
        }
        Ok(())
    }

    /// Ground-truth heartbeat observations for one superstep boundary:
    /// one [`HeartbeatStatus`] per primary GPU. Fires not-yet-fired
    /// fail-stops with `iteration <= current` (the GPU goes *silent*) and
    /// rejoins (its heartbeats resume). Unlike the legacy [`Self::heartbeat`]
    /// this never returns an error — deciding what silence *means* is the
    /// membership detector's job, not the injector's.
    ///
    /// Idempotent under rollback-and-replay: silence and rejoins are
    /// persistent ground truth, so replaying earlier boundaries reproduces
    /// the same statuses.
    pub fn heartbeat_arrivals(&mut self, iteration: u32, num_gpus: usize) -> Vec<HeartbeatStatus> {
        if self.silent_since.len() < num_gpus {
            self.silent_since.resize(num_gpus, None);
        }
        for (i, fs) in self.plan.fail_stops.iter().enumerate() {
            if !self.fired_fail_stops[i] && fs.iteration <= iteration && fs.gpu < num_gpus {
                self.fired_fail_stops[i] = true;
                self.counters.fail_stops += 1;
                self.silent_since[fs.gpu] = Some(iteration);
            }
        }
        for (i, rj) in self.plan.rejoins.iter().enumerate() {
            if !self.fired_rejoins[i]
                && rj.iteration <= iteration
                && rj.gpu < num_gpus
                && self.silent_since[rj.gpu].is_some()
            {
                self.fired_rejoins[i] = true;
                self.counters.rejoins += 1;
                self.silent_since[rj.gpu] = None;
            }
        }
        (0..num_gpus)
            .map(|gpu| {
                if self.silent_since[gpu].is_some() {
                    HeartbeatStatus::Missing
                } else {
                    HeartbeatStatus::Arrived { slowdown: self.straggler_slowdown(gpu, iteration) }
                }
            })
            .collect()
    }

    /// The heartbeat-latency multiplier active for `gpu` at `iteration`
    /// (`>= 1`; overlapping straggler windows take the worst factor).
    pub fn straggler_slowdown(&self, gpu: usize, iteration: u32) -> f64 {
        self.plan
            .stragglers
            .iter()
            .filter(|s| {
                s.gpu == gpu && s.from_iteration <= iteration && iteration < s.until_iteration
            })
            .map(|s| s.slowdown)
            .fold(1.0, f64::max)
    }

    /// Iteration at which `gpu` went silent, if it is currently silent.
    pub fn silent_since(&self, gpu: usize) -> Option<u32> {
        self.silent_since.get(gpu).copied().flatten()
    }

    /// One-shot at-rest checkpoint corruption: the first not-yet-fired
    /// entry with `iteration <= current` fires and is returned so the
    /// checkpoint layer can tamper with the snapshot it just captured.
    pub fn checkpoint_corruption(&mut self, iteration: u32) -> Option<CheckpointCorruption> {
        for (i, c) in self.plan.checkpoint_corruptions.iter().enumerate() {
            if !self.fired_checkpoint_corruptions[i] && c.iteration <= iteration {
                self.fired_checkpoint_corruptions[i] = true;
                self.counters.checkpoint_corruptions += 1;
                return Some(*c);
            }
        }
        None
    }

    /// Decides the fate of message `index` on `channel` (any stable id for
    /// a (from, to) pair or destination) at `(iteration, attempt)`.
    /// Deterministic and stateless apart from counters.
    pub fn message_fate(
        &mut self,
        iteration: u32,
        attempt: u32,
        channel: u64,
        index: u64,
    ) -> MessageFate {
        let p = &self.plan;
        if p.drop_prob == 0.0 && p.duplicate_prob == 0.0 && p.delay_prob == 0.0 {
            return MessageFate::Deliver;
        }
        let h = coordinate_hash(p.seed, iteration, attempt, channel, index);
        let u = unit_f64(h);
        if u < p.drop_prob {
            self.counters.drops += 1;
            MessageFate::Drop
        } else if u < p.drop_prob + p.duplicate_prob {
            self.counters.duplicates += 1;
            MessageFate::Duplicate
        } else if u < p.drop_prob + p.duplicate_prob + p.delay_prob {
            self.counters.delays += 1;
            let extra = coordinate_hash(p.seed ^ 0xdead_beef, iteration, attempt, channel, index);
            MessageFate::Delay(1 + (extra % self.plan.max_delay.max(1) as u64) as u32)
        } else {
            MessageFate::Deliver
        }
    }

    /// Applies every matching not-yet-fired mask corruption for
    /// `iteration` to `words` (one word vector per GPU). Returns the GPU
    /// index of the first corruption applied, if any — the detection side
    /// sees this as a checksum mismatch on that GPU's mask message.
    pub fn corrupt_mask_words(&mut self, iteration: u32, words: &mut [Vec<u64>]) -> Option<usize> {
        let mut first = None;
        for (i, c) in self.plan.mask_corruptions.iter().enumerate() {
            if self.fired_corruptions[i] || c.iteration > iteration {
                continue;
            }
            let Some(target) = words.get_mut(c.gpu) else { continue };
            if target.is_empty() || c.xor == 0 {
                self.fired_corruptions[i] = true;
                continue;
            }
            let w = c.word % target.len();
            target[w] ^= c.xor;
            self.fired_corruptions[i] = true;
            self.counters.corruptions += 1;
            first.get_or_insert(c.gpu);
        }
        first
    }

    /// Fires every armed SDC event at `site` with `iteration <= current`
    /// whose target is applicable (the driver passes a predicate because
    /// only it knows which buffers are non-empty this superstep — an
    /// event held back by the predicate stays armed for a later step).
    /// Each fire is counted toward the event's `persistence` budget and
    /// the `sdc_injected` counter; unlike the wire faults these events
    /// deliberately *do* refire on rollback-replay while budget remains —
    /// that is what models a non-transient upset and exercises the
    /// escalation ladder.
    pub fn sdc_events_where<F: FnMut(&SdcEvent) -> bool>(
        &mut self,
        iteration: u32,
        site: SdcSite,
        mut applicable: F,
    ) -> Vec<SdcEvent> {
        let mut fired = Vec::new();
        for (i, ev) in self.plan.sdc_events.iter().enumerate() {
            if ev.site != site
                || ev.iteration > iteration
                || self.sdc_fire_counts[i] >= ev.persistence
                || !applicable(ev)
            {
                continue;
            }
            self.sdc_fire_counts[i] += 1;
            self.counters.sdc_injected += 1;
            fired.push(*ev);
        }
        fired
    }

    /// The remote-bandwidth slowdown factor active at `iteration` (`>= 1`;
    /// overlapping windows take the worst factor).
    pub fn bandwidth_factor(&self, iteration: u32) -> f64 {
        self.plan
            .nic_degradations
            .iter()
            .filter(|d| d.from_iteration <= iteration && iteration < d.until_iteration)
            .map(|d| d.factor)
            .fold(1.0, f64::max)
    }

    /// True if any one-shot event (fail-stop, rejoin, or corruption) is
    /// still armed.
    pub fn has_pending_events(&self) -> bool {
        self.fired_fail_stops.iter().any(|&f| !f)
            || self.fired_rejoins.iter().any(|&f| !f)
            || self.fired_corruptions.iter().any(|&f| !f)
            || self.fired_checkpoint_corruptions.iter().any(|&f| !f)
            || self
                .plan
                .sdc_events
                .iter()
                .zip(&self.sdc_fire_counts)
                .any(|(ev, &c)| c < ev.persistence.min(1))
    }
}

/// The single point-in-time survivability predicate shared by the driver
/// and the plan-level check: a failure is absorbable without a spare only
/// if at least one primary member is still alive to host the partition.
pub fn failure_is_survivable(alive: &[bool]) -> bool {
    alive.iter().any(|&a| a)
}

/// A plan-level sanity check used by tests and the sweep harness: replays
/// the plan's fail-stop/rejoin schedule in iteration order against
/// `topology` (including its hot-spare pool) and reports whether every
/// confirmed death can be absorbed — either by promoting a free spare, or
/// by spreading onto at least one surviving primary
/// ([`failure_is_survivable`]). Rejoins revive the member and release any
/// spare that was covering its partition.
pub fn plan_is_survivable(plan: &FaultPlan, topology: Topology) -> bool {
    let p = topology.num_gpus() as usize;
    let mut alive = vec![true; p];
    let mut spares_free = topology.num_spares() as usize;
    let mut covered_by_spare = vec![false; p];
    // (iteration, kind, gpu): deaths (kind 0) before rejoins (kind 1) at
    // the same boundary — a rejoin only applies to an already-dead member.
    let mut events: Vec<(u32, u8, usize)> = Vec::new();
    for fs in &plan.fail_stops {
        if fs.gpu < p {
            events.push((fs.iteration, 0, fs.gpu));
        }
    }
    for rj in &plan.rejoins {
        if rj.gpu < p {
            events.push((rj.iteration, 1, rj.gpu));
        }
    }
    events.sort_unstable();
    for (_, kind, gpu) in events {
        if kind == 0 {
            if !alive[gpu] {
                continue; // duplicate fail-stop on an already-dead member
            }
            alive[gpu] = false;
            if spares_free > 0 {
                spares_free -= 1;
                covered_by_spare[gpu] = true;
            } else if !failure_is_survivable(&alive) {
                return false;
            }
        } else {
            if alive[gpu] {
                continue; // rejoin of a member that never died
            }
            alive[gpu] = true;
            if covered_by_spare[gpu] {
                covered_by_spare[gpu] = false;
                spares_free += 1;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_desynchronized() {
        let a = JitteredBackoff::new(0xb0ff, 3);
        let b = JitteredBackoff::new(0xb0ff, 3);
        let other_channel = JitteredBackoff::new(0xb0ff, 4);
        let mut prev_ceiling = 0.0f64;
        for attempt in 0..a.max_attempts {
            let d = a.delay_secs(attempt).unwrap();
            // Same seed + channel → identical schedule (sim determinism).
            assert_eq!(Some(d), b.delay_secs(attempt));
            // Bounded: within (0, cap], under the un-jittered ceiling,
            // and the ceiling itself grows (until the cap).
            let ceiling = (a.base_secs * 2f64.powi(attempt as i32)).min(a.cap_secs);
            assert!(d > 0.0 && d <= ceiling, "attempt {attempt}: {d} vs ceiling {ceiling}");
            assert!(ceiling >= prev_ceiling);
            prev_ceiling = ceiling;
        }
        // Exhausted budget is a typed refusal, not an infinite loop.
        assert_eq!(a.delay_secs(a.max_attempts), None);
        // Different channels must not retry in lockstep.
        let same: Vec<bool> =
            (0..a.max_attempts).map(|k| a.delay_secs(k) == other_channel.delay_secs(k)).collect();
        assert!(same.iter().any(|&s| !s), "channels 3 and 4 share an entire schedule");
    }

    #[test]
    fn benign_plan_does_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::new(7));
        assert!(inj.plan().is_benign());
        assert_eq!(inj.heartbeat(0), Ok(()));
        for i in 0..100 {
            assert_eq!(inj.message_fate(0, 0, 0, i), MessageFate::Deliver);
        }
        assert_eq!(inj.bandwidth_factor(3), 1.0);
        assert_eq!(inj.counters(), FaultCounters::default());
    }

    #[test]
    fn message_fates_are_deterministic_and_mixed() {
        let plan = FaultPlan::new(42).with_message_faults(0.2, 0.1, 0.1);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        let fa: Vec<_> = (0..500).map(|i| a.message_fate(3, 0, 1, i)).collect();
        let fb: Vec<_> = (0..500).map(|i| b.message_fate(3, 0, 1, i)).collect();
        assert_eq!(fa, fb, "same plan, same stream");
        let drops = fa.iter().filter(|f| **f == MessageFate::Drop).count();
        let dups = fa.iter().filter(|f| **f == MessageFate::Duplicate).count();
        assert!(drops > 50 && drops < 150, "~20% drops, got {drops}");
        assert!(dups > 20 && dups < 100, "~10% duplicates, got {dups}");
        assert!(a.counters().drops == drops as u64);
    }

    #[test]
    fn retries_resample_independently() {
        let plan = FaultPlan::new(9).with_message_faults(0.5, 0.0, 0.0);
        let mut inj = FaultInjector::new(plan);
        let f0: Vec<_> = (0..64).map(|i| inj.message_fate(1, 0, 0, i)).collect();
        let f1: Vec<_> = (0..64).map(|i| inj.message_fate(1, 1, 0, i)).collect();
        assert_ne!(f0, f1, "attempt must salt the stream");
    }

    #[test]
    fn delays_are_bounded() {
        let plan = FaultPlan::new(5).with_message_faults(0.0, 0.0, 1.0).with_max_delay(3);
        let mut inj = FaultInjector::new(plan);
        for i in 0..200 {
            match inj.message_fate(0, 0, 0, i) {
                MessageFate::Delay(k) => assert!((1..=3).contains(&k)),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn fail_stop_fires_once() {
        let plan = FaultPlan::new(1).with_fail_stop(2, 4);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.heartbeat(3), Ok(()));
        assert_eq!(inj.heartbeat(4), Err(FaultError::GpuFailed { gpu: 2, iteration: 4 }));
        // After rollback-and-replay the event must not re-fire.
        assert_eq!(inj.heartbeat(4), Ok(()));
        assert_eq!(inj.heartbeat(10), Ok(()));
        assert!(!inj.has_pending_events());
        assert_eq!(inj.counters().fail_stops, 1);
    }

    #[test]
    fn late_detection_still_fires() {
        // A fail-stop scheduled for iteration 2 detected first at 5.
        let mut inj = FaultInjector::new(FaultPlan::new(1).with_fail_stop(0, 2));
        assert_eq!(inj.heartbeat(5), Err(FaultError::GpuFailed { gpu: 0, iteration: 5 }));
    }

    #[test]
    fn mask_corruption_is_one_shot_and_detected() {
        let plan = FaultPlan::new(3).with_mask_corruption(1, 2, 0, 0b1010);
        let mut inj = FaultInjector::new(plan);
        let mut words = vec![vec![0u64; 2]; 4];
        assert_eq!(inj.corrupt_mask_words(1, &mut words), None);
        assert_eq!(inj.corrupt_mask_words(2, &mut words), Some(1));
        assert_eq!(words[1][0], 0b1010);
        // Retry with fresh words: nothing fires again.
        let mut clean = vec![vec![0u64; 2]; 4];
        assert_eq!(inj.corrupt_mask_words(2, &mut clean), None);
        assert!(clean.iter().all(|w| w.iter().all(|&x| x == 0)));
        assert_eq!(inj.counters().corruptions, 1);
    }

    #[test]
    fn corruption_word_index_wraps() {
        let plan = FaultPlan::new(3).with_mask_corruption(0, 0, 99, 1);
        let mut inj = FaultInjector::new(plan);
        let mut words = vec![vec![0u64; 4]];
        assert_eq!(inj.corrupt_mask_words(0, &mut words), Some(0));
        assert_eq!(words[0][99 % 4], 1);
    }

    #[test]
    fn bandwidth_windows_take_worst_factor() {
        let plan =
            FaultPlan::new(0).with_nic_degradation(2, 6, 2.0).with_nic_degradation(4, 5, 3.5);
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.bandwidth_factor(1), 1.0);
        assert_eq!(inj.bandwidth_factor(2), 2.0);
        assert_eq!(inj.bandwidth_factor(4), 3.5);
        assert_eq!(inj.bandwidth_factor(5), 2.0);
        assert_eq!(inj.bandwidth_factor(6), 1.0);
    }

    #[test]
    fn random_plans_are_deterministic_and_survivable() {
        for seed in 0..32u64 {
            let a = FaultPlan::random(seed, 4, 8);
            let b = FaultPlan::random(seed, 4, 8);
            assert_eq!(a, b);
            assert!(plan_is_survivable(&a, Topology::new(2, 2)));
            assert!(a.drop_prob <= 0.4 && a.delay_prob <= 0.3);
            for c in &a.mask_corruptions {
                assert_ne!(c.xor, 0);
            }
        }
        // Different seeds must differ somewhere.
        assert_ne!(FaultPlan::random(0, 4, 8), FaultPlan::random(1, 4, 8));
    }

    #[test]
    fn survivability_requires_a_survivor() {
        let topo = Topology::new(1, 2);
        let all_dead = FaultPlan::new(0).with_fail_stop(0, 1).with_fail_stop(1, 2);
        assert!(!plan_is_survivable(&all_dead, topo));
        let one_left = FaultPlan::new(0).with_fail_stop(0, 1);
        assert!(plan_is_survivable(&one_left, topo));
    }

    #[test]
    fn spares_and_rejoins_extend_survivability() {
        let both_die = FaultPlan::new(0).with_fail_stop(0, 1).with_fail_stop(1, 3);
        // Spreading needs a live primary: losing both members of a 1×2
        // grid is fatal with one spare (the second death finds neither a
        // free spare nor a survivor) but fine with two.
        assert!(!plan_is_survivable(&both_die, Topology::new(1, 2)));
        assert!(!plan_is_survivable(&both_die, Topology::new(1, 2).with_spares(1)));
        assert!(plan_is_survivable(&both_die, Topology::new(1, 2).with_spares(2)));
        let with_rejoin = both_die.clone().with_rejoin(0, 2);
        assert!(plan_is_survivable(&with_rejoin, Topology::new(1, 2)), "rejoin revives the host");
        // A rejoin releases the spare for reuse: the same single spare
        // covers two sequential deaths of GPU 0.
        let churn = FaultPlan::new(0).with_fail_stop(0, 1).with_rejoin(0, 3).with_fail_stop(0, 5);
        assert!(plan_is_survivable(&churn, Topology::new(1, 1).with_spares(1)));
        assert!(!plan_is_survivable(&churn, Topology::new(1, 1)));
    }

    #[test]
    fn heartbeat_arrivals_track_silence_and_rejoin() {
        let plan = FaultPlan::new(0).with_fail_stop(1, 2).with_rejoin(1, 5);
        let mut inj = FaultInjector::new(plan);
        use HeartbeatStatus::{Arrived, Missing};
        let healthy = vec![Arrived { slowdown: 1.0 }; 3];
        assert_eq!(inj.heartbeat_arrivals(0, 3), healthy);
        assert_eq!(inj.heartbeat_arrivals(1, 3), healthy);
        let at2 = inj.heartbeat_arrivals(2, 3);
        assert_eq!(at2[1], Missing);
        assert_eq!(inj.silent_since(1), Some(2));
        assert_eq!(inj.counters().fail_stops, 1);
        // Replay after rollback: ground truth is stable.
        assert_eq!(inj.heartbeat_arrivals(2, 3)[1], Missing);
        assert_eq!(inj.counters().fail_stops, 1, "silence is not re-fired");
        assert_eq!(inj.heartbeat_arrivals(4, 3)[1], Missing);
        // Rejoin restores the heartbeat.
        assert_eq!(inj.heartbeat_arrivals(5, 3), healthy);
        assert_eq!(inj.silent_since(1), None);
        assert_eq!(inj.counters().rejoins, 1);
        assert!(!inj.has_pending_events());
    }

    #[test]
    fn rejoin_without_silence_is_ignored() {
        let mut inj = FaultInjector::new(FaultPlan::new(0).with_rejoin(0, 1));
        let statuses = inj.heartbeat_arrivals(3, 2);
        assert!(statuses.iter().all(|s| matches!(s, HeartbeatStatus::Arrived { .. })));
        assert_eq!(inj.counters().rejoins, 0);
    }

    #[test]
    fn straggler_windows_shape_arrival_slowdown() {
        let plan = FaultPlan::new(0).with_straggler(1, 2, 4, 3.0).with_straggler(1, 3, 5, 5.0);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.straggler_slowdown(1, 1), 1.0);
        assert_eq!(inj.straggler_slowdown(1, 2), 3.0);
        assert_eq!(inj.straggler_slowdown(1, 3), 5.0, "overlap takes the worst");
        assert_eq!(inj.straggler_slowdown(1, 4), 5.0);
        assert_eq!(inj.straggler_slowdown(1, 5), 1.0);
        assert_eq!(inj.straggler_slowdown(0, 3), 1.0, "other GPUs unaffected");
        match inj.heartbeat_arrivals(3, 2)[1] {
            HeartbeatStatus::Arrived { slowdown } => assert_eq!(slowdown, 5.0),
            other => panic!("straggler must still arrive, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_corruption_fires_once() {
        let plan = FaultPlan::new(0).with_checkpoint_corruption(2, 4, 7, 0b11);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.checkpoint_corruption(3), None);
        let fired = inj.checkpoint_corruption(4).expect("fires at iteration 4");
        assert_eq!((fired.gpu, fired.word, fired.xor), (2, 7, 0b11));
        assert_eq!(inj.checkpoint_corruption(4), None, "one-shot");
        assert_eq!(inj.counters().checkpoint_corruptions, 1);
    }

    #[test]
    fn sdc_events_fire_by_site_and_persistence() {
        let plan = FaultPlan::new(0)
            .with_sdc_event(SdcEvent::flip(1, 2, SdcSite::KernelDepth, 5, 0b100))
            .with_sdc_event(SdcEvent::stuck(0, 0, SdcSite::ReducedMask, 3, 1 << 40));
        assert!(!plan.is_benign());
        let mut inj = FaultInjector::new(plan);
        // Wrong site / too early: nothing fires, events stay armed.
        assert!(inj.sdc_events_where(1, SdcSite::KernelDepth, |_| true).is_empty());
        assert!(inj.sdc_events_where(9, SdcSite::FrontierDrop, |_| true).is_empty());
        assert!(inj.has_pending_events());
        // The transient flip fires exactly once, even on replay.
        let fired = inj.sdc_events_where(2, SdcSite::KernelDepth, |_| true);
        assert_eq!(fired.len(), 1);
        assert_eq!((fired[0].gpu, fired[0].index, fired[0].bits), (1, 5, 0b100));
        assert!(inj.sdc_events_where(2, SdcSite::KernelDepth, |_| true).is_empty());
        // The stuck fault refires on every touch.
        for _ in 0..5 {
            assert_eq!(inj.sdc_events_where(3, SdcSite::ReducedMask, |_| true).len(), 1);
        }
        assert_eq!(inj.counters().sdc_injected, 6);
        assert!(!inj.has_pending_events(), "every event has fired at least once");
    }

    #[test]
    fn sdc_predicate_holds_events_back_without_consuming_them() {
        let plan =
            FaultPlan::new(0).with_sdc_event(SdcEvent::flip(2, 1, SdcSite::FrontierDrop, 0, 1));
        let mut inj = FaultInjector::new(plan);
        // The target buffer is empty this superstep: the event stays armed.
        assert!(inj.sdc_events_where(1, SdcSite::FrontierDrop, |_| false).is_empty());
        assert_eq!(inj.counters().sdc_injected, 0);
        assert!(inj.has_pending_events());
        // A later superstep with a non-empty target gets hit.
        assert_eq!(inj.sdc_events_where(4, SdcSite::FrontierDrop, |_| true).len(), 1);
        assert_eq!(inj.counters().sdc_injected, 1);
    }

    #[test]
    fn sdc_builder_rejects_ineffective_events() {
        let zero = std::panic::catch_unwind(|| {
            FaultPlan::new(0).with_sdc_event(SdcEvent::flip(0, 0, SdcSite::ReducedMask, 0, 0))
        });
        assert!(zero.is_err(), "zero bits can never corrupt anything");
        let high_only = std::panic::catch_unwind(|| {
            FaultPlan::new(0).with_sdc_event(SdcEvent::flip(0, 0, SdcSite::KernelDepth, 0, 1 << 40))
        });
        assert!(high_only.is_err(), "a 32-bit depth word cannot see bits 32..64");
    }

    #[test]
    fn random_sdc_plans_are_deterministic_single_bit_flips() {
        for seed in 0..64u64 {
            let a = FaultPlan::random_sdc(seed, 16, 8);
            assert_eq!(a, FaultPlan::random_sdc(seed, 16, 8));
            assert!(!a.sdc_events.is_empty() && a.sdc_events.len() <= 3);
            for ev in &a.sdc_events {
                assert_eq!(ev.bits.count_ones(), 1, "single-bit upsets only");
                assert_eq!(ev.mode, SdcMode::Flip);
                assert_eq!(ev.persistence, 1);
                assert!(ev.gpu < 16 && ev.iteration < 8);
                assert_ne!(ev.site, SdcSite::RestoreBuffer, "restore hits need a rollback");
            }
            // Message/membership faults stay off: the stream is pure SDC.
            assert!(a.drop_prob == 0.0 && a.fail_stops.is_empty());
        }
        assert_ne!(FaultPlan::random_sdc(0, 16, 8), FaultPlan::random_sdc(1, 16, 8));
    }

    #[test]
    fn random_elastic_plans_are_deterministic_and_confirmable() {
        for seed in 0..64u64 {
            let a = FaultPlan::random_elastic(seed, 8, 12);
            let b = FaultPlan::random_elastic(seed, 8, 12);
            assert_eq!(a, b);
            // Distinct victims, and every rejoin leaves room for the
            // death to be confirmed first (2 consecutive misses).
            let mut victims: Vec<usize> = a.fail_stops.iter().map(|f| f.gpu).collect();
            victims.sort_unstable();
            victims.dedup();
            assert_eq!(victims.len(), a.fail_stops.len());
            for rj in &a.rejoins {
                let fs = a.fail_stops.iter().find(|f| f.gpu == rj.gpu).expect("rejoin has a death");
                assert!(rj.iteration >= fs.iteration + 2);
            }
            for s in &a.stragglers {
                assert!(s.slowdown >= 1.0);
            }
        }
        assert_ne!(FaultPlan::random_elastic(0, 8, 12), FaultPlan::random_elastic(1, 8, 12));
        assert_ne!(
            FaultPlan::random(3, 8, 12).seed,
            FaultPlan::random_elastic(3, 8, 12).seed,
            "elastic stream is salted apart from the legacy stream"
        );
    }
}
