//! Deterministic fault injection for the simulated cluster (the "chaos
//! fabric").
//!
//! Distributed BFS at the paper's scale (hundreds of GPUs, thousands of
//! supersteps across a Graph500 sweep) runs long enough that fail-stop
//! device losses, flaky links, and congested NICs are operational
//! realities. This module provides a *seeded, reproducible* fault model so
//! the recovery machinery in `gcbfs-core` can be tested exhaustively:
//!
//! * [`FaultPlan`] — a declarative, serializable-in-spirit schedule of
//!   faults: per-message drop/duplication/delay probabilities, scheduled
//!   fail-stop GPU losses, delegate-mask word corruptions, and NIC
//!   bandwidth degradation windows. The same plan + seed always produces
//!   the same fault sequence, independent of host thread count.
//! * [`FaultInjector`] — the stateful interpreter of a plan. One-shot
//!   events (fail-stops, corruptions) remember that they fired, so a
//!   rollback-and-replay after recovery does not re-trigger them: recovery
//!   always terminates.
//! * [`FaultError`] — the typed detection results surfaced at superstep
//!   boundaries: heartbeat loss (fail-stop), per-peer ack count mismatch
//!   (dropped/duplicated/delayed messages), and mask checksum mismatch
//!   (corruption in the reduction).
//!
//! Detection model: the BSP driver already runs a tiny per-iteration
//! blocking allreduce (the termination flag). The fault model treats that
//! collective as the *control channel*: heartbeats and per-peer ack counts
//! piggyback on it, so detection happens at superstep granularity and is
//! charged no extra modeled time beyond retries and rollbacks themselves.

use crate::topology::Topology;

/// A typed fault detected at a superstep boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultError {
    /// A GPU missed its heartbeat: fail-stop loss detected.
    GpuFailed {
        /// Flat index of the failed GPU.
        gpu: usize,
        /// Iteration at which the loss was detected.
        iteration: u32,
    },
    /// Per-peer ack counts of the normal-vertex exchange disagree with the
    /// received updates (drop, duplication, or delay in flight).
    ExchangeMismatch {
        /// Iteration of the mismatching exchange.
        iteration: u32,
        /// Retry attempts already consumed when the error was surfaced.
        attempts: u32,
    },
    /// A delegate-mask message failed its checksum in the reduction.
    MaskChecksumMismatch {
        /// Iteration of the corrupted reduction.
        iteration: u32,
        /// Flat index of the GPU whose mask words were corrupted.
        gpu: usize,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::GpuFailed { gpu, iteration } => {
                write!(f, "GPU {gpu} failed (heartbeat lost at iteration {iteration})")
            }
            Self::ExchangeMismatch { iteration, attempts } => write!(
                f,
                "normal exchange ack mismatch at iteration {iteration} after {attempts} attempts"
            ),
            Self::MaskChecksumMismatch { iteration, gpu } => {
                write!(f, "delegate mask checksum mismatch from GPU {gpu} at iteration {iteration}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// A scheduled fail-stop loss of one GPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailStop {
    /// Flat index of the GPU that dies.
    pub gpu: usize,
    /// The superstep boundary at which its heartbeat goes missing.
    pub iteration: u32,
}

/// A scheduled corruption of one delegate-mask word in transit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MaskCorruption {
    /// Flat index of the GPU whose outbound mask is corrupted.
    pub gpu: usize,
    /// First mask reduction at or after this iteration is hit.
    pub iteration: u32,
    /// Word index to corrupt (taken modulo the mask length).
    pub word: usize,
    /// Bits to flip (must be non-zero to have an effect).
    pub xor: u64,
}

/// A window of degraded NIC bandwidth (congestion, link retraining).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NicDegradation {
    /// First affected iteration (inclusive).
    pub from_iteration: u32,
    /// First unaffected iteration (exclusive).
    pub until_iteration: u32,
    /// Slowdown factor applied to remote transfer times (`>= 1`).
    pub factor: f64,
}

/// The fate the injector assigns to one in-flight message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageFate {
    /// Delivered normally.
    Deliver,
    /// Silently dropped.
    Drop,
    /// Delivered twice.
    Duplicate,
    /// Delivered `1..=n` supersteps late.
    Delay(u32),
}

/// A deterministic, seeded schedule of faults for one run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-message fault stream.
    pub seed: u64,
    /// Probability an in-flight normal-vertex update is dropped.
    pub drop_prob: f64,
    /// Probability an update is duplicated.
    pub duplicate_prob: f64,
    /// Probability an update is delayed to a later superstep.
    pub delay_prob: f64,
    /// Maximum delay in supersteps (delays are uniform in `1..=max_delay`).
    pub max_delay: u32,
    /// Scheduled fail-stop GPU losses.
    pub fail_stops: Vec<FailStop>,
    /// Scheduled delegate-mask corruptions.
    pub mask_corruptions: Vec<MaskCorruption>,
    /// NIC bandwidth degradation windows.
    pub nic_degradations: Vec<NicDegradation>,
}

impl FaultPlan {
    /// A benign plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 1,
            fail_stops: Vec::new(),
            mask_corruptions: Vec::new(),
            nic_degradations: Vec::new(),
        }
    }

    /// Sets per-message drop/duplicate/delay probabilities.
    pub fn with_message_faults(mut self, drop: f64, duplicate: f64, delay: f64) -> Self {
        assert!((0.0..=1.0).contains(&drop), "drop_prob must be a probability");
        assert!((0.0..=1.0).contains(&duplicate), "duplicate_prob must be a probability");
        assert!((0.0..=1.0).contains(&delay), "delay_prob must be a probability");
        self.drop_prob = drop;
        self.duplicate_prob = duplicate;
        self.delay_prob = delay;
        self
    }

    /// Sets the maximum message delay in supersteps.
    pub fn with_max_delay(mut self, supersteps: u32) -> Self {
        self.max_delay = supersteps.max(1);
        self
    }

    /// Schedules a fail-stop loss of `gpu` at `iteration`.
    pub fn with_fail_stop(mut self, gpu: usize, iteration: u32) -> Self {
        self.fail_stops.push(FailStop { gpu, iteration });
        self
    }

    /// Schedules a delegate-mask word corruption.
    pub fn with_mask_corruption(
        mut self,
        gpu: usize,
        iteration: u32,
        word: usize,
        xor: u64,
    ) -> Self {
        self.mask_corruptions.push(MaskCorruption { gpu, iteration, word, xor });
        self
    }

    /// Adds a NIC degradation window.
    pub fn with_nic_degradation(mut self, from: u32, until: u32, factor: f64) -> Self {
        assert!(factor >= 1.0, "degradation factor must be >= 1");
        self.nic_degradations.push(NicDegradation {
            from_iteration: from,
            until_iteration: until,
            factor,
        });
        self
    }

    /// True if the plan can never perturb anything.
    pub fn is_benign(&self) -> bool {
        self.drop_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.delay_prob == 0.0
            && self.fail_stops.is_empty()
            && self.mask_corruptions.is_empty()
            && self.nic_degradations.is_empty()
    }

    /// Generates a random-but-deterministic plan for property tests: mixes
    /// message-level faults, possibly one fail-stop, a couple of mask
    /// corruptions, and a degradation window, all derived from `seed`.
    ///
    /// `num_gpus` bounds fault targets; `horizon` bounds fault iterations
    /// (schedule faults within the first `horizon` supersteps).
    pub fn random(seed: u64, num_gpus: usize, horizon: u32) -> Self {
        let mut s = seed;
        let mut next = || splitmix64(&mut s);
        let unit = |x: u64| (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let horizon = horizon.max(1);
        let mut plan = Self::new(next())
            .with_message_faults(unit(next()) * 0.4, unit(next()) * 0.3, unit(next()) * 0.3)
            .with_max_delay(1 + (next() % 3) as u32);
        if num_gpus > 1 && next() % 2 == 0 {
            plan = plan.with_fail_stop(
                (next() % num_gpus as u64) as usize,
                (next() % horizon as u64) as u32,
            );
        }
        for _ in 0..(next() % 3) {
            plan = plan.with_mask_corruption(
                (next() % num_gpus as u64) as usize,
                (next() % horizon as u64) as u32,
                (next() % 64) as usize,
                next() | 1, // non-zero
            );
        }
        if next() % 2 == 0 {
            let from = (next() % horizon as u64) as u32;
            plan = plan.with_nic_degradation(
                from,
                from + 1 + (next() % 4) as u32,
                1.0 + unit(next()) * 3.0,
            );
        }
        plan
    }
}

/// Per-category counters of faults actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Messages dropped.
    pub drops: u64,
    /// Messages duplicated.
    pub duplicates: u64,
    /// Messages delayed.
    pub delays: u64,
    /// Mask words corrupted.
    pub corruptions: u64,
    /// Fail-stop losses fired.
    pub fail_stops: u64,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes a message coordinate into 64 uniform bits, independent of any
/// other coordinate — the basis of thread-count-independent fault streams.
#[inline]
fn coordinate_hash(seed: u64, iteration: u32, attempt: u32, channel: u64, index: u64) -> u64 {
    let mut s = seed
        ^ (iteration as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (attempt as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ channel.wrapping_mul(0x94d0_49bb_1331_11eb)
        ^ index.wrapping_mul(0x2545_f491_4f6c_dd1d);
    splitmix64(&mut s)
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The stateful interpreter of a [`FaultPlan`].
///
/// Message fates are pure functions of `(seed, iteration, attempt,
/// channel, index)`, so retries (a different `attempt`) resample
/// independently and replays after rollback (same coordinates) reproduce
/// identical faults. Scheduled one-shot events (fail-stops, corruptions)
/// are remembered once fired and never fire again — rollback-and-replay
/// recovery therefore always terminates.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    fired_fail_stops: Vec<bool>,
    fired_corruptions: Vec<bool>,
    counters: FaultCounters,
}

impl FaultInjector {
    /// Creates an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let fired_fail_stops = vec![false; plan.fail_stops.len()];
        let fired_corruptions = vec![false; plan.mask_corruptions.len()];
        Self { plan, fired_fail_stops, fired_corruptions, counters: FaultCounters::default() }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters of faults injected so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Heartbeat check at a superstep boundary: the first scheduled,
    /// not-yet-fired fail-stop with `iteration <= current` fires and is
    /// surfaced as [`FaultError::GpuFailed`]. Subsequent heartbeats (e.g.
    /// after rollback) pass.
    pub fn heartbeat(&mut self, iteration: u32) -> Result<(), FaultError> {
        for (i, fs) in self.plan.fail_stops.iter().enumerate() {
            if !self.fired_fail_stops[i] && fs.iteration <= iteration {
                self.fired_fail_stops[i] = true;
                self.counters.fail_stops += 1;
                return Err(FaultError::GpuFailed { gpu: fs.gpu, iteration });
            }
        }
        Ok(())
    }

    /// Decides the fate of message `index` on `channel` (any stable id for
    /// a (from, to) pair or destination) at `(iteration, attempt)`.
    /// Deterministic and stateless apart from counters.
    pub fn message_fate(
        &mut self,
        iteration: u32,
        attempt: u32,
        channel: u64,
        index: u64,
    ) -> MessageFate {
        let p = &self.plan;
        if p.drop_prob == 0.0 && p.duplicate_prob == 0.0 && p.delay_prob == 0.0 {
            return MessageFate::Deliver;
        }
        let h = coordinate_hash(p.seed, iteration, attempt, channel, index);
        let u = unit_f64(h);
        if u < p.drop_prob {
            self.counters.drops += 1;
            MessageFate::Drop
        } else if u < p.drop_prob + p.duplicate_prob {
            self.counters.duplicates += 1;
            MessageFate::Duplicate
        } else if u < p.drop_prob + p.duplicate_prob + p.delay_prob {
            self.counters.delays += 1;
            let extra = coordinate_hash(p.seed ^ 0xdead_beef, iteration, attempt, channel, index);
            MessageFate::Delay(1 + (extra % self.plan.max_delay.max(1) as u64) as u32)
        } else {
            MessageFate::Deliver
        }
    }

    /// Applies every matching not-yet-fired mask corruption for
    /// `iteration` to `words` (one word vector per GPU). Returns the GPU
    /// index of the first corruption applied, if any — the detection side
    /// sees this as a checksum mismatch on that GPU's mask message.
    pub fn corrupt_mask_words(&mut self, iteration: u32, words: &mut [Vec<u64>]) -> Option<usize> {
        let mut first = None;
        for (i, c) in self.plan.mask_corruptions.iter().enumerate() {
            if self.fired_corruptions[i] || c.iteration > iteration {
                continue;
            }
            let Some(target) = words.get_mut(c.gpu) else { continue };
            if target.is_empty() || c.xor == 0 {
                self.fired_corruptions[i] = true;
                continue;
            }
            let w = c.word % target.len();
            target[w] ^= c.xor;
            self.fired_corruptions[i] = true;
            self.counters.corruptions += 1;
            first.get_or_insert(c.gpu);
        }
        first
    }

    /// The remote-bandwidth slowdown factor active at `iteration` (`>= 1`;
    /// overlapping windows take the worst factor).
    pub fn bandwidth_factor(&self, iteration: u32) -> f64 {
        self.plan
            .nic_degradations
            .iter()
            .filter(|d| d.from_iteration <= iteration && iteration < d.until_iteration)
            .map(|d| d.factor)
            .fold(1.0, f64::max)
    }

    /// True if any one-shot event (fail-stop or corruption) is still armed.
    pub fn has_pending_events(&self) -> bool {
        self.fired_fail_stops.iter().any(|&f| !f) || self.fired_corruptions.iter().any(|&f| !f)
    }
}

/// A plan-level sanity check used by tests and the sweep harness: the plan
/// must be recoverable on `topology` — at least one GPU survives all
/// scheduled fail-stops.
pub fn plan_is_survivable(plan: &FaultPlan, topology: Topology) -> bool {
    let p = topology.num_gpus() as usize;
    let mut dead = vec![false; p];
    for fs in &plan.fail_stops {
        if fs.gpu < p {
            dead[fs.gpu] = true;
        }
    }
    dead.iter().any(|&d| !d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_plan_does_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::new(7));
        assert!(inj.plan().is_benign());
        assert_eq!(inj.heartbeat(0), Ok(()));
        for i in 0..100 {
            assert_eq!(inj.message_fate(0, 0, 0, i), MessageFate::Deliver);
        }
        assert_eq!(inj.bandwidth_factor(3), 1.0);
        assert_eq!(inj.counters(), FaultCounters::default());
    }

    #[test]
    fn message_fates_are_deterministic_and_mixed() {
        let plan = FaultPlan::new(42).with_message_faults(0.2, 0.1, 0.1);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        let fa: Vec<_> = (0..500).map(|i| a.message_fate(3, 0, 1, i)).collect();
        let fb: Vec<_> = (0..500).map(|i| b.message_fate(3, 0, 1, i)).collect();
        assert_eq!(fa, fb, "same plan, same stream");
        let drops = fa.iter().filter(|f| **f == MessageFate::Drop).count();
        let dups = fa.iter().filter(|f| **f == MessageFate::Duplicate).count();
        assert!(drops > 50 && drops < 150, "~20% drops, got {drops}");
        assert!(dups > 20 && dups < 100, "~10% duplicates, got {dups}");
        assert!(a.counters().drops == drops as u64);
    }

    #[test]
    fn retries_resample_independently() {
        let plan = FaultPlan::new(9).with_message_faults(0.5, 0.0, 0.0);
        let mut inj = FaultInjector::new(plan);
        let f0: Vec<_> = (0..64).map(|i| inj.message_fate(1, 0, 0, i)).collect();
        let f1: Vec<_> = (0..64).map(|i| inj.message_fate(1, 1, 0, i)).collect();
        assert_ne!(f0, f1, "attempt must salt the stream");
    }

    #[test]
    fn delays_are_bounded() {
        let plan = FaultPlan::new(5).with_message_faults(0.0, 0.0, 1.0).with_max_delay(3);
        let mut inj = FaultInjector::new(plan);
        for i in 0..200 {
            match inj.message_fate(0, 0, 0, i) {
                MessageFate::Delay(k) => assert!((1..=3).contains(&k)),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn fail_stop_fires_once() {
        let plan = FaultPlan::new(1).with_fail_stop(2, 4);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.heartbeat(3), Ok(()));
        assert_eq!(inj.heartbeat(4), Err(FaultError::GpuFailed { gpu: 2, iteration: 4 }));
        // After rollback-and-replay the event must not re-fire.
        assert_eq!(inj.heartbeat(4), Ok(()));
        assert_eq!(inj.heartbeat(10), Ok(()));
        assert!(!inj.has_pending_events());
        assert_eq!(inj.counters().fail_stops, 1);
    }

    #[test]
    fn late_detection_still_fires() {
        // A fail-stop scheduled for iteration 2 detected first at 5.
        let mut inj = FaultInjector::new(FaultPlan::new(1).with_fail_stop(0, 2));
        assert_eq!(inj.heartbeat(5), Err(FaultError::GpuFailed { gpu: 0, iteration: 5 }));
    }

    #[test]
    fn mask_corruption_is_one_shot_and_detected() {
        let plan = FaultPlan::new(3).with_mask_corruption(1, 2, 0, 0b1010);
        let mut inj = FaultInjector::new(plan);
        let mut words = vec![vec![0u64; 2]; 4];
        assert_eq!(inj.corrupt_mask_words(1, &mut words), None);
        assert_eq!(inj.corrupt_mask_words(2, &mut words), Some(1));
        assert_eq!(words[1][0], 0b1010);
        // Retry with fresh words: nothing fires again.
        let mut clean = vec![vec![0u64; 2]; 4];
        assert_eq!(inj.corrupt_mask_words(2, &mut clean), None);
        assert!(clean.iter().all(|w| w.iter().all(|&x| x == 0)));
        assert_eq!(inj.counters().corruptions, 1);
    }

    #[test]
    fn corruption_word_index_wraps() {
        let plan = FaultPlan::new(3).with_mask_corruption(0, 0, 99, 1);
        let mut inj = FaultInjector::new(plan);
        let mut words = vec![vec![0u64; 4]];
        assert_eq!(inj.corrupt_mask_words(0, &mut words), Some(0));
        assert_eq!(words[0][99 % 4], 1);
    }

    #[test]
    fn bandwidth_windows_take_worst_factor() {
        let plan =
            FaultPlan::new(0).with_nic_degradation(2, 6, 2.0).with_nic_degradation(4, 5, 3.5);
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.bandwidth_factor(1), 1.0);
        assert_eq!(inj.bandwidth_factor(2), 2.0);
        assert_eq!(inj.bandwidth_factor(4), 3.5);
        assert_eq!(inj.bandwidth_factor(5), 2.0);
        assert_eq!(inj.bandwidth_factor(6), 1.0);
    }

    #[test]
    fn random_plans_are_deterministic_and_survivable() {
        for seed in 0..32u64 {
            let a = FaultPlan::random(seed, 4, 8);
            let b = FaultPlan::random(seed, 4, 8);
            assert_eq!(a, b);
            assert!(plan_is_survivable(&a, Topology::new(2, 2)));
            assert!(a.drop_prob <= 0.4 && a.delay_prob <= 0.3);
            for c in &a.mask_corruptions {
                assert_ne!(c.xor, 0);
            }
        }
        // Different seeds must differ somewhere.
        assert_ne!(FaultPlan::random(0, 4, 8), FaultPlan::random(1, 4, 8));
    }

    #[test]
    fn survivability_requires_a_survivor() {
        let topo = Topology::new(1, 2);
        let all_dead = FaultPlan::new(0).with_fail_stop(0, 1).with_fail_stop(1, 2);
        assert!(!plan_is_survivable(&all_dead, topo));
        let one_left = FaultPlan::new(0).with_fail_stop(0, 1);
        assert!(plan_is_survivable(&one_left, topo));
    }
}
