#![warn(missing_docs)]

//! Simulated GPU cluster substrate.
//!
//! The paper runs on the LLNL *Ray* CORAL early-access machine: nodes with
//! 2 MPI ranks × 2 P100 GPUs (NVLink intra-node, 100 Gb/s EDR InfiniBand
//! inter-node, all NIC–GPU traffic staged through CPU memory). None of that
//! hardware is available here, so this crate *is* the machine:
//!
//! * [`topology`] — the `prank × pgpu` device grid and id arithmetic;
//! * [`fabric`] — a deterministic BSP message fabric between simulated
//!   GPUs (point-to-point mailboxes), executed with rayon;
//! * [`collectives`] — MPI-like collectives executed over real data:
//!   two-phase bit-or allreduce (local GPU→GPU0 reduce, then cross-rank),
//!   barriers, local all-to-all;
//! * [`cost`] — the analytic network + device cost model that converts the
//!   *measured byte volumes and edge workloads* of a run into modeled Ray
//!   time. All scaling figures in the paper are regenerated against this
//!   model; real wall-clock of the Rust execution is reported separately.
//! * [`timing`] — phase accounting (computation / local communication /
//!   remote normal exchange / remote delegate reduce) with the
//!   stream-overlap rule of Fig. 3.

//! * [`fault`] — the deterministic fault-injection layer (the "chaos
//!   fabric"): seeded message drop/duplication/delay, scheduled fail-stop
//!   GPU losses, delegate-mask corruption, and NIC degradation windows,
//!   with typed detection errors surfaced at superstep boundaries.

//! * [`membership`] — elastic cluster membership on top of the fault
//!   layer: an adaptive phi-accrual failure detector (suspected vs
//!   confirmed-dead), the member lifecycle state machine, and the
//!   hot-spare pool that lets recovery restore *balance*, not just
//!   liveness.

//! * [`clock`] — the modeled-vs-wall time seam: the failure detector
//!   consumes beat-valued instants from a [`Clock`], so the simulator's
//!   superstep counter and the proc backend's wall heartbeats share one
//!   detection code path.

pub mod clock;
pub mod collectives;
pub mod cost;
pub mod fabric;
pub mod fault;
pub mod membership;
pub mod timing;
pub mod topology;

pub use clock::{Clock, ModeledClock, WallClock};
pub use cost::{CostModel, DeviceModel, NetworkModel};
pub use fabric::{Fabric, FabricError};
pub use fault::{FaultError, FaultInjector, FaultPlan, JitteredBackoff};
pub use membership::{HeartbeatStatus, MemberState, Membership, MembershipConfig, MembershipEvent};
pub use timing::{IterationTiming, Phase, PhaseTimes};
pub use topology::{GpuId, Topology};
