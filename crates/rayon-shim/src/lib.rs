//! Sequential, deterministic drop-in for the subset of the `rayon` API this
//! workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rayon` cannot be vendored. This shim keeps every call site unchanged
//! (`par_iter`, `par_chunks`, `into_par_iter`, `ThreadPoolBuilder`, ...)
//! while executing sequentially. That is semantically safe here by design:
//! the repository's own determinism tests (`tests/determinism.rs`) require
//! every algorithm to produce bit-identical results regardless of the host
//! thread count, so a one-thread execution is always a valid schedule.
//!
//! "Parallel iterators" are thin wrappers over `std` iterators with the
//! rayon-flavored combinators the workspace calls (`flat_map_iter`,
//! `reduce(identity, op)`, ...). Swapping the real rayon back in is a
//! one-line change in the workspace `Cargo.toml`.

use std::ops::Range;

/// Number of worker threads of the current pool. The shim always runs
/// sequentially, so this is 1.
pub fn current_num_threads() -> usize {
    1
}

/// Builder for a (sequential) thread pool; mirrors `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    _num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a new builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the requested thread count (ignored: the shim is sequential).
    pub fn num_threads(mut self, n: usize) -> Self {
        self._num_threads = n;
        self
    }

    /// Builds the pool. Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {})
    }
}

/// Error building a thread pool (never produced by the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A (sequential) thread pool; mirrors `rayon::ThreadPool`.
pub struct ThreadPool {}

impl ThreadPool {
    /// Runs `f` "inside" the pool: sequentially, on the calling thread.
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        f()
    }
}

/// The shim's "parallel" iterator: a lazy wrapper over a `std` iterator
/// exposing the rayon combinator names (notably `reduce(identity, op)` and
/// `flat_map_iter`, whose signatures differ from `std::iter::Iterator`).
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Maps each item.
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Filters items.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// Filter + map in one pass.
    pub fn filter_map<O, F: FnMut(I::Item) -> Option<O>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    /// Maps each item to a serial iterator and flattens (rayon's
    /// `flat_map_iter`).
    pub fn flat_map_iter<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, U, F>> {
        ParIter(self.0.flat_map(f))
    }

    /// Maps each item to an iterable and flattens (alias of
    /// [`ParIter::flat_map_iter`] in the shim).
    pub fn flat_map<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, U, F>> {
        ParIter(self.0.flat_map(f))
    }

    /// Pairs items with those of another parallel iterator.
    pub fn zip<J: IntoParIter>(self, other: J) -> ParIter<std::iter::Zip<I, J::Inner>> {
        ParIter(self.0.zip(other.into_par_inner()))
    }

    /// Numbers items from 0.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Consumes the iterator, applying `f` to each item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Collects into any `FromIterator` collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Splits an iterator of pairs into two collections.
    pub fn unzip<A, B, FromA, FromB>(self) -> (FromA, FromB)
    where
        I: Iterator<Item = (A, B)>,
        FromA: Default + Extend<A>,
        FromB: Default + Extend<B>,
    {
        self.0.unzip()
    }

    /// Rayon-style reduction: fold from `identity()` with `op`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: FnOnce() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Minimum item.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// Maximum item.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Whether any item satisfies `f`.
    pub fn any<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
        let mut it = self.0;
        it.any(f)
    }

    /// Whether all items satisfy `f`.
    pub fn all<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
        let mut it = self.0;
        it.all(f)
    }

    /// Finds the first item satisfying `f` (rayon's `find_any`, which in a
    /// sequential schedule is simply the first match).
    pub fn find_any<F: FnMut(&I::Item) -> bool>(self, f: F) -> Option<I::Item> {
        let mut it = self.0;
        it.find(f)
    }
}

impl<I: Iterator> IntoIterator for ParIter<I> {
    type Item = I::Item;
    type IntoIter = I;
    fn into_iter(self) -> I {
        self.0
    }
}

/// Conversion into the shim's parallel iterator; lets `zip` accept
/// `ParIter`s, `Vec`s, and any other iterable (rayon's `zip` similarly
/// accepts `IntoParallelIterator` arguments).
pub trait IntoParIter {
    /// Underlying serial iterator type.
    type Inner: Iterator;
    /// Unwraps into the serial iterator.
    fn into_par_inner(self) -> Self::Inner;
}

impl<T: IntoIterator> IntoParIter for T {
    type Inner = T::IntoIter;
    fn into_par_inner(self) -> Self::Inner {
        self.into_iter()
    }
}

/// Owning conversion, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Converts into a "parallel" iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

impl<A> IntoParallelIterator for Range<A>
where
    Range<A>: Iterator<Item = A>,
{
    type Item = A;
    type Iter = Range<A>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self)
    }
}

/// Borrowing slice operations (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T> {
    /// Parallel shared iteration.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// Parallel chunked iteration.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }
}

/// Mutable slice operations (`par_iter_mut`, `par_chunks_mut`, parallel
/// sorts).
pub trait ParallelSliceMut<T> {
    /// Parallel exclusive iteration.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    /// Parallel chunked exclusive iteration.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    /// Parallel unstable sort (sequential in the shim).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Parallel unstable sort by key (sequential in the shim).
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk_size))
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
        self.sort_unstable_by_key(f);
    }
}

/// Runs two closures (sequentially in the shim) and returns both results;
/// mirrors `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The rayon prelude: glob-import to get the `par_*` methods.
pub mod prelude {
    pub use crate::{IntoParIter, IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_roundtrip() {
        let v: Vec<u32> = (0u32..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn chunked_reduce_matches_serial() {
        let data: Vec<u64> = (0..100).collect();
        let total: u64 =
            data.par_chunks(7).map(|c| c.iter().sum::<u64>()).reduce(|| 0, |a, b| a + b);
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn zip_and_unzip() {
        let a = [1, 2, 3];
        let mut b = [10, 20, 30];
        a.par_iter().zip(b.par_iter_mut()).for_each(|(x, y)| *y += x);
        assert_eq!(b, [11, 22, 33]);
        let (l, r): (Vec<i32>, Vec<i32>) = a.par_iter().map(|&x| (x, -x)).unzip();
        assert_eq!(l, vec![1, 2, 3]);
        assert_eq!(r, vec![-1, -2, -3]);
    }

    #[test]
    fn sort_and_pool() {
        let mut v = vec![3u64, 1, 2];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3]);
        let pool = crate::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool.install(|| 42), 42);
        assert_eq!(crate::current_num_threads(), 1);
    }
}
