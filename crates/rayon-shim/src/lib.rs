//! Multi-threaded, deterministic drop-in for the subset of the `rayon` API
//! this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rayon` cannot be vendored. This shim keeps every call site unchanged
//! (`par_iter`, `par_chunks`, `into_par_iter`, `ThreadPoolBuilder`, ...)
//! while executing **genuinely in parallel** on a persistent work-stealing
//! worker pool built on `std::thread` + atomics (see [`pool`]).
//!
//! # Determinism by construction
//!
//! The repository's determinism tests (`tests/determinism.rs`) require every
//! algorithm to produce bit-identical results regardless of the host thread
//! count. The shim guarantees this structurally rather than by luck:
//!
//! * **Fixed chunk boundaries.** Every parallel operation splits its input
//!   into chunks whose boundaries depend *only on the input length* (never on
//!   the thread count) — see [`chunk_ends`].
//! * **Ordered reduction.** Per-chunk partial results are merged strictly in
//!   chunk-index order on the calling thread. Thread scheduling decides
//!   *when* a chunk runs, never *how* results combine.
//! * **Identical structure at width 1.** A single-threaded pool executes the
//!   exact same chunked plan inline, so even non-associative folds (`f64`
//!   reductions, sort tie-breaks) are bit-identical at any width.
//!
//! The worker count comes from `ThreadPoolBuilder::num_threads`, the
//! `GCBFS_THREADS` environment variable, or the machine's available
//! parallelism, in that order of precedence. Swapping the real rayon back in
//! remains a one-line change in the workspace `Cargo.toml`.

use std::cell::UnsafeCell;
use std::cmp::Ordering as CmpOrdering;
use std::marker::PhantomData;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::ops::ControlFlow;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

mod pool;

// ---------------------------------------------------------------------------
// Chunk planning
// ---------------------------------------------------------------------------

/// Maximum number of chunks a parallel operation is split into. Bounds
/// scheduling overhead while leaving enough grains for stealing to balance
/// skewed chunks.
const MAX_CHUNKS: usize = 64;

/// Fixed chunk plan for an input of `len` items: `k = min(len, MAX_CHUNKS)`
/// chunks with end offsets `(i + 1) * len / k`. Depends only on `len`, never
/// on thread count — the cornerstone of the shim's determinism guarantee.
fn chunk_ends(len: usize) -> Vec<usize> {
    let k = len.min(MAX_CHUNKS);
    (1..=k).map(|i| i * len / k).collect()
}

// ---------------------------------------------------------------------------
// Splittable sources
// ---------------------------------------------------------------------------

/// A parallel data source: indexed, splittable into disjoint ranges.
///
/// # Safety
///
/// Implementations may hand out exclusive access (`&mut`) or move values out
/// through a shared `&self` receiver. Callers must guarantee that the ranges
/// passed to [`ParSource::make_iter`] are **pairwise disjoint** over the
/// source's lifetime, and that every produced iterator is consumed on a
/// single thread. The chunked engine upholds this: chunk ranges partition
/// `0..len` and each chunk is claimed exactly once.
pub unsafe trait ParSource: Send + Sync {
    /// Item produced for each index.
    type Item: Send;

    /// Total number of items.
    fn len(&self) -> usize;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate items in `[start, end)`.
    ///
    /// # Safety
    /// See the trait-level contract: ranges must be disjoint across all
    /// calls, and `start <= end <= self.len()`.
    unsafe fn make_iter(&self, start: usize, end: usize) -> impl Iterator<Item = Self::Item> + '_;
}

/// Shared-slice source (`par_iter`).
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

unsafe impl<'a, T: Sync> ParSource for SliceSource<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn make_iter(&self, start: usize, end: usize) -> impl Iterator<Item = Self::Item> + '_ {
        self.slice[start..end].iter()
    }
}

/// Exclusive-slice source (`par_iter_mut`). Holds a raw pointer so disjoint
/// ranges can be re-borrowed mutably from multiple worker threads.
pub struct SliceMutSource<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for SliceMutSource<'_, T> {}
unsafe impl<T: Send> Sync for SliceMutSource<'_, T> {}

unsafe impl<'a, T: Send> ParSource for SliceMutSource<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn make_iter(&self, start: usize, end: usize) -> impl Iterator<Item = Self::Item> + '_ {
        // SAFETY: ranges are disjoint per the trait contract, so the mutable
        // sub-slices never alias; the pointer outlives 'a by construction.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) }.iter_mut()
    }
}

/// Shared chunked-slice source (`par_chunks`). Index space is chunk indices.
pub struct ChunksSource<'a, T> {
    slice: &'a [T],
    size: usize,
}

unsafe impl<'a, T: Sync> ParSource for ChunksSource<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    unsafe fn make_iter(&self, start: usize, end: usize) -> impl Iterator<Item = Self::Item> + '_ {
        let (slice, size) = (self.slice, self.size);
        (start..end).map(move |i| {
            let lo = i * size;
            let hi = (lo + size).min(slice.len());
            &slice[lo..hi]
        })
    }
}

/// Exclusive chunked-slice source (`par_chunks_mut`).
pub struct ChunksMutSource<'a, T> {
    ptr: *mut T,
    len: usize,
    size: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for ChunksMutSource<'_, T> {}
unsafe impl<T: Send> Sync for ChunksMutSource<'_, T> {}

unsafe impl<'a, T: Send> ParSource for ChunksMutSource<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.len.div_ceil(self.size)
    }

    unsafe fn make_iter(&self, start: usize, end: usize) -> impl Iterator<Item = Self::Item> + '_ {
        let (ptr, len, size) = (self.ptr, self.len, self.size);
        (start..end).map(move |i| {
            let lo = i * size;
            let hi = (lo + size).min(len);
            // SAFETY: chunk index ranges are disjoint, so the produced
            // mutable sub-slices never alias.
            unsafe { std::slice::from_raw_parts_mut(ptr.add(lo), hi - lo) }
        })
    }
}

/// Owning source over a `Vec` (`into_par_iter`). Items are moved out of the
/// buffer by `ptr::read`; the buffer itself is freed without dropping
/// elements, so each element is dropped exactly once by whoever consumed it.
pub struct VecSource<T> {
    vec: ManuallyDrop<Vec<T>>,
}

unsafe impl<T: Send> Send for VecSource<T> {}
unsafe impl<T: Send> Sync for VecSource<T> {}

impl<T> Drop for VecSource<T> {
    fn drop(&mut self) {
        // SAFETY: elements were either moved out by `make_iter` consumers or
        // are intentionally leaked (only reachable on panic / early-exit
        // paths); setting len to 0 frees the allocation without dropping.
        unsafe {
            let mut v = ManuallyDrop::take(&mut self.vec);
            v.set_len(0);
        }
    }
}

unsafe impl<T: Send> ParSource for VecSource<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.vec.len()
    }

    unsafe fn make_iter(&self, start: usize, end: usize) -> impl Iterator<Item = Self::Item> + '_ {
        let ptr = self.vec.as_ptr();
        // SAFETY: ranges are disjoint per the trait contract, so each element
        // is read (moved) at most once.
        (start..end).map(move |i| unsafe { std::ptr::read(ptr.add(i)) })
    }
}

/// Integer types usable as `into_par_iter` range elements.
pub trait ParIndex: Copy + Send + Sync + 'static {
    /// `self + i`, for walking a range from its start.
    fn offset(self, i: usize) -> Self;
    /// Number of steps from `self` up to (excluding) `end`.
    fn distance_to(self, end: Self) -> usize;
}

macro_rules! par_index {
    ($($t:ty),* $(,)?) => {$(
        impl ParIndex for $t {
            fn offset(self, i: usize) -> Self {
                self + i as $t
            }
            fn distance_to(self, end: Self) -> usize {
                if end <= self { 0 } else { (end - self) as usize }
            }
        }
    )*};
}

par_index!(usize, u64, u32, u16, i64, i32);

/// Range source (`(a..b).into_par_iter()`).
pub struct RangeSource<A> {
    start: A,
    len: usize,
}

unsafe impl<A: ParIndex> ParSource for RangeSource<A> {
    type Item = A;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn make_iter(&self, start: usize, end: usize) -> impl Iterator<Item = Self::Item> + '_ {
        let base = self.start;
        (start..end).map(move |i| base.offset(i))
    }
}

/// Lock-step pairing of two sources, truncated to the shorter (`zip`).
pub struct ZipSource<A, B> {
    a: A,
    b: B,
    len: usize,
}

unsafe impl<A: ParSource, B: ParSource> ParSource for ZipSource<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn make_iter(&self, start: usize, end: usize) -> impl Iterator<Item = Self::Item> + '_ {
        // SAFETY: the same disjoint range is forwarded to both inner sources,
        // so their per-source range sets stay pairwise disjoint.
        unsafe { self.a.make_iter(start, end).zip(self.b.make_iter(start, end)) }
    }
}

/// Index-tagged source (`enumerate`).
pub struct EnumSource<S> {
    inner: S,
}

unsafe impl<S: ParSource> ParSource for EnumSource<S> {
    type Item = (usize, S::Item);

    fn len(&self) -> usize {
        self.inner.len()
    }

    unsafe fn make_iter(&self, start: usize, end: usize) -> impl Iterator<Item = Self::Item> + '_ {
        // SAFETY: range forwarded verbatim; global indices come for free.
        (start..end).zip(unsafe { self.inner.make_iter(start, end) })
    }
}

// ---------------------------------------------------------------------------
// Composable per-item operation chains
// ---------------------------------------------------------------------------

/// A stack of item transformations applied via internal iteration. The sink
/// returns [`ControlFlow::Break`] to stop early (`any` / `all` / `find_any`).
pub trait OpChain<In>: Sync {
    /// Output item type after every transformation in the chain.
    type Out: Send;

    /// Push `x` through the chain, handing each produced item to `sink`.
    fn feed<K: FnMut(Self::Out) -> ControlFlow<()>>(&self, x: In, sink: &mut K) -> ControlFlow<()>;
}

/// The empty chain: items pass through untouched.
pub struct NoOps;

impl<In: Send> OpChain<In> for NoOps {
    type Out = In;

    fn feed<K: FnMut(In) -> ControlFlow<()>>(&self, x: In, sink: &mut K) -> ControlFlow<()> {
        sink(x)
    }
}

/// `map` stage.
pub struct MapOp<P, F> {
    prev: P,
    f: F,
}

impl<In, P, T, F> OpChain<In> for MapOp<P, F>
where
    P: OpChain<In>,
    T: Send,
    F: Fn(P::Out) -> T + Sync,
{
    type Out = T;

    fn feed<K: FnMut(T) -> ControlFlow<()>>(&self, x: In, sink: &mut K) -> ControlFlow<()> {
        self.prev.feed(x, &mut |y| sink((self.f)(y)))
    }
}

/// `filter` stage.
pub struct FilterOp<P, F> {
    prev: P,
    f: F,
}

impl<In, P, F> OpChain<In> for FilterOp<P, F>
where
    P: OpChain<In>,
    F: Fn(&P::Out) -> bool + Sync,
{
    type Out = P::Out;

    fn feed<K: FnMut(P::Out) -> ControlFlow<()>>(&self, x: In, sink: &mut K) -> ControlFlow<()> {
        self.prev.feed(x, &mut |y| if (self.f)(&y) { sink(y) } else { ControlFlow::Continue(()) })
    }
}

/// `filter_map` stage.
pub struct FilterMapOp<P, F> {
    prev: P,
    f: F,
}

impl<In, P, T, F> OpChain<In> for FilterMapOp<P, F>
where
    P: OpChain<In>,
    T: Send,
    F: Fn(P::Out) -> Option<T> + Sync,
{
    type Out = T;

    fn feed<K: FnMut(T) -> ControlFlow<()>>(&self, x: In, sink: &mut K) -> ControlFlow<()> {
        self.prev.feed(x, &mut |y| match (self.f)(y) {
            Some(z) => sink(z),
            None => ControlFlow::Continue(()),
        })
    }
}

/// `flat_map` / `flat_map_iter` stage.
pub struct FlatMapOp<P, F> {
    prev: P,
    f: F,
}

impl<In, P, U, F> OpChain<In> for FlatMapOp<P, F>
where
    P: OpChain<In>,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(P::Out) -> U + Sync,
{
    type Out = U::Item;

    fn feed<K: FnMut(U::Item) -> ControlFlow<()>>(&self, x: In, sink: &mut K) -> ControlFlow<()> {
        self.prev.feed(x, &mut |y| {
            for z in (self.f)(y) {
                sink(z)?;
            }
            ControlFlow::Continue(())
        })
    }
}

// ---------------------------------------------------------------------------
// The chunked execution engine
// ---------------------------------------------------------------------------

/// Per-chunk result slots, written disjointly by worker threads and read in
/// chunk order by the submitter after the job completes.
struct Slots<R>(Vec<UnsafeCell<Option<R>>>);

unsafe impl<R: Send> Sync for Slots<R> {}

/// Run `per_chunk(source, start, end)` for every chunk in the fixed plan of
/// `source.len()` items, in parallel, and return the per-chunk results in
/// chunk order.
fn run_chunked<S, R, F>(source: &S, per_chunk: &F) -> Vec<R>
where
    S: ParSource,
    R: Send,
    F: Fn(&S, usize, usize) -> R + Sync,
{
    let ends = chunk_ends(source.len());
    let k = ends.len();
    if k == 0 {
        return Vec::new();
    }
    let slots = Slots((0..k).map(|_| UnsafeCell::new(None)).collect());
    let ends_ref = &ends;
    // Capture the `Sync` wrapper by reference (edition 2021 would otherwise
    // capture the inner `Vec<UnsafeCell<..>>` field and lose the Sync impl).
    let slots_ref = &slots;
    let task = |i: usize| {
        let start = if i == 0 { 0 } else { ends_ref[i - 1] };
        let end = ends_ref[i];
        let r = per_chunk(source, start, end);
        // SAFETY: the pool executes each chunk index exactly once, so writes
        // to slot `i` never race; the submitter only reads after completion.
        unsafe {
            *slots_ref.0[i].get() = Some(r);
        }
    };
    pool::run(k, &task);
    slots.0.into_iter().map(|c| c.into_inner().expect("chunk result missing")).collect()
}

// ---------------------------------------------------------------------------
// The parallel iterator
// ---------------------------------------------------------------------------

/// The shim's parallel iterator: a splittable [`ParSource`] plus a composed
/// [`OpChain`] applied per item during chunked execution.
pub struct ParIter<S, O> {
    source: S,
    ops: O,
}

impl<S: ParSource> ParIter<S, NoOps> {
    fn from_source(source: S) -> Self {
        ParIter { source, ops: NoOps }
    }

    /// Pairs items with those of another parallel source, truncating to the
    /// shorter of the two.
    pub fn zip<J: IntoParSource>(self, other: J) -> ParIter<ZipSource<S, J::Source>, NoOps> {
        let a = self.source;
        let b = other.into_par_source();
        let len = a.len().min(b.len());
        ParIter::from_source(ZipSource { a, b, len })
    }

    /// Numbers items from 0 in source order.
    pub fn enumerate(self) -> ParIter<EnumSource<S>, NoOps> {
        ParIter::from_source(EnumSource { inner: self.source })
    }
}

impl<S: ParSource, O: OpChain<S::Item>> ParIter<S, O> {
    /// Maps each item.
    pub fn map<T, F>(self, f: F) -> ParIter<S, MapOp<O, F>>
    where
        T: Send,
        F: Fn(O::Out) -> T + Sync,
    {
        ParIter { source: self.source, ops: MapOp { prev: self.ops, f } }
    }

    /// Filters items.
    pub fn filter<F>(self, f: F) -> ParIter<S, FilterOp<O, F>>
    where
        F: Fn(&O::Out) -> bool + Sync,
    {
        ParIter { source: self.source, ops: FilterOp { prev: self.ops, f } }
    }

    /// Filter + map in one pass.
    pub fn filter_map<T, F>(self, f: F) -> ParIter<S, FilterMapOp<O, F>>
    where
        T: Send,
        F: Fn(O::Out) -> Option<T> + Sync,
    {
        ParIter { source: self.source, ops: FilterMapOp { prev: self.ops, f } }
    }

    /// Maps each item to a serial iterator and flattens (rayon's
    /// `flat_map_iter`).
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<S, FlatMapOp<O, F>>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(O::Out) -> U + Sync,
    {
        ParIter { source: self.source, ops: FlatMapOp { prev: self.ops, f } }
    }

    /// Maps each item to an iterable and flattens (alias of
    /// [`ParIter::flat_map_iter`] in the shim).
    pub fn flat_map<U, F>(self, f: F) -> ParIter<S, FlatMapOp<O, F>>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(O::Out) -> U + Sync,
    {
        self.flat_map_iter(f)
    }

    /// Consumes the iterator, applying `f` to each item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(O::Out) + Sync,
    {
        let ParIter { source, ops } = self;
        run_chunked(&source, &|src: &S, s, e| {
            // SAFETY: chunk ranges are disjoint by construction.
            let iter = unsafe { src.make_iter(s, e) };
            for x in iter {
                let _ = ops.feed(x, &mut |y| {
                    f(y);
                    ControlFlow::Continue(())
                });
            }
        });
    }

    /// Collects into any `FromIterator` collection, preserving source order.
    pub fn collect<C: FromIterator<O::Out>>(self) -> C {
        let ParIter { source, ops } = self;
        let chunks = run_chunked(&source, &|src: &S, s, e| {
            let mut out = Vec::new();
            // SAFETY: chunk ranges are disjoint by construction.
            let iter = unsafe { src.make_iter(s, e) };
            for x in iter {
                let _ = ops.feed(x, &mut |y| {
                    out.push(y);
                    ControlFlow::Continue(())
                });
            }
            out
        });
        chunks.into_iter().flatten().collect()
    }

    /// Splits an iterator of pairs into two collections, preserving order.
    pub fn unzip<A, B, FromA, FromB>(self) -> (FromA, FromB)
    where
        O: OpChain<S::Item, Out = (A, B)>,
        A: Send,
        B: Send,
        FromA: Default + Extend<A>,
        FromB: Default + Extend<B>,
    {
        let ParIter { source, ops } = self;
        let chunks = run_chunked(&source, &|src: &S, s, e| {
            let mut left = Vec::new();
            let mut right = Vec::new();
            // SAFETY: chunk ranges are disjoint by construction.
            let iter = unsafe { src.make_iter(s, e) };
            for x in iter {
                let _ = ops.feed(x, &mut |(a, b)| {
                    left.push(a);
                    right.push(b);
                    ControlFlow::Continue(())
                });
            }
            (left, right)
        });
        let mut out_a = FromA::default();
        let mut out_b = FromB::default();
        for (l, r) in chunks {
            out_a.extend(l);
            out_b.extend(r);
        }
        (out_a, out_b)
    }

    /// Rayon-style reduction: per-chunk fold from `identity()`, then an
    /// ordered fold of the chunk partials. The chunk plan is fixed by input
    /// length, so the association is identical at every thread count.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> O::Out
    where
        ID: Fn() -> O::Out + Sync,
        OP: Fn(O::Out, O::Out) -> O::Out + Sync,
    {
        let ParIter { source, ops } = self;
        let partials = run_chunked(&source, &|src: &S, s, e| {
            let mut acc = Some(identity());
            // SAFETY: chunk ranges are disjoint by construction.
            let iter = unsafe { src.make_iter(s, e) };
            for x in iter {
                let _ = ops.feed(x, &mut |y| {
                    acc = Some(op(acc.take().expect("reduce accumulator"), y));
                    ControlFlow::Continue(())
                });
            }
            acc.expect("reduce accumulator")
        });
        let mut total = identity();
        for p in partials {
            total = op(total, p);
        }
        total
    }

    /// Sums the items (per-chunk sums merged in chunk order).
    pub fn sum<Sm>(self) -> Sm
    where
        Sm: std::iter::Sum<O::Out> + std::iter::Sum<Sm> + Send,
    {
        let ParIter { source, ops } = self;
        let partials = run_chunked(&source, &|src: &S, s, e| {
            let mut buf = Vec::new();
            // SAFETY: chunk ranges are disjoint by construction.
            let iter = unsafe { src.make_iter(s, e) };
            for x in iter {
                let _ = ops.feed(x, &mut |y| {
                    buf.push(y);
                    ControlFlow::Continue(())
                });
            }
            buf.into_iter().sum::<Sm>()
        });
        partials.into_iter().sum()
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        let ParIter { source, ops } = self;
        let partials = run_chunked(&source, &|src: &S, s, e| {
            let mut n = 0usize;
            // SAFETY: chunk ranges are disjoint by construction.
            let iter = unsafe { src.make_iter(s, e) };
            for x in iter {
                let _ = ops.feed(x, &mut |_| {
                    n += 1;
                    ControlFlow::Continue(())
                });
            }
            n
        });
        partials.into_iter().sum()
    }

    /// Minimum item (first minimum in source order, matching `Iterator::min`).
    pub fn min(self) -> Option<O::Out>
    where
        O::Out: Ord,
    {
        let ParIter { source, ops } = self;
        let partials = run_chunked(&source, &|src: &S, s, e| {
            let mut best: Option<O::Out> = None;
            // SAFETY: chunk ranges are disjoint by construction.
            let iter = unsafe { src.make_iter(s, e) };
            for x in iter {
                let _ = ops.feed(x, &mut |y| {
                    best = match best.take() {
                        // Strict `<` keeps the first of equal minima.
                        Some(b) => Some(if y < b { y } else { b }),
                        None => Some(y),
                    };
                    ControlFlow::Continue(())
                });
            }
            best
        });
        partials.into_iter().flatten().reduce(|a, b| if b < a { b } else { a })
    }

    /// Maximum item (last maximum in source order, matching `Iterator::max`).
    pub fn max(self) -> Option<O::Out>
    where
        O::Out: Ord,
    {
        let ParIter { source, ops } = self;
        let partials = run_chunked(&source, &|src: &S, s, e| {
            let mut best: Option<O::Out> = None;
            // SAFETY: chunk ranges are disjoint by construction.
            let iter = unsafe { src.make_iter(s, e) };
            for x in iter {
                let _ = ops.feed(x, &mut |y| {
                    best = match best.take() {
                        // `>=` keeps the last of equal maxima.
                        Some(b) => Some(if y >= b { y } else { b }),
                        None => Some(y),
                    };
                    ControlFlow::Continue(())
                });
            }
            best
        });
        partials.into_iter().flatten().reduce(|a, b| if b >= a { b } else { a })
    }

    /// Whether any item satisfies `f`. Chunks short-circuit once a match is
    /// found anywhere; the boolean result is schedule-independent.
    pub fn any<F>(self, f: F) -> bool
    where
        F: Fn(O::Out) -> bool + Sync,
    {
        let ParIter { source, ops } = self;
        let found = AtomicBool::new(false);
        run_chunked(&source, &|src: &S, s, e| {
            if found.load(Ordering::Relaxed) {
                return;
            }
            // SAFETY: chunk ranges are disjoint by construction.
            let iter = unsafe { src.make_iter(s, e) };
            for x in iter {
                let cf = ops.feed(x, &mut |y| {
                    if f(y) {
                        found.store(true, Ordering::Relaxed);
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                });
                if cf.is_break() || found.load(Ordering::Relaxed) {
                    break;
                }
            }
        });
        found.load(Ordering::Relaxed)
    }

    /// Whether all items satisfy `f`.
    pub fn all<F>(self, f: F) -> bool
    where
        F: Fn(O::Out) -> bool + Sync,
    {
        let ParIter { source, ops } = self;
        let failed = AtomicBool::new(false);
        run_chunked(&source, &|src: &S, s, e| {
            if failed.load(Ordering::Relaxed) {
                return;
            }
            // SAFETY: chunk ranges are disjoint by construction.
            let iter = unsafe { src.make_iter(s, e) };
            for x in iter {
                let cf = ops.feed(x, &mut |y| {
                    if f(y) {
                        ControlFlow::Continue(())
                    } else {
                        failed.store(true, Ordering::Relaxed);
                        ControlFlow::Break(())
                    }
                });
                if cf.is_break() || failed.load(Ordering::Relaxed) {
                    break;
                }
            }
        });
        !failed.load(Ordering::Relaxed)
    }

    /// Finds a matching item. Unlike rayon (whose `find_any` is
    /// schedule-dependent), the shim deterministically returns the **first**
    /// match in source order — a valid (and stronger) implementation of the
    /// `find_any` contract.
    pub fn find_any<F>(self, f: F) -> Option<O::Out>
    where
        F: Fn(&O::Out) -> bool + Sync,
    {
        let ParIter { source, ops } = self;
        // Lowest chunk index with a match so far; later chunks abort early.
        let best_chunk = AtomicUsize::new(usize::MAX);
        let ends = chunk_ends(source.len());
        let hits = run_chunked(&source, &|src: &S, s, e| {
            let my_chunk = ends.partition_point(|&end| end <= s);
            if best_chunk.load(Ordering::Relaxed) < my_chunk {
                return None;
            }
            let mut hit: Option<O::Out> = None;
            // SAFETY: chunk ranges are disjoint by construction.
            let iter = unsafe { src.make_iter(s, e) };
            for x in iter {
                let cf = ops.feed(x, &mut |y| {
                    if f(&y) {
                        hit = Some(y);
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                });
                if cf.is_break() {
                    break;
                }
                if best_chunk.load(Ordering::Relaxed) < my_chunk {
                    return None;
                }
            }
            if hit.is_some() {
                best_chunk.fetch_min(my_chunk, Ordering::Relaxed);
            }
            hit
        });
        hits.into_iter().flatten().next()
    }
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

/// Conversion into a [`ParSource`]; lets `zip` accept `ParIter`s, `Vec`s and
/// ranges (rayon's `zip` similarly accepts `IntoParallelIterator` arguments).
pub trait IntoParSource {
    /// Item type.
    type Item: Send;
    /// Source type.
    type Source: ParSource<Item = Self::Item>;
    /// Converts into the source.
    fn into_par_source(self) -> Self::Source;
}

impl<S: ParSource> IntoParSource for ParIter<S, NoOps> {
    type Item = S::Item;
    type Source = S;
    fn into_par_source(self) -> S {
        self.source
    }
}

impl<T: Send> IntoParSource for Vec<T> {
    type Item = T;
    type Source = VecSource<T>;
    fn into_par_source(self) -> VecSource<T> {
        VecSource { vec: ManuallyDrop::new(self) }
    }
}

impl<A: ParIndex> IntoParSource for Range<A> {
    type Item = A;
    type Source = RangeSource<A>;
    fn into_par_source(self) -> RangeSource<A> {
        RangeSource { start: self.start, len: self.start.distance_to(self.end) }
    }
}

/// Owning conversion, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Source type backing the parallel iterator.
    type Source: ParSource<Item = Self::Item>;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Source, NoOps>;
}

impl<T: IntoParSource> IntoParallelIterator for T {
    type Item = T::Item;
    type Source = T::Source;
    fn into_par_iter(self) -> ParIter<T::Source, NoOps> {
        ParIter::from_source(self.into_par_source())
    }
}

/// Borrowing slice operations (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel shared iteration.
    fn par_iter(&self) -> ParIter<SliceSource<'_, T>, NoOps>;
    /// Parallel chunked iteration.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksSource<'_, T>, NoOps>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceSource<'_, T>, NoOps> {
        ParIter::from_source(SliceSource { slice: self })
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksSource<'_, T>, NoOps> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter::from_source(ChunksSource { slice: self, size: chunk_size })
    }
}

/// Mutable slice operations (`par_iter_mut`, `par_chunks_mut`, parallel
/// sorts).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel exclusive iteration.
    fn par_iter_mut(&mut self) -> ParIter<SliceMutSource<'_, T>, NoOps>;
    /// Parallel chunked exclusive iteration.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutSource<'_, T>, NoOps>;
    /// Parallel unstable sort. Deterministic: the chunk/merge plan depends
    /// only on the slice length, and merges break ties by chunk order.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Parallel unstable sort by key.
    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, f: F);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutSource<'_, T>, NoOps> {
        ParIter::from_source(SliceMutSource {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        })
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutSource<'_, T>, NoOps> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter::from_source(ChunksMutSource {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            size: chunk_size,
            _marker: PhantomData,
        })
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_sort_impl(self, &|a: &T, b: &T| a.cmp(b));
    }

    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, f: F) {
        par_sort_impl(self, &|a: &T, b: &T| f(a).cmp(&f(b)));
    }
}

// ---------------------------------------------------------------------------
// Parallel sort
// ---------------------------------------------------------------------------

/// Below this length a sequential sort always wins (and keeps the plan
/// trivially deterministic). Length-based, never width-based.
const SORT_SEQ_CUTOFF: usize = 8 << 10;

/// Raw pointer wrapper so sort tasks can be shared across worker threads.
struct SendPtr<T>(*mut T);

// Manual impls: a derive would add an unwanted `T: Copy` bound.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Merge sorted runs `src[a..b]` and `src[b..c]` into `dst[a..c]`, taking
/// from the left run on ties (stable by chunk order, hence deterministic).
///
/// # Safety
/// `src[a..c]` must be initialized; `dst[a..c]` must be valid for writes and
/// disjoint from `src[a..c]`. `T` must not need drop (elements are
/// bit-copied; on a comparator panic both buffers may hold copies).
unsafe fn merge_runs<T, C>(src: *const T, a: usize, b: usize, c: usize, dst: *mut T, cmp: &C)
where
    C: Fn(&T, &T) -> CmpOrdering,
{
    let (mut i, mut j, mut o) = (a, b, a);
    unsafe {
        while i < b && j < c {
            let take_left = cmp(&*src.add(i), &*src.add(j)) != CmpOrdering::Greater;
            if take_left {
                std::ptr::copy_nonoverlapping(src.add(i), dst.add(o), 1);
                i += 1;
            } else {
                std::ptr::copy_nonoverlapping(src.add(j), dst.add(o), 1);
                j += 1;
            }
            o += 1;
        }
        if i < b {
            std::ptr::copy_nonoverlapping(src.add(i), dst.add(o), b - i);
        }
        if j < c {
            std::ptr::copy_nonoverlapping(src.add(j), dst.add(o), c - j);
        }
    }
}

/// Deterministic parallel merge sort: fixed chunk plan (length-only), chunks
/// sorted in parallel with the std unstable sort, then `log2(k)` rounds of
/// pairwise parallel merges ping-ponging between the slice and one scratch
/// buffer. Falls back to the sequential std sort for short inputs and for
/// types with drop glue (bit-copy merging would be unsound to unwind there;
/// no workspace call site sorts such types).
fn par_sort_impl<T: Send, C: Fn(&T, &T) -> CmpOrdering + Sync>(v: &mut [T], cmp: &C) {
    let len = v.len();
    if len <= SORT_SEQ_CUTOFF || std::mem::needs_drop::<T>() || pool::effective_width() <= 1 {
        v.sort_unstable_by(|a, b| cmp(a, b));
        return;
    }

    // Fixed plan: MAX_CHUNKS runs regardless of thread count.
    let mut bounds: Vec<usize> = Vec::with_capacity(MAX_CHUNKS + 1);
    bounds.push(0);
    bounds.extend(chunk_ends(len));
    let runs = bounds.len() - 1;

    let base = SendPtr(v.as_mut_ptr());
    // Phase 1: sort each run in place, in parallel.
    {
        let bounds_ref = &bounds;
        let base_ref = &base; // capture the Sync wrapper, not the raw field
        pool::run(runs, &|i: usize| {
            let (s, e) = (bounds_ref[i], bounds_ref[i + 1]);
            // SAFETY: run ranges are disjoint sub-slices of `v`.
            let chunk = unsafe { std::slice::from_raw_parts_mut(base_ref.0.add(s), e - s) };
            chunk.sort_unstable_by(|a, b| cmp(a, b));
        });
    }

    // Phase 2: pairwise merge rounds, ping-ponging with a scratch buffer.
    let mut scratch: Vec<MaybeUninit<T>> = Vec::with_capacity(len);
    // SAFETY: MaybeUninit contents never require initialization.
    unsafe { scratch.set_len(len) };
    let scratch_ptr = SendPtr(scratch.as_mut_ptr() as *mut T);

    let mut in_orig = true;
    while bounds.len() > 2 {
        let pairs = (bounds.len() - 1) / 2;
        let odd_tail = (bounds.len() - 1) % 2 == 1;
        let (src, dst) = if in_orig { (base, scratch_ptr) } else { (scratch_ptr, base) };
        {
            let bounds_ref = &bounds;
            let (src_ref, dst_ref) = (&src, &dst); // keep the Sync wrappers
            let tasks = pairs + usize::from(odd_tail);
            pool::run(tasks, &|p: usize| {
                if p < pairs {
                    let (a, b, c) =
                        (bounds_ref[2 * p], bounds_ref[2 * p + 1], bounds_ref[2 * p + 2]);
                    // SAFETY: src[a..c] initialized (previous round), dst is
                    // the other buffer, ranges disjoint per pair; T: !Drop
                    // checked at entry.
                    unsafe { merge_runs(src_ref.0, a, b, c, dst_ref.0, cmp) };
                } else {
                    // Odd tail run: copy through unchanged.
                    let (a, c) =
                        (bounds_ref[bounds_ref.len() - 2], bounds_ref[bounds_ref.len() - 1]);
                    // SAFETY: same disjointness argument as above.
                    unsafe {
                        std::ptr::copy_nonoverlapping(src_ref.0.add(a), dst_ref.0.add(a), c - a)
                    };
                }
            });
        }
        // Collapse pair boundaries: keep every other interior bound.
        let mut next = Vec::with_capacity(pairs + 2);
        next.push(0);
        for p in 1..=pairs {
            next.push(bounds[2 * p]);
        }
        if odd_tail {
            next.push(len);
        }
        bounds = next;
        in_orig = !in_orig;
    }

    if !in_orig {
        // SAFETY: scratch[0..len] holds the fully merged data.
        unsafe { std::ptr::copy_nonoverlapping(scratch_ptr.0, base.0, len) };
    }
    // Scratch holds bit-copies of !Drop data; plain deallocation is fine.
}

// ---------------------------------------------------------------------------
// join / thread pool handles
// ---------------------------------------------------------------------------

/// One-shot closure slot claimed by exactly one pool task.
struct OnceSlot<T>(UnsafeCell<Option<T>>);

unsafe impl<T: Send> Sync for OnceSlot<T> {}

/// Runs two closures, potentially in parallel, and returns both results;
/// mirrors `rayon::join`. Nested joins (from inside pool work) run inline.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if pool::effective_width() < 2 || pool::in_task() {
        return (a(), b());
    }
    let fa = OnceSlot(UnsafeCell::new(Some(a)));
    let fb = OnceSlot(UnsafeCell::new(Some(b)));
    let ra = OnceSlot(UnsafeCell::new(None));
    let rb = OnceSlot(UnsafeCell::new(None));
    // Capture the `Sync` wrappers by reference (edition 2021 would otherwise
    // capture the raw `UnsafeCell` fields and lose the wrapper's Sync impl).
    let (fa_ref, fb_ref, ra_ref, rb_ref) = (&fa, &fb, &ra, &rb);
    pool::run(2, &|i: usize| {
        // SAFETY: the pool executes each index exactly once, so each slot is
        // taken/written by a single thread; the submitter reads only after
        // completion.
        unsafe {
            if i == 0 {
                let f = (*fa_ref.0.get()).take().expect("join closure A");
                *ra_ref.0.get() = Some(f());
            } else {
                let f = (*fb_ref.0.get()).take().expect("join closure B");
                *rb_ref.0.get() = Some(f());
            }
        }
    });
    let ra = ra.0.into_inner().expect("join result A");
    let rb = rb.0.into_inner().expect("join result B");
    (ra, rb)
}

/// Number of worker threads the current scope would use for a parallel
/// operation (honors `ThreadPool::install` overrides and `GCBFS_THREADS`).
pub fn current_num_threads() -> usize {
    pool::effective_width()
}

/// Builder for a thread-pool handle; mirrors `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a new builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the requested thread count (0 = use the global default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool handle. The shim shares one global worker pool, so
    /// "building a pool" just records the width `install` will apply.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 { pool::default_width() } else { self.num_threads };
        Ok(ThreadPool { width: width.clamp(1, pool::MAX_THREADS) })
    }
}

/// Error building a thread pool (never produced by the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A width-scoped handle onto the shared worker pool; mirrors
/// `rayon::ThreadPool`.
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count in effect on the calling
    /// thread: parallel operations inside `f` use `self`'s width.
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        pool::with_width_override(self.width, f)
    }

    /// The width this handle installs.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }
}

/// The rayon prelude: glob-import to get the `par_*` methods.
pub mod prelude {
    pub use crate::{IntoParSource, IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(n: usize) -> crate::ThreadPool {
        crate::ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn map_collect_roundtrip() {
        let v: Vec<u32> = (0u32..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn chunked_reduce_matches_serial() {
        let data: Vec<u64> = (0..100).collect();
        let total: u64 =
            data.par_chunks(7).map(|c| c.iter().sum::<u64>()).reduce(|| 0, |a, b| a + b);
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn zip_and_unzip() {
        let a = [1, 2, 3];
        let mut b = [10, 20, 30];
        a.par_iter().zip(b.par_iter_mut()).for_each(|(x, y)| *y += x);
        assert_eq!(b, [11, 22, 33]);
        let (l, r): (Vec<i32>, Vec<i32>) = a.par_iter().map(|&x| (x, -x)).unzip();
        assert_eq!(l, vec![1, 2, 3]);
        assert_eq!(r, vec![-1, -2, -3]);
    }

    #[test]
    fn sort_and_pool() {
        let mut v = vec![3u64, 1, 2];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3]);
        let p = pool(1);
        assert_eq!(p.install(|| 42), 42);
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn genuinely_parallel_at_width_4() {
        // With 4 threads and a blocking rendezvous, all 4 participants must
        // be live simultaneously or the test deadlocks (bounded by timeout
        // logic: each task spins until the barrier count reaches 4).
        use std::sync::Barrier;
        let barrier = Barrier::new(4);
        let hits = AtomicUsize::new(0);
        pool(4).install(|| {
            (0..4usize).into_par_iter().for_each(|_| {
                barrier.wait();
                hits.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn chunk_boundaries_cover_input_exactly() {
        for len in [0usize, 1, 2, 63, 64, 65, 100, 1000, 4097] {
            let ends = crate::chunk_ends(len);
            if len == 0 {
                assert!(ends.is_empty());
                continue;
            }
            assert_eq!(*ends.last().unwrap(), len);
            let mut prev = 0;
            for &e in &ends {
                assert!(e > prev, "chunks must be non-empty: len={len} ends={ends:?}");
                prev = e;
            }
            assert_eq!(ends.len(), len.min(crate::MAX_CHUNKS));
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        assert_eq!(empty.par_iter().count(), 0);
        assert_eq!(Vec::<u64>::new().into_par_iter().sum::<u64>(), 0);
        // len < threads
        pool(8).install(|| {
            let v: Vec<u32> = (0u32..3).into_par_iter().map(|x| x + 1).collect();
            assert_eq!(v, vec![1, 2, 3]);
        });
        // len % chunks != 0
        let data: Vec<u64> = (0..131).collect();
        let s: u64 = data.par_iter().map(|&x| x).sum();
        assert_eq!(s, 131 * 130 / 2);
    }

    #[test]
    fn results_identical_across_widths() {
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let run = || {
            let mapped: Vec<f64> = data.par_iter().map(|&x| x * 1.5 - 0.25).collect();
            let total = mapped.par_iter().map(|&x| x).reduce(|| 0.0, |a, b| a + b);
            let mut keys: Vec<(u64, u64)> =
                data.par_iter().enumerate().map(|(i, &x)| (x.to_bits() >> 32, i as u64)).collect();
            keys.par_sort_unstable();
            (mapped, total.to_bits(), keys)
        };
        let reference = pool(1).install(run);
        for n in [2usize, 3, 4, 8] {
            let got = pool(n).install(run);
            assert_eq!(got.1, reference.1, "f64 reduction must be bit-identical at width {n}");
            assert_eq!(got, reference, "width {n} diverged");
        }
    }

    #[test]
    fn par_sort_matches_std_sort() {
        // Long enough to take the parallel path (> SORT_SEQ_CUTOFF).
        let mut rng = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let data: Vec<(u64, u64)> = (0..40_000).map(|_| (next() % 1000, next())).collect();
        let mut expected = data.clone();
        expected.sort_unstable();
        for n in [1usize, 2, 4, 8] {
            let mut got = data.clone();
            pool(n).install(|| got.par_sort_unstable());
            assert_eq!(got, expected, "parallel sort diverged at width {n}");
        }
    }

    #[test]
    fn panic_propagates_from_worker_closure() {
        let result = std::panic::catch_unwind(|| {
            pool(4).install(|| {
                (0..64usize).into_par_iter().for_each(|i| {
                    if i == 37 {
                        panic!("deliberate test panic");
                    }
                });
            });
        });
        assert!(result.is_err(), "panic inside a parallel closure must propagate");
        // The pool must remain usable after a propagated panic.
        let v: Vec<usize> = pool(4).install(|| (0..16usize).into_par_iter().collect());
        assert_eq!(v, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn nested_join_and_nested_par_iter() {
        let (a, b) = crate::join(
            || {
                let (x, y) = crate::join(|| 1 + 1, || 2 + 2);
                x + y
            },
            || (0..100u64).into_par_iter().map(|x| x * x).sum::<u64>(),
        );
        assert_eq!(a, 6);
        assert_eq!(b, (0..100u64).map(|x| x * x).sum::<u64>());
        // Nested par_iter inside a par_iter task runs inline and stays exact.
        let v: Vec<u64> =
            (0..8u64).into_par_iter().map(|i| (0..i).into_par_iter().sum::<u64>()).collect();
        assert_eq!(v, (0..8u64).map(|i| i * (i.max(1) - 1) / 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_flat_map_min_max_any_all_find() {
        let data: Vec<u32> = (0..1000).collect();
        let evens: Vec<u32> = data.par_iter().filter(|&&x| x % 2 == 0).map(|&x| x).collect();
        assert_eq!(evens.len(), 500);
        let fm: Vec<u32> =
            (0u32..10).into_par_iter().flat_map_iter(|x| (0..x).map(move |y| x * 10 + y)).collect();
        let expected: Vec<u32> = (0u32..10).flat_map(|x| (0..x).map(move |y| x * 10 + y)).collect();
        assert_eq!(fm, expected);
        assert_eq!(data.par_iter().map(|&x| x).min(), Some(0));
        assert_eq!(data.par_iter().map(|&x| x).max(), Some(999));
        assert!(data.par_iter().any(|&x| x == 777));
        assert!(!data.par_iter().any(|&x| x == 7777));
        assert!(data.par_iter().all(|&x| x < 1000));
        assert_eq!(data.par_iter().find_any(|&&x| x % 313 == 312), Some(&312));
        let fmapped: Vec<u32> =
            data.par_iter().filter_map(|&x| (x % 100 == 0).then_some(x / 100)).collect();
        assert_eq!(fmapped, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn owned_non_copy_items_move_correctly() {
        let strings: Vec<String> = (0..200).map(|i| format!("item-{i}")).collect();
        let lens: Vec<usize> =
            pool(4).install(|| strings.clone().into_par_iter().map(|s| s.len()).collect());
        let expected: Vec<usize> = strings.iter().map(String::len).collect();
        assert_eq!(lens, expected);
    }

    #[test]
    fn gcbfs_threads_env_is_honored_shape() {
        // Can't mutate the cached env in-process; just check the clamp logic
        // via explicit pools.
        assert_eq!(pool(0).current_num_threads(), crate::current_num_threads().clamp(1, 256));
        assert_eq!(pool(3).current_num_threads(), 3);
    }
}
