//! Persistent work-stealing worker pool backing the rayon-compatible API.
//!
//! Design goals (in priority order):
//!
//! 1. **Determinism by construction.** The pool never influences *what* is
//!    computed — only *when*. Work is pre-split into fixed index intervals
//!    (one per participant) derived purely from the total item count; workers
//!    claim indices with `fetch_add` and may steal from other participants'
//!    intervals, but every index is executed exactly once and the caller
//!    merges per-chunk results in index order. Thread count therefore cannot
//!    change any observable output.
//! 2. **No external dependencies.** Built on `std::thread` + atomics only
//!    (the container has no crates.io access).
//! 3. **Borrowed closures.** Jobs borrow stack data from the submitting
//!    thread. Safety comes from the submitter blocking until every index has
//!    *finished* executing (`completed == total`) before returning, so the
//!    borrow outlives all worker accesses.
//!
//! Nested parallelism (a `par_iter` inside a worker closure, or nested
//! `join`) runs inline on the current thread: a thread-local `IN_TASK` flag
//! collapses the effective width to 1. This prevents pool-starvation
//! deadlocks and keeps the evaluation structure identical at every width.

use std::any::Any;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard upper bound on pool width; callers asking for more are clamped.
pub(crate) const MAX_THREADS: usize = 256;

thread_local! {
    /// Width override installed by `ThreadPool::install` (None = global default).
    static WIDTH_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// True while this thread is executing pool work; nested ops run inline.
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
}

fn clamp_width(n: usize) -> usize {
    n.clamp(1, MAX_THREADS)
}

/// Global default width: `GCBFS_THREADS` env override, else the number of
/// available hardware threads. Resolved once per process.
pub(crate) fn default_width() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(raw) = std::env::var("GCBFS_THREADS") {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return clamp_width(n);
                }
            }
        }
        std::thread::available_parallelism().map(|n| clamp_width(n.get())).unwrap_or(1)
    })
}

/// Width in effect for a parallel operation started on this thread.
pub(crate) fn effective_width() -> usize {
    if IN_TASK.with(|f| f.get()) {
        return 1;
    }
    WIDTH_OVERRIDE.with(|w| w.get()).unwrap_or_else(default_width)
}

/// Run `f` with the width override set to `width` (restored on unwind).
pub(crate) fn with_width_override<R>(width: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WIDTH_OVERRIDE.with(|w| w.set(self.0));
        }
    }
    let prev = WIDTH_OVERRIDE.with(|w| w.replace(Some(clamp_width(width))));
    let _restore = Restore(prev);
    f()
}

/// Type-erased pointer to a borrowed `&(dyn Fn(usize) + Sync)` task living on
/// the submitting thread's stack.
///
/// # Safety
/// The pointee must outlive the job; `run` guarantees this by waiting for
/// `completed == total` before returning. Claims are bounded by the queue
/// `end`s, so no worker can touch the task after the final completion signal.
#[derive(Clone, Copy)]
struct TaskRef {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

unsafe impl Send for TaskRef {}
unsafe impl Sync for TaskRef {}

impl TaskRef {
    fn new(task: &&(dyn Fn(usize) + Sync)) -> Self {
        unsafe fn call(data: *const (), index: usize) {
            let task = unsafe { &**(data as *const &(dyn Fn(usize) + Sync)) };
            task(index);
        }
        TaskRef { data: task as *const &(dyn Fn(usize) + Sync) as *const (), call }
    }

    /// # Safety
    /// Must only be called while the borrowed task is alive (see struct docs).
    unsafe fn invoke(&self, index: usize) {
        unsafe { (self.call)(self.data, index) }
    }
}

/// One participant's index interval. `next` advances via `fetch_add`; indices
/// in `[next, end)` are unclaimed.
struct Queue {
    next: AtomicUsize,
    end: usize,
}

impl Queue {
    /// Claim one index, or None if the interval is drained.
    fn claim(&self) -> Option<usize> {
        // Optimistic fetch_add; repair overshoot is unnecessary because
        // `next` only ever grows and `end` bounds validity checks.
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        if idx < self.end {
            Some(idx)
        } else {
            None
        }
    }

    fn looks_nonempty(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.end
    }
}

/// A submitted parallel job: a borrowed task plus per-participant queues.
struct Job {
    task: TaskRef,
    queues: Vec<Queue>,
    total: usize,
    /// Number of indices fully executed (success or panic).
    completed: AtomicUsize,
    /// Number of pool workers currently attached (bounded by `width - 1`;
    /// the submitting thread participates without attaching).
    attached: AtomicUsize,
    width: usize,
    done: Mutex<bool>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Job {
    fn new(task: TaskRef, total: usize, width: usize) -> Self {
        let queues = (0..width)
            .map(|k| Queue {
                next: AtomicUsize::new(k * total / width),
                end: (k + 1) * total / width,
            })
            .collect();
        Job {
            task,
            queues,
            total,
            completed: AtomicUsize::new(0),
            attached: AtomicUsize::new(0),
            width,
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Execute one claimed index, catching panics and signalling completion
    /// when it is the last index of the job.
    fn run_one(&self, index: usize) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            // SAFETY: the submitter blocks in `wait_done` until
            // `completed == total`; this index has been claimed but not
            // yet counted, so the borrow is still alive.
            self.task.invoke(index)
        }));
        if let Err(payload) = result {
            let mut slot = self.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let done = self.completed.fetch_add(1, Ordering::AcqRel) + 1;
        if done == self.total {
            let mut flag = self.done.lock().unwrap();
            *flag = true;
            self.done_cv.notify_all();
        }
    }

    /// Drain work starting from queue `start_q`: own interval first, then
    /// steal round-robin from the other participants.
    fn work(&self, start_q: usize) {
        struct InTaskGuard(bool);
        impl Drop for InTaskGuard {
            fn drop(&mut self) {
                IN_TASK.with(|f| f.set(self.0));
            }
        }
        let prev = IN_TASK.with(|f| f.replace(true));
        let _guard = InTaskGuard(prev);

        let n = self.queues.len();
        'outer: loop {
            // Own queue.
            while let Some(idx) = self.queues[start_q].claim() {
                self.run_one(idx);
            }
            // Steal from the others, round-robin from our successor.
            for off in 1..n {
                let q = &self.queues[(start_q + off) % n];
                if let Some(idx) = q.claim() {
                    self.run_one(idx);
                    continue 'outer;
                }
            }
            break;
        }
    }

    fn has_unclaimed(&self) -> bool {
        self.queues.iter().any(Queue::looks_nonempty)
    }

    fn is_complete(&self) -> bool {
        self.completed.load(Ordering::Acquire) == self.total
    }

    fn wait_done(&self) {
        let mut flag = self.done.lock().unwrap();
        while !*flag {
            flag = self.done_cv.wait(flag).unwrap();
        }
    }
}

struct PoolState {
    jobs: Vec<Arc<Job>>,
    workers: usize,
}

struct Shared {
    state: Mutex<PoolState>,
    cv: Condvar,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        state: Mutex::new(PoolState { jobs: Vec::new(), workers: 0 }),
        cv: Condvar::new(),
    })
}

/// Ensure at least `n` pool worker threads exist (lazily grown, detached).
fn ensure_workers(n: usize) {
    let sh = shared();
    let mut state = sh.state.lock().unwrap();
    while state.workers < n {
        let id = state.workers;
        state.workers += 1;
        std::thread::Builder::new()
            .name(format!("gcbfs-pool-{id}"))
            .spawn(worker_loop)
            .expect("failed to spawn pool worker thread");
    }
}

fn worker_loop() {
    let sh = shared();
    loop {
        // Find a job with unclaimed work and attach capacity.
        let found = {
            let state = sh.state.lock().unwrap();
            state.jobs.iter().find_map(|job| {
                if !job.has_unclaimed() {
                    return None;
                }
                // CAS-attach, bounded by width - 1 (submitter holds slot 0).
                loop {
                    let cur = job.attached.load(Ordering::Relaxed);
                    if cur >= job.width - 1 {
                        return None;
                    }
                    if job
                        .attached
                        .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                    {
                        // Queue index 1..width for pool workers.
                        return Some((Arc::clone(job), cur + 1));
                    }
                }
            })
        };
        match found {
            Some((job, q)) => {
                job.work(q);
                job.attached.fetch_sub(1, Ordering::AcqRel);
            }
            None => {
                let state = sh.state.lock().unwrap();
                // Re-check under the lock to avoid missed notifications.
                let has_work = state
                    .jobs
                    .iter()
                    .any(|j| j.has_unclaimed() && j.attached.load(Ordering::Relaxed) < j.width - 1);
                if !has_work {
                    // Timed wait keeps the pool robust against the (benign)
                    // race where a notification lands between the scan and
                    // the wait; it also lets idle workers re-scan cheaply.
                    let _ =
                        sh.cv.wait_timeout(state, std::time::Duration::from_millis(50)).unwrap();
                }
            }
        }
    }
}

/// Execute `task(i)` for every `i in 0..total`, potentially in parallel.
///
/// Every index is executed exactly once. Panics from `task` are propagated to
/// the caller (first panic payload wins) after *all* indices have finished.
pub(crate) fn run(total: usize, task: &(dyn Fn(usize) + Sync)) {
    if total == 0 {
        return;
    }
    let width = effective_width().min(total);
    if width <= 1 || IN_TASK.with(|f| f.get()) {
        // Inline sequential execution — identical index order, same
        // evaluation structure (the caller's chunking already fixed the
        // merge order), no pool involvement.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for i in 0..total {
                task(i);
            }
        }));
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
        return;
    }

    ensure_workers(width - 1);
    let job = Arc::new(Job::new(TaskRef::new(&task), total, width));

    let sh = shared();
    {
        let mut state = sh.state.lock().unwrap();
        state.jobs.push(Arc::clone(&job));
    }
    sh.cv.notify_all();

    // Participate from queue 0.
    job.work(0);

    // Wait until every index has fully executed (workers may still be
    // running indices they claimed before we drained the queues).
    if !job.is_complete() {
        job.wait_done();
    }

    // Prune this job (and any other completed jobs) from the registry.
    {
        let mut state = sh.state.lock().unwrap();
        state.jobs.retain(|j| !j.is_complete());
    }

    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

/// True when called from inside pool work (used by `join` to nest inline).
pub(crate) fn in_task() -> bool {
    IN_TASK.with(|f| f.get())
}
