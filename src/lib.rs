#![warn(missing_docs)]

//! # gpu-cluster-bfs
//!
//! A Rust reproduction of *Scalable Breadth-First Search on a GPU Cluster*
//! (Pan, Pearce, Owens; IPDPS 2018) on a simulated GPU cluster.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`graph`] — generators (RMAT, power-law, web-like), CSR, reference BFS;
//! * [`cluster`] — the simulated GPU cluster: topology, collectives, and the
//!   network/device cost model that plays the role of the LLNL *Ray*
//!   machine;
//! * [`core`] — the paper's contribution: degree separation, the edge
//!   distributor, four-subgraph storage, direction-optimized local
//!   traversal, and the scalable communication model;
//! * [`baseline`] — single-processor BFS/DOBFS and 1D/2D-partitioned
//!   distributed baselines for comparison;
//! * [`obs`] — structured observability: typed spans in modeled-time
//!   coordinates, the metrics registry, Chrome-trace/JSON-lines exporters,
//!   and the critical-path analyzer;
//! * [`serve`] — the multi-tenant traversal serving layer: admission
//!   queue with token-bucket rate limits and weighted-fair scheduling,
//!   the MS-BFS batching scheduler, and deterministic SLO metrics.
//!
//! ## Quickstart
//!
//! ```
//! use gpu_cluster_bfs::prelude::*;
//!
//! // A scale-10 Graph500 RMAT graph (1024 vertices, ~32k directed edges).
//! let graph = RmatConfig::graph500(10).generate();
//!
//! // A simulated cluster: 2 ranks x 2 GPUs, Ray-like cost model.
//! let topology = Topology::new(2, 2);
//!
//! // Distributed direction-optimized BFS with degree threshold 16.
//! let config = BfsConfig::new(16).with_direction_optimization(true);
//! let dist = DistributedGraph::build(&graph, topology, &config).unwrap();
//! let result = dist.run(0, &config).unwrap();
//!
//! // Validate against the sequential reference.
//! let csr = Csr::from_edge_list(&graph);
//! assert_eq!(result.depths, gpu_cluster_bfs::graph::reference::bfs_depths(&csr, 0));
//! ```

pub use gcbfs_baseline as baseline;
pub use gcbfs_cluster as cluster;
pub use gcbfs_compress as compress;
pub use gcbfs_core as core;
pub use gcbfs_graph as graph;
pub use gcbfs_serve as serve;
pub use gcbfs_trace as obs;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use gcbfs_cluster::cost::{CostModel, DeviceModel, NetworkModel};
    pub use gcbfs_cluster::topology::Topology;
    pub use gcbfs_core::config::BfsConfig;
    pub use gcbfs_core::driver::{BfsResult, DistributedGraph};
    pub use gcbfs_core::incremental::{EvolvingGraph, RepairReport};
    pub use gcbfs_core::mutation::{MutationBatch, MutationLog, MutationSettings};
    pub use gcbfs_core::pagerank::PageRankConfig;
    pub use gcbfs_core::verify::{DistributedValidation, VerificationMode};
    pub use gcbfs_graph::{Csr, EdgeList, PowerLawConfig, RmatConfig, WebGraphConfig};
    pub use gcbfs_serve::{BatchPolicy, TenantSpec, TraversalService, WorkloadSpec};
}
