//! `gcbfs` — command-line front-end for the GPU-cluster BFS reproduction.
//!
//! ```text
//! gcbfs generate rmat --scale 16 --out graph.bin
//! gcbfs generate powerlaw --scale 16 --out social.bin
//! gcbfs generate web --scale 14 --out web.bin
//! gcbfs info graph.bin
//! gcbfs bfs graph.bin --ranks 4 --gpus 2 --threshold 45 [--source V]
//!     [--no-do] [--local-all2all] [--uniquify] [--nonblocking] [--parents]
//! gcbfs pagerank graph.bin --ranks 4 --gpus 2 --threshold 45
//! gcbfs serve graph.bin --ranks 4 --gpus 2 --qps 500 --batch 64
//! ```
//!
//! Files ending in `.txt` use the text edge-list format; anything else the
//! binary format (see `gcbfs_graph::io`).

use gpu_cluster_bfs::core::pagerank::PageRankConfig;
use gpu_cluster_bfs::graph::{io, EdgeList};
use gpu_cluster_bfs::prelude::*;
use std::fs::File;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  gcbfs generate <rmat|powerlaw|web> --scale N --out FILE [--seed S]
  gcbfs info FILE
  gcbfs bfs FILE [--ranks R] [--gpus G] [--spares S] [--threshold TH]
            [--source V] [--no-do] [--local-all2all] [--uniquify]
            [--nonblocking] [--parents] [--validate] [--trace]
            [--profile OUT.json] [--hosting buddy|spread]
            [--fail GPU:ITER] [--rejoin GPU:ITER] [--chaos SEED]
            [--verify off|checksums|full] [--sdc SEED]
            [--mutate N] [--mutate-ops K] [--mutate-locality F]
            [--mutate-seed S] [--compact-every N]
            [--backend sim|proc] [--procs N] [--kill WORKER:ITER]
  gcbfs pagerank FILE [--ranks R] [--gpus G] [--threshold TH]
            [--damping D] [--iterations N]
  gcbfs components FILE [--ranks R] [--gpus G] [--threshold TH]
  gcbfs betweenness FILE [--ranks R] [--gpus G] [--threshold TH] [--samples K]
  gcbfs sssp FILE [--ranks R] [--gpus G] [--threshold TH] [--source V]
            [--max-weight W] [--weight-seed S]
  gcbfs serve FILE [--ranks R] [--gpus G] [--threshold TH] [--qps Q]
            [--arrivals N] [--seed S] [--deadline-ms D] [--batch B]
            [--window-ms W] [--queue L] [--pool K] [--tenants T]
            [--sssp-permille X] [--pagerank-permille Y]";

/// Tiny flag parser: `--key value` options and `--flag` switches.
struct Args<'a> {
    positional: Vec<&'a str>,
    options: Vec<(&'a str, &'a str)>,
    switches: Vec<&'a str>,
}

impl<'a> Args<'a> {
    fn parse(args: &'a [String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut options = Vec::new();
        let mut switches = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        options.push((name, it.next().unwrap().as_str()));
                    }
                    _ => switches.push(name),
                }
            } else {
                positional.push(a.as_str());
            }
        }
        Ok(Self { positional, options, switches })
    }

    fn opt<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.options.iter().find(|(k, _)| *k == name) {
            Some((_, v)) => v.parse().map_err(|_| format!("invalid value for --{name}: {v}")),
            None => Ok(default),
        }
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.options
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("missing required option --{name}"))
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.contains(&name)
    }
}

fn run(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    match args.positional.first().copied() {
        Some("generate") => generate(&args),
        Some("info") => info(&args),
        Some("bfs") => bfs(&args),
        Some("pagerank") => pagerank_cmd(&args),
        Some("components") => components_cmd(&args),
        Some("betweenness") => betweenness_cmd(&args),
        Some("sssp") => sssp_cmd(&args),
        Some("serve") => serve_cmd(&args),
        // Hidden: the proc-backend worker entry point. The coordinator
        // respawns this same binary with `backend-worker --socket PATH
        // --worker N`; it is not part of the human-facing surface.
        Some("backend-worker") => backend_worker(&args),
        Some(other) => Err(format!("unknown command: {other}")),
        None => Err("no command given".into()),
    }
}

fn load(path: &str) -> Result<EdgeList, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    if path.ends_with(".txt") {
        io::read_text(file).map_err(|e| format!("cannot parse {path}: {e}"))
    } else {
        io::read_binary(file).map_err(|e| format!("cannot parse {path}: {e}"))
    }
}

fn store(graph: &EdgeList, path: &str) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    if path.ends_with(".txt") {
        io::write_text(graph, file).map_err(|e| format!("cannot write {path}: {e}"))
    } else {
        io::write_binary(graph, file).map_err(|e| format!("cannot write {path}: {e}"))
    }
}

fn generate(args: &Args) -> Result<(), String> {
    let family = *args.positional.get(1).ok_or("generate needs a family (rmat|powerlaw|web)")?;
    let scale: u32 = args.opt("scale", 14)?;
    let seed: u64 = args.opt("seed", 0x5eed)?;
    let out = args.required("out")?;
    let graph = match family {
        "rmat" => RmatConfig::graph500(scale).with_seed(seed).generate(),
        "powerlaw" => {
            let mut cfg = PowerLawConfig::friendster_like(scale);
            cfg.seed = seed;
            cfg.generate()
        }
        "web" => {
            let mut cfg = WebGraphConfig::wdc_like(scale);
            cfg.seed = seed;
            cfg.generate()
        }
        other => return Err(format!("unknown family: {other}")),
    };
    store(&graph, out)?;
    println!(
        "wrote {out}: {} vertices, {} directed edges ({family}, scale {scale})",
        graph.num_vertices,
        graph.num_edges()
    );
    Ok(())
}

fn info(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or("info needs a file")?;
    let graph = load(path)?;
    let stats = gpu_cluster_bfs::graph::stats::DegreeStats::from_graph(&graph);
    println!("{path}:");
    println!("  vertices      {}", stats.num_vertices);
    println!("  edges         {}", stats.num_edges);
    println!("  max degree    {}", stats.max_degree);
    println!("  mean degree   {:.2}", stats.mean_degree);
    println!("  zero-degree   {}", stats.zero_degree);
    println!("  symmetric     {}", graph.is_symmetric());
    Ok(())
}

fn topology(args: &Args) -> Result<Topology, String> {
    let ranks: u32 = args.opt("ranks", 2)?;
    let gpus: u32 = args.opt("gpus", 2)?;
    let spares: u32 = args.opt("spares", 0)?;
    if ranks == 0 || gpus == 0 {
        return Err("--ranks and --gpus must be positive".into());
    }
    Ok(Topology::new(ranks, gpus).with_spares(spares))
}

/// Parses a `GPU:ITER` pair (e.g. `--fail 5:2`).
fn gpu_at_iter(v: &str, name: &str) -> Result<(usize, u32), String> {
    let (g, i) = v.split_once(':').ok_or_else(|| format!("--{name} wants GPU:ITER, got {v}"))?;
    let gpu = g.parse().map_err(|_| format!("invalid GPU in --{name}: {g}"))?;
    let iter = i.parse().map_err(|_| format!("invalid iteration in --{name}: {i}"))?;
    Ok((gpu, iter))
}

fn pick_source(graph: &EdgeList, args: &Args) -> Result<u64, String> {
    match args.options.iter().find(|(k, _)| *k == "source") {
        Some((_, v)) => {
            let s: u64 = v.parse().map_err(|_| format!("invalid --source: {v}"))?;
            if s >= graph.num_vertices {
                return Err(format!("source {s} out of range (n = {})", graph.num_vertices));
            }
            Ok(s)
        }
        None => {
            let degrees = graph.out_degrees();
            Ok(degrees.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64)
        }
    }
}

/// The proc-backend worker entry point (hidden subcommand): connect to
/// the coordinator socket and serve supersteps until told to finish.
fn backend_worker(args: &Args) -> Result<(), String> {
    let socket = args.required("socket")?;
    let worker: u32 =
        args.required("worker")?.parse().map_err(|_| "invalid --worker id".to_string())?;
    gpu_cluster_bfs::core::procrt::worker::run_worker(std::path::Path::new(socket), worker)
        .map_err(|e| format!("worker {worker}: {e}"))
}

fn bfs(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or("bfs needs a file")?;
    let graph = load(path)?;
    let topo = topology(args)?;
    let th: u64 = args.opt("threshold", 32)?;
    let profile_out = args.options.iter().find(|(k, _)| *k == "profile").map(|(_, v)| *v);
    let mut config = BfsConfig::new(th)
        .with_direction_optimization(!args.switch("no-do"))
        .with_local_all2all(args.switch("local-all2all"))
        .with_uniquify(args.switch("uniquify"))
        .with_blocking_reduce(!args.switch("nonblocking"));
    if profile_out.is_some() {
        config = config.with_observability(gpu_cluster_bfs::obs::ObservabilityConfig::Full);
    }
    let hosting = match args.opt::<String>("hosting", "spread".into())?.as_str() {
        "buddy" => gpu_cluster_bfs::core::recovery::HostingPolicy::Buddy,
        "spread" => gpu_cluster_bfs::core::recovery::HostingPolicy::Spread,
        other => return Err(format!("--hosting wants buddy or spread, got {other}")),
    };
    config = config.with_recovery(
        gpu_cluster_bfs::core::recovery::RecoveryConfig::default().with_hosting(hosting),
    );
    let verify = match args.opt::<String>("verify", "off".into())?.as_str() {
        "off" => gpu_cluster_bfs::core::VerificationMode::Off,
        "checksums" => gpu_cluster_bfs::core::VerificationMode::Checksums,
        "full" => gpu_cluster_bfs::core::VerificationMode::Full,
        other => return Err(format!("--verify wants off, checksums, or full, got {other}")),
    };
    config = config.with_verification(verify);

    match args.opt::<String>("backend", "sim".into())?.as_str() {
        "sim" => {}
        "proc" => return bfs_proc(args, &graph, topo, config, path),
        other => return Err(format!("--backend wants sim or proc, got {other}")),
    }

    // Optional fault injection: a deterministic fail/rejoin pair, or a
    // seeded elastic chaos plan over the whole membership lifecycle.
    let mut plan = None;
    if let Some((_, v)) = args.options.iter().find(|(k, _)| *k == "chaos") {
        let seed: u64 = v.parse().map_err(|_| format!("invalid --chaos seed: {v}"))?;
        plan = Some(gpu_cluster_bfs::cluster::fault::FaultPlan::random_elastic(
            seed,
            topo.num_gpus() as usize,
            8,
        ));
    }
    if let Some((_, v)) = args.options.iter().find(|(k, _)| *k == "fail") {
        let (gpu, iter) = gpu_at_iter(v, "fail")?;
        let p = plan.unwrap_or_else(|| gpu_cluster_bfs::cluster::fault::FaultPlan::new(0xfa11));
        plan = Some(p.with_fail_stop(gpu, iter));
    }
    if let Some((_, v)) = args.options.iter().find(|(k, _)| *k == "rejoin") {
        let (gpu, iter) = gpu_at_iter(v, "rejoin")?;
        let p = plan.ok_or("--rejoin needs --fail (or --chaos) to schedule the loss first")?;
        plan = Some(p.with_rejoin(gpu, iter));
    }
    if let Some((_, v)) = args.options.iter().find(|(k, _)| *k == "sdc") {
        let seed: u64 = v.parse().map_err(|_| format!("invalid --sdc seed: {v}"))?;
        // Horizon 4: most traversals of interest run at least that deep,
        // so seeded events land inside the run instead of past its end.
        let sdc = gpu_cluster_bfs::cluster::fault::FaultPlan::random_sdc(
            seed,
            topo.num_gpus() as usize,
            4,
        );
        let mut p = plan.unwrap_or_else(|| gpu_cluster_bfs::cluster::fault::FaultPlan::new(0x5dc));
        for ev in sdc.sdc_events {
            p = p.with_sdc_event(ev);
        }
        plan = Some(p);
    }

    let mutate_batches: usize = args.opt("mutate", 0)?;
    if mutate_batches > 0 {
        if plan.is_some() {
            return Err("--mutate cannot be combined with fault injection".into());
        }
        return bfs_evolving(args, &graph, topo, config, mutate_batches);
    }

    let dist = DistributedGraph::build(&graph, topo, &config).map_err(|e| e.to_string())?;
    let source = pick_source(&graph, args)?;
    let result = match (&plan, args.switch("parents")) {
        (Some(plan), false) => {
            dist.run_with_faults(source, &config, plan).map_err(|e| e.to_string())?
        }
        (Some(_), true) => return Err("--parents cannot be combined with fault injection".into()),
        (None, true) => dist.run_with_parents(source, &config).map_err(|e| e.to_string())?,
        (None, false) => dist.run(source, &config).map_err(|e| e.to_string())?,
    };

    println!(
        "graph {path}: n = {}, m = {}, {} delegates (TH {th}), {} GPUs ({}x{})",
        graph.num_vertices,
        graph.num_edges(),
        dist.separation().num_delegates(),
        topo.num_gpus(),
        topo.num_ranks(),
        topo.gpus_per_rank()
    );
    println!(
        "BFS from {source}: {} iterations, {} reached, max depth {}",
        result.iterations(),
        result.reached(),
        result.max_depth()
    );
    println!(
        "modeled {:.3} ms -> {:.3} GTEPS (Graph500 m/2 convention); wall {:.1} ms",
        result.modeled_seconds() * 1e3,
        result.gteps(graph.num_edges() / 2),
        result.stats.wall_seconds * 1e3
    );
    if plan.is_some() {
        let f = &result.stats.fault;
        println!(
            "resilience: {} fail-stop(s), {} suspicion(s), {} spare absorption(s), \
             {} spreading(s), {} rejoin(s), {} rollback(s)",
            f.fail_stops,
            f.suspicions,
            f.spare_absorptions,
            f.spread_hostings,
            f.rejoins,
            f.rollbacks
        );
        println!(
            "            {} degraded iteration(s); checkpoint {:.3} ms, recovery {:.3} ms",
            f.degraded_iterations,
            f.checkpoint_seconds * 1e3,
            f.recovery_seconds * 1e3
        );
    }
    if result.parents.is_some() {
        println!(
            "parent tree built (final exchange: {:.3} ms modeled)",
            result.parent_exchange_seconds * 1e3
        );
    }
    if args.switch("trace") {
        println!();
        print!("{}", gpu_cluster_bfs::core::trace::RunTrace(&result));
    }
    if let Some(out) = profile_out {
        let log = result.observed.as_ref().expect("observability was enabled");
        let chrome = gpu_cluster_bfs::obs::chrome::export_chrome(log);
        std::fs::write(out, &chrome).map_err(|e| format!("cannot write {out}: {e}"))?;
        let cp = log.critical_path();
        println!("profile: wrote {out} ({} bytes)", chrome.len());
        print!("{}", cp.summary());
    }
    if verify.is_on() {
        let f = &result.stats.fault;
        println!(
            "verification ({}): {} SDC event(s) injected, {} detection(s), \
             {} re-execution(s), {} verified rollback(s)",
            verify.label(),
            f.injected_sdc,
            f.sdc_detections,
            f.sdc_reexecutions,
            f.rollbacks
        );
    }
    if args.switch("validate") {
        // The distributed Graph500-style validator: each GPU checks its
        // own partition's edges against the replicated delegate depths —
        // no reference CSR, no full-graph BFS. Reported untimed, per the
        // Graph500 convention.
        let v = dist.validate_distributed(source, &result.depths, &config.cost);
        println!(
            "distributed validation: {} reached, {} vertices and {} edges checked \
             ({} remote lookups), modeled {:.3} ms (untimed)",
            v.reached,
            v.checked_vertices,
            v.checked_edges,
            v.remote_lookups,
            v.modeled_seconds * 1e3
        );
        if let Some(parents) = &result.parents {
            let csr = Csr::from_edge_list(&graph);
            gpu_cluster_bfs::graph::reference::validate_parents(
                &csr,
                source,
                &result.depths,
                parents,
            )
            .map_err(|e| e.to_string())?;
        }
        if !v.is_ok() {
            for e in &v.errors {
                eprintln!("  invariant violation: {e}");
            }
            return Err(format!("validation FAILED: {} invariant violation(s)", v.error_count));
        }
        println!("validation: OK");
    }
    Ok(())
}

/// The `bfs --backend proc` path: run the traversal in real worker OS
/// processes behind the coordinator, then report wall-clock (not
/// modeled) figures plus the wire and recovery telemetry.
fn bfs_proc(
    args: &Args,
    graph: &EdgeList,
    topo: Topology,
    config: BfsConfig,
    path: &str,
) -> Result<(), String> {
    use gpu_cluster_bfs::core::backend::{Backend, ProcBackend};
    use gpu_cluster_bfs::core::procrt::{ChaosSpec, KillSpec, ProcOptions, WorkerCommand};
    use gpu_cluster_bfs::core::UNREACHED;

    for flag in ["fail", "rejoin", "chaos", "sdc", "mutate", "profile"] {
        if args.options.iter().any(|(k, _)| *k == flag) {
            return Err(format!("--{flag} is sim-only; drop it or use --backend sim"));
        }
    }
    let procs: u32 = args.opt("procs", 2)?;
    if procs == 0 {
        return Err("--procs must be positive".into());
    }
    let spares: u32 = args.opt("spares", 0)?;
    let mut chaos = ChaosSpec::default();
    if let Some((_, v)) = args.options.iter().find(|(k, _)| *k == "kill") {
        let (w, i) = gpu_at_iter(v, "kill")?;
        chaos.kill = Some(KillSpec { worker: w as u32, iter: i });
    }
    let opts = ProcOptions { workers: procs, spares, chaos, ..ProcOptions::default() };
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let backend = ProcBackend::new(WorkerCommand::new(exe, vec!["backend-worker".into()]), opts);
    let source = pick_source(graph, args)?;
    let run = backend
        .run(graph, topo, source, &config, args.switch("parents"))
        .map_err(|e| e.to_string())?;
    let report = run.proc.as_ref().expect("proc backend attaches its report");

    let reached = run.depths.iter().filter(|&&d| d != UNREACHED).count();
    let max_depth = run.depths.iter().filter(|&&d| d != UNREACHED).max().copied().unwrap_or(0);
    println!(
        "graph {path}: n = {}, m = {}, {} GPUs ({}x{}) across {} worker process(es)",
        graph.num_vertices,
        graph.num_edges(),
        topo.num_gpus(),
        topo.num_ranks(),
        topo.gpus_per_rank(),
        report.workers
    );
    println!(
        "BFS from {source} (proc backend): {} iterations, {reached} reached, max depth {max_depth}",
        report.iterations
    );
    println!(
        "wall {:.1} ms -> {:.3} GTEPS (Graph500 m/2 convention); {} wire bytes, \
         {} frames out / {} in, {} heartbeats, {} checkpoints",
        report.wall_seconds * 1e3,
        (graph.num_edges() / 2) as f64 / report.wall_seconds.max(1e-12) / 1e9,
        report.wire_bytes,
        report.frames_sent,
        report.frames_received,
        report.heartbeats,
        report.checkpoints
    );
    if let Some(r) = &report.recovery {
        println!(
            "recovery: worker {} confirmed dead in {:.1} ms, re-homed via {} in {:.1} ms, \
             resumed at superstep {}",
            r.worker,
            r.detect_seconds * 1e3,
            r.mode.label(),
            r.recover_seconds * 1e3,
            r.resumed_iter
        );
    }
    if args.switch("validate") {
        let csr = Csr::from_edge_list(graph);
        let truth = gpu_cluster_bfs::graph::reference::bfs_depths(&csr, source);
        if run.depths != truth {
            return Err("validation FAILED: proc depths diverge from reference BFS".into());
        }
        if let Some(parents) = &run.parents {
            gpu_cluster_bfs::graph::reference::validate_parents(&csr, source, &run.depths, parents)
                .map_err(|e| e.to_string())?;
        }
        println!("validation: OK (reference BFS agreement)");
    }
    Ok(())
}

/// The `bfs --mutate` path: run once, then stream seeded mutation
/// batches through the incremental repair driver, printing a per-batch
/// summary of repair work and modeled cost.
fn bfs_evolving(
    args: &Args,
    graph: &EdgeList,
    topo: Topology,
    config: BfsConfig,
    num_batches: usize,
) -> Result<(), String> {
    let ops_per_batch: usize = args.opt("mutate-ops", 64)?;
    let locality: f64 = args.opt("mutate-locality", 0.0)?;
    let mutate_seed: u64 = args.opt("mutate-seed", 0x9e3779b9)?;
    let compact_every: u32 = args.opt("compact-every", 8)?;
    if !(0.0..=1.0).contains(&locality) {
        return Err("--mutate-locality must be in [0, 1]".into());
    }
    let config =
        config.with_mutations(MutationSettings::enabled().with_compaction_interval(compact_every));

    let mut evolving = EvolvingGraph::new(graph, topo, &config);
    let source = pick_source(graph, args)?;
    let initial = evolving.initial_run(source).map_err(|e| e.to_string())?;
    println!(
        "graph: n = {}, m = {}, {} delegates (TH {}), {} GPUs ({}x{})",
        evolving.num_vertices(),
        evolving.num_edges(),
        evolving.num_delegates(),
        config.degree_threshold,
        topo.num_gpus(),
        topo.num_ranks(),
        topo.gpus_per_rank()
    );
    println!(
        "initial BFS from {source}: {} iterations, {} reached, modeled {:.3} ms",
        initial.iterations(),
        initial.reached(),
        initial.modeled_seconds() * 1e3
    );

    let log = MutationLog::random(mutate_seed, graph, num_batches, ops_per_batch, locality);
    println!(
        "mutation log: {} batches x {} undirected ops, locality {locality}, seed {mutate_seed:#x}",
        num_batches, ops_per_batch
    );
    let mut repair_total = 0.0;
    let mut last_observed = None;
    for (i, batch) in log.batches.iter().enumerate() {
        let mut r = evolving.apply_batch(batch);
        repair_total += r.modeled_seconds();
        if r.observed.is_some() {
            last_observed = r.observed.take();
        }
        println!(
            "batch {i:>3}: {:>3} ops ({}+ {}- {}skip), reclass {}^ {}v, \
             invalidated {}, resettled {}, {} waves, repair {:.3} ms \
             (maintenance {:.3} ms){}",
            r.ops,
            r.applied_adds,
            r.applied_deletes,
            r.skipped_deletes,
            r.promotions,
            r.demotions,
            r.invalidated,
            r.resettled,
            r.waves,
            r.modeled_seconds() * 1e3,
            r.maintenance_seconds() * 1e3,
            if r.compacted { ", compacted" } else { "" }
        );
        if args.switch("validate") {
            let truth = evolving.recompute().map_err(|e| e.to_string())?;
            if evolving.depths() != truth.depths.as_slice() {
                return Err(format!("batch {i}: repaired depths diverge from recompute"));
            }
            let csr = Csr::from_edge_list(&evolving.current_edge_list());
            gpu_cluster_bfs::graph::reference::validate_parents(
                &csr,
                source,
                evolving.depths(),
                evolving.parents(),
            )
            .map_err(|e| format!("batch {i}: {e}"))?;
        }
    }
    let full = evolving.recompute().map_err(|e| e.to_string())?;
    println!(
        "after {} batches: {} edges ({} overlay entries); repair total {:.3} ms vs \
         full recompute {:.3} ms ({:.1}x)",
        evolving.batches_applied(),
        evolving.num_edges(),
        evolving.overlay_entries(),
        repair_total * 1e3,
        full.modeled_seconds() * 1e3,
        full.modeled_seconds() * num_batches as f64 / repair_total.max(1e-12)
    );
    if args.switch("validate") {
        let dist = DistributedGraph::build(&evolving.current_edge_list(), topo, &config)
            .map_err(|e| e.to_string())?;
        let v = dist.validate_distributed(source, evolving.depths(), &config.cost);
        if !v.is_ok() {
            for e in &v.errors {
                eprintln!("  invariant violation: {e}");
            }
            return Err(format!("validation FAILED: {} invariant violation(s)", v.error_count));
        }
        println!(
            "validation: OK ({} vertices, {} edges checked)",
            v.checked_vertices, v.checked_edges
        );
    }
    if let Some(out) = args.options.iter().find(|(k, _)| *k == "profile").map(|(_, v)| *v) {
        let log = last_observed.as_ref().expect("observability was enabled");
        let chrome = gpu_cluster_bfs::obs::chrome::export_chrome(log);
        std::fs::write(out, &chrome).map_err(|e| format!("cannot write {out}: {e}"))?;
        let cp = log.critical_path();
        println!("profile: wrote {out} ({} bytes, last repair batch)", chrome.len());
        print!("{}", cp.summary());
    }
    Ok(())
}

fn sssp_cmd(args: &Args) -> Result<(), String> {
    use gpu_cluster_bfs::core::sssp::DistributedSssp;
    use gpu_cluster_bfs::graph::weighted::{WeightedEdgeList, UNREACHABLE};
    let path = args.positional.get(1).ok_or("sssp needs a file")?;
    let graph = load(path)?;
    let topo = topology(args)?;
    let th: u64 = args.opt("threshold", 32)?;
    let max_weight: u32 = args.opt("max-weight", 16)?;
    let weight_seed: u64 = args.opt("weight-seed", 7)?;
    let weighted = WeightedEdgeList::from_topology(&graph, max_weight, weight_seed);
    let config = BfsConfig::new(th);
    let dist = DistributedSssp::build(&weighted, topo, &config);
    let source = pick_source(&graph, args)?;
    let r = dist.run(source, &config).map_err(|e| e.to_string())?;
    let reached = r.distances.iter().filter(|&&x| x != UNREACHABLE).count();
    let max = r.distances.iter().filter(|&&x| x != UNREACHABLE).max().copied().unwrap_or(0);
    println!(
        "SSSP from {source} (weights 1..={max_weight}): {} rounds, {reached} reached, \
         max distance {max}; {} edges relaxed; modeled {:.3} ms",
        r.rounds,
        r.edges_relaxed,
        r.modeled_seconds * 1e3
    );
    Ok(())
}

fn serve_cmd(args: &Args) -> Result<(), String> {
    use gpu_cluster_bfs::core::sssp::DistributedSssp;
    use gpu_cluster_bfs::graph::permute::splitmix64;
    use gpu_cluster_bfs::graph::weighted::WeightedEdgeList;
    use gpu_cluster_bfs::serve::generate;

    let path = args.positional.get(1).ok_or("serve needs a file")?;
    let graph = load(path)?;
    let topo = topology(args)?;
    let th: u64 = args.opt("threshold", 32)?;
    let qps: f64 = args.opt("qps", 500.0)?;
    let arrivals: usize = args.opt("arrivals", 256)?;
    let seed: u64 = args.opt("seed", 42)?;
    let deadline_ms: f64 = args.opt("deadline-ms", 250.0)?;
    let batch: usize = args.opt("batch", 64)?;
    let window_ms: f64 = args.opt("window-ms", 1.0)?;
    let queue: usize = args.opt("queue", 4096)?;
    let pool: usize = args.opt("pool", 32)?;
    let num_tenants: u32 = args.opt("tenants", 2)?;
    let sssp_permille: u32 = args.opt("sssp-permille", 0)?;
    let pagerank_permille: u32 = args.opt("pagerank-permille", 0)?;
    if !(1..=gpu_cluster_bfs::serve::MAX_BATCH).contains(&batch) {
        return Err(format!("--batch must be 1..={}", gpu_cluster_bfs::serve::MAX_BATCH));
    }
    if num_tenants == 0 {
        return Err("--tenants must be positive".into());
    }
    if sssp_permille + pagerank_permille > 1000 {
        return Err("--sssp-permille + --pagerank-permille must be <= 1000".into());
    }
    if qps <= 0.0 {
        return Err("--qps must be positive".into());
    }

    // MS-BFS coalescing is forward-only, so the service traverses
    // without direction optimization.
    let config = BfsConfig::new(th).with_direction_optimization(false);
    let dist = DistributedGraph::build(&graph, topo, &config).map_err(|e| e.to_string())?;

    // Deterministic non-isolated source pool, as in the bench harness.
    let degrees = graph.out_degrees();
    let mut sources: Vec<u64> = Vec::with_capacity(pool);
    let mut state = seed;
    let mut attempts = 0u64;
    while sources.len() < pool && attempts < graph.num_vertices * 4 + 1000 {
        state = splitmix64(state);
        let v = state % graph.num_vertices;
        attempts += 1;
        if degrees[v as usize] > 0 && !sources.contains(&v) {
            sources.push(v);
        }
    }
    if sources.is_empty() {
        return Err("no connected source vertex found".into());
    }

    let tenants: Vec<TenantSpec> =
        (0..num_tenants).map(|i| TenantSpec::new(i, &format!("tenant-{i}"))).collect();
    let policy = BatchPolicy::new(batch, window_ms / 1e3).with_queue_limit(queue);
    let backend = if sssp_permille > 0 {
        let weighted = WeightedEdgeList::from_topology(&graph, 16, 7);
        Some(DistributedSssp::build(&weighted, topo, &config))
    } else {
        None
    };
    let mut svc = TraversalService::new(&dist, config, tenants.clone(), policy);
    if let Some(b) = backend.as_ref() {
        svc = svc.with_sssp(b);
    }

    let spec = WorkloadSpec::bfs_only(qps, arrivals, seed, sources)
        .with_deadline(deadline_ms / 1e3)
        .with_mix(sssp_permille, pagerank_permille);
    let workload = generate(&spec, &tenants);
    let r = svc.run(&workload);

    println!(
        "serving {path}: n = {}, m = {}, {} GPUs; batch {batch}, window {window_ms} ms, \
         queue bound {queue}",
        graph.num_vertices,
        graph.num_edges(),
        topo.num_gpus()
    );
    println!(
        "offered {} queries at {qps} QPS over {:.3} modeled s (deadline {deadline_ms} ms)",
        r.offered, r.duration
    );
    let shed: Vec<String> = r.shed.iter().map(|(k, v)| format!("{k}: {v}")).collect();
    println!(
        "admitted {}, shed {} ({}), completed {}, on time {}",
        r.admitted,
        r.offered - r.admitted,
        if shed.is_empty() { "none".to_string() } else { shed.join(", ") },
        r.completed,
        r.on_time
    );
    println!(
        "latency p50/p95/p99 {:.3}/{:.3}/{:.3} ms (max {:.3}); queue wait p99 {:.3} ms",
        r.latency.p50 * 1e3,
        r.latency.p95 * 1e3,
        r.latency.p99 * 1e3,
        r.latency.max * 1e3,
        r.queue_wait.p99 * 1e3
    );
    println!(
        "goodput {:.1} QPS of {:.1} offered ({:.1}% shed); {} batches, mean width {:.2}, \
         sharing factor {:.2}x",
        r.goodput_qps,
        r.offered_qps,
        r.shed_rate * 100.0,
        r.batches,
        r.mean_batch,
        r.sharing_factor
    );
    println!("per tenant:");
    println!(
        "  {:>12} {:>8} {:>10} {:>8} {:>10} {:>10}",
        "tenant", "offered", "completed", "on-time", "p50 ms", "p99 ms"
    );
    for t in &r.tenants {
        println!(
            "  {:>12} {:>8} {:>10} {:>8} {:>10.3} {:>10.3}",
            t.name,
            t.offered,
            t.completed,
            t.on_time,
            t.latency.p50 * 1e3,
            t.latency.p99 * 1e3
        );
    }
    Ok(())
}

fn components_cmd(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or("components needs a file")?;
    let graph = load(path)?;
    let topo = topology(args)?;
    let th: u64 = args.opt("threshold", 32)?;
    let config = BfsConfig::new(th);
    let dist = DistributedGraph::build(&graph, topo, &config).map_err(|e| e.to_string())?;
    let r = dist.connected_components(&config);
    println!(
        "connected components on {path}: {} components in {} sweeps; modeled {:.3} ms",
        r.count(),
        r.sweeps,
        r.modeled_seconds * 1e3
    );
    // Largest components by size.
    let mut sizes = std::collections::HashMap::new();
    for &l in &r.labels {
        *sizes.entry(l).or_insert(0u64) += 1;
    }
    let mut sorted: Vec<(u64, u64)> = sizes.into_iter().collect();
    sorted.sort_by_key(|&(_, size)| std::cmp::Reverse(size));
    println!("largest components:");
    for &(label, size) in sorted.iter().take(5) {
        println!("  component {label:>10}: {size} vertices");
    }
    Ok(())
}

fn betweenness_cmd(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or("betweenness needs a file")?;
    let graph = load(path)?;
    let topo = topology(args)?;
    let th: u64 = args.opt("threshold", 32)?;
    let samples: usize = args.opt("samples", 16)?;
    let config = BfsConfig::new(th);
    let dist = DistributedGraph::build(&graph, topo, &config).map_err(|e| e.to_string())?;
    let degrees = graph.out_degrees();
    let sources: Vec<u64> = (0..graph.num_vertices)
        .filter(|&v| degrees[v as usize] > 0)
        .step_by(((graph.num_vertices as usize / samples.max(1)).max(1)) | 1)
        .take(samples)
        .collect();
    let r = dist.betweenness(&sources, &config).map_err(|e| e.to_string())?;
    println!(
        "sampled betweenness on {path}: {} sources, {} levels, modeled {:.3} ms",
        r.sources.len(),
        r.levels,
        r.modeled_seconds * 1e3
    );
    let mut ranked: Vec<(usize, f64)> = r.scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top 10 by betweenness:");
    for &(v, b) in ranked.iter().take(10) {
        println!("  {v:>10}  {b:.3}  (degree {})", degrees[v]);
    }
    Ok(())
}

fn pagerank_cmd(args: &Args) -> Result<(), String> {
    let path = args.positional.get(1).ok_or("pagerank needs a file")?;
    let graph = load(path)?;
    let topo = topology(args)?;
    let th: u64 = args.opt("threshold", 32)?;
    let bfs_config = BfsConfig::new(th);
    let dist = DistributedGraph::build(&graph, topo, &bfs_config).map_err(|e| e.to_string())?;
    let config = PageRankConfig {
        damping: args.opt("damping", 0.85)?,
        max_iterations: args.opt("iterations", 100)?,
        ..Default::default()
    };
    let result = dist.pagerank(&config);
    println!(
        "PageRank on {path}: {} iterations to delta {:.3e}; modeled {:.3} ms",
        result.iterations,
        result.delta,
        result.modeled_seconds * 1e3
    );
    let mut ranked: Vec<(usize, f64)> = result.scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top 10:");
    for &(v, s) in ranked.iter().take(10) {
        println!("  {v:>10}  {s:.6e}");
    }
    Ok(())
}
